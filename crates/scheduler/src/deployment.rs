//! Incremental-vs-monolithic deployment (§4.2.3).
//!
//! "Because the inter-chip interconnect for the 64 TPU chips is electrical
//! and contained within a single rack, the connectivity and performance of
//! each cube is verified when the chips and intrarack electrical
//! interconnect is installed. The rack-level blocks can then be
//! incrementally connected and verified at the pod level ... For
//! comparison, a TPU V3 superpod could not be verified until all 1024
//! chips and connecting cables were installed and tested."
//!
//! The model: racks arrive on a cadence; under incremental deployment a
//! rack becomes productive after its own verification; under monolithic
//! deployment nothing is productive until the last rack lands *and* the
//! whole-pod verification completes. The metric is integrated capacity
//! (cube-days) over the build-out window.

use serde::{Deserialize, Serialize};

/// Deployment parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// Racks (cubes) to install.
    pub racks: usize,
    /// Days between consecutive rack deliveries.
    pub rack_interval_days: f64,
    /// Per-rack verification time (incremental mode), days.
    pub rack_verify_days: f64,
    /// Whole-pod verification time (monolithic mode), days.
    pub pod_verify_days: f64,
}

impl Default for DeploymentPlan {
    fn default() -> Self {
        DeploymentPlan {
            racks: 64,
            rack_interval_days: 1.0,
            rack_verify_days: 1.0,
            pod_verify_days: 14.0,
        }
    }
}

/// Capacity trajectory outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentOutcome {
    /// Day the first rack became productive.
    pub first_capacity_day: f64,
    /// Day full capacity was reached.
    pub full_capacity_day: f64,
    /// Integrated capacity over `[0, full_capacity_day]`, in cube-days.
    pub cube_days_by_full: f64,
}

impl DeploymentPlan {
    /// Day rack `i` (0-based) is delivered.
    fn delivery_day(&self, i: usize) -> f64 {
        (i + 1) as f64 * self.rack_interval_days
    }

    /// Incremental (lightwave-fabric) deployment: rack `i` is productive
    /// at `delivery(i) + rack_verify`.
    pub fn incremental(&self) -> DeploymentOutcome {
        let first = self.delivery_day(0) + self.rack_verify_days;
        let full = self.delivery_day(self.racks - 1) + self.rack_verify_days;
        // Integrated capacity: each rack contributes from its ready day.
        let cube_days = (0..self.racks)
            .map(|i| full - (self.delivery_day(i) + self.rack_verify_days))
            .sum::<f64>();
        DeploymentOutcome {
            first_capacity_day: first,
            full_capacity_day: full,
            cube_days_by_full: cube_days,
        }
    }

    /// Monolithic (static-fabric) deployment: nothing is productive until
    /// every rack has landed, been cabled, and the whole pod verified.
    pub fn monolithic(&self) -> DeploymentOutcome {
        let full = self.delivery_day(self.racks - 1) + self.pod_verify_days;
        DeploymentOutcome {
            first_capacity_day: full,
            full_capacity_day: full,
            cube_days_by_full: 0.0,
        }
    }

    /// Capacity (working racks) at a given day, incremental mode.
    pub fn incremental_capacity_at(&self, day: f64) -> usize {
        (0..self.racks)
            .filter(|&i| self.delivery_day(i) + self.rack_verify_days <= day)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_delivers_capacity_early() {
        let plan = DeploymentPlan::default();
        let inc = plan.incremental();
        let mono = plan.monolithic();
        assert!(inc.first_capacity_day < 3.0, "first cube within days");
        assert!(
            mono.first_capacity_day >= 64.0,
            "monolith waits for the pod"
        );
        assert!(
            inc.cube_days_by_full > 1500.0,
            "~2000 cube-days of head start"
        );
        assert_eq!(mono.cube_days_by_full, 0.0);
    }

    #[test]
    fn both_reach_full_capacity() {
        let plan = DeploymentPlan::default();
        let inc = plan.incremental();
        let mono = plan.monolithic();
        // Monolithic full capacity is *later* (pod verification dominates
        // per-rack verification at the tail).
        assert!(mono.full_capacity_day > inc.full_capacity_day);
        assert_eq!(plan.incremental_capacity_at(inc.full_capacity_day), 64);
    }

    #[test]
    fn capacity_curve_is_monotone() {
        let plan = DeploymentPlan::default();
        let mut prev = 0;
        for d in 0..80 {
            let c = plan.incremental_capacity_at(d as f64);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(prev, 64);
    }

    #[test]
    fn faster_racks_compress_the_gap() {
        let slow = DeploymentPlan::default();
        let fast = DeploymentPlan {
            rack_interval_days: 0.25,
            ..slow
        };
        assert!(fast.incremental().full_capacity_day < slow.incremental().full_capacity_day);
    }
}
