//! Cube allocation disciplines.
//!
//! [`Pooled`] models the reconfigurable lightwave fabric: a slice needing
//! k cubes can take *any* k idle cubes (the OCS wires them into a torus
//! regardless of where they sit). [`Contiguous`] models a static fabric:
//! a slice of cube-shape `p×q×r` must occupy an axis-aligned box of the
//! physical 4×4×4 cube grid, with matching orientation — the constraint
//! that fragments static clusters.

use lightwave_superpod::geometry::CubeId;
use lightwave_superpod::slice::SliceShape;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The physical cube grid of a pod: 4×4×4 racks.
pub const GRID: usize = 4;

/// An allocation decision.
pub type Allocation = Vec<CubeId>;

/// An allocation discipline over a pod's 64 cubes.
pub trait Allocator {
    /// Picks cubes for a slice of `shape` from `idle`, or `None` if the
    /// request cannot be placed right now.
    fn allocate(&self, shape: SliceShape, idle: &BTreeSet<CubeId>) -> Option<Allocation>;

    /// Whether this discipline can *ever* place the shape on an empty pod.
    fn supports(&self, shape: SliceShape) -> bool;
}

/// Reconfigurable-fabric allocation: any idle cubes satisfy any shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pooled;

impl Allocator for Pooled {
    fn allocate(&self, shape: SliceShape, idle: &BTreeSet<CubeId>) -> Option<Allocation> {
        let need = shape.cube_count();
        if idle.len() < need {
            return None;
        }
        Some(idle.iter().copied().take(need).collect())
    }

    fn supports(&self, _shape: SliceShape) -> bool {
        true
    }
}

/// Static-fabric allocation: an axis-aligned `p×q×r` box of the physical
/// grid, orientation fixed by the wiring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contiguous;

/// Cube id of grid position (x, y, z).
pub fn cube_at(x: usize, y: usize, z: usize) -> CubeId {
    debug_assert!(x < GRID && y < GRID && z < GRID);
    (x + GRID * (y + GRID * z)) as CubeId
}

impl Allocator for Contiguous {
    fn allocate(&self, shape: SliceShape, idle: &BTreeSet<CubeId>) -> Option<Allocation> {
        let [p, q, r] = shape.cube_grid();
        if p > GRID || q > GRID || r > GRID {
            return None; // does not fit the physical arrangement at all
        }
        // First-fit over box origins.
        for oz in 0..=(GRID - r) {
            for oy in 0..=(GRID - q) {
                'origin: for ox in 0..=(GRID - p) {
                    let mut cubes = Vec::with_capacity(p * q * r);
                    for dz in 0..r {
                        for dy in 0..q {
                            for dx in 0..p {
                                let c = cube_at(ox + dx, oy + dy, oz + dz);
                                if !idle.contains(&c) {
                                    continue 'origin;
                                }
                                cubes.push(c);
                            }
                        }
                    }
                    return Some(cubes);
                }
            }
        }
        None
    }

    fn supports(&self, shape: SliceShape) -> bool {
        let [p, q, r] = shape.cube_grid();
        p <= GRID && q <= GRID && r <= GRID
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_idle() -> BTreeSet<CubeId> {
        (0..64).collect()
    }

    fn shape(a: usize, b: usize, c: usize) -> SliceShape {
        SliceShape::new(a, b, c).unwrap()
    }

    #[test]
    fn pooled_takes_any_cubes() {
        let mut idle = all_idle();
        // Remove a scattered half of the pod.
        for c in (0..64).step_by(2) {
            idle.remove(&(c as CubeId));
        }
        // 16-cube request still placeable from the scattered remainder.
        let a = Pooled.allocate(shape(16, 16, 4), &idle).unwrap();
        assert_eq!(a.len(), 16);
        assert!(a.iter().all(|c| idle.contains(c)));
    }

    #[test]
    fn pooled_fails_only_on_count() {
        let idle: BTreeSet<CubeId> = (0..3).collect();
        assert!(Pooled.allocate(shape(16, 4, 4), &idle).is_none()); // needs 4
        assert!(Pooled.allocate(shape(12, 4, 4), &idle).is_some()); // needs 3
    }

    #[test]
    fn contiguous_places_boxes() {
        let idle = all_idle();
        let a = Contiguous.allocate(shape(8, 8, 4), &idle).unwrap(); // 2×2×1 box
        assert_eq!(a.len(), 4);
        // Box property: coordinates form a 2×2×1 block.
        let xs: BTreeSet<usize> = a.iter().map(|&c| c as usize % 4).collect();
        let ys: BTreeSet<usize> = a.iter().map(|&c| (c as usize / 4) % 4).collect();
        let zs: BTreeSet<usize> = a.iter().map(|&c| c as usize / 16).collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(ys.len(), 2);
        assert_eq!(zs.len(), 1);
    }

    #[test]
    fn contiguous_rejects_shapes_that_do_not_fit_the_grid() {
        // 4×4×256 chips = 1×1×64 cubes: impossible on a static 4×4×4 grid.
        assert!(!Contiguous.supports(shape(4, 4, 256)));
        assert!(Contiguous.allocate(shape(4, 4, 256), &all_idle()).is_none());
        // 16×16×16 = the whole grid: fine.
        assert!(Contiguous.supports(shape(16, 16, 16)));
    }

    #[test]
    fn fragmentation_defeats_contiguous_but_not_pooled() {
        // A checkerboard of busy cubes: 32 idle cubes, but no 2×2×2 box.
        let mut idle = BTreeSet::new();
        for z in 0..GRID {
            for y in 0..GRID {
                for x in 0..GRID {
                    if (x + y + z) % 2 == 0 {
                        idle.insert(cube_at(x, y, z));
                    }
                }
            }
        }
        assert_eq!(idle.len(), 32);
        let req = shape(8, 8, 8); // 2×2×2 = 8 cubes
        assert!(
            Contiguous.allocate(req, &idle).is_none(),
            "checkerboard has no free 2×2×2 box"
        );
        assert!(
            Pooled.allocate(req, &idle).is_some(),
            "the OCS fabric does not care about contiguity"
        );
    }

    #[test]
    fn contiguous_full_pod_requires_empty_pod() {
        let mut idle = all_idle();
        assert!(Contiguous.allocate(shape(16, 16, 16), &idle).is_some());
        idle.remove(&42);
        assert!(Contiguous.allocate(shape(16, 16, 16), &idle).is_none());
    }

    #[test]
    fn orientation_is_fixed() {
        // A 1×4×1-cube slab in x fails if only a y-slab is free.
        let mut idle = BTreeSet::new();
        for y in 0..4 {
            idle.insert(cube_at(0, y, 0));
        }
        assert!(
            Contiguous.allocate(shape(16, 4, 4), &idle).is_none(),
            "x-slab"
        );
        assert!(
            Contiguous.allocate(shape(4, 16, 4), &idle).is_some(),
            "y-slab"
        );
    }
}
