//! Cluster scheduling for OCS-composed slices (§4.2.3–§4.2.4).
//!
//! The paper's scheduling claims are comparative: the TPU v4 pod's small
//! (64-chip) building block *plus* a non-blocking lightwave fabric means a
//! 256-chip job can use *any* four idle cubes, while the previous
//! generation needed 256 *contiguous* chips — so the v4 fleet runs above
//! 98% utilization despite 4× larger slices. Deployment is similarly
//! incremental: racks come online one at a time instead of waiting for a
//! complete pod.
//!
//! - [`alloc`] — the two allocation disciplines: [`alloc::Pooled`]
//!   (reconfigurable fabric: any idle cubes) and [`alloc::Contiguous`]
//!   (static fabric: an axis-aligned box of the physical cube grid).
//! - [`sim`] — a discrete-event cluster simulation: Poisson arrivals,
//!   job durations, queueing; reports utilization, wait times, and
//!   fragmentation stalls.
//! - [`deployment`] — incremental-vs-monolithic turn-up capacity model.
//! - [`instrument`] — feeds per-discipline utilization, stall, and
//!   defrag-migration metrics into the fleet observability subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod deployment;
pub mod instrument;
pub mod sim;

pub use alloc::{Allocator, Contiguous, Pooled};
pub use sim::{ClusterSim, JobSpec, SimReport};
