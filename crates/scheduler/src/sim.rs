//! Discrete-event cluster simulation: arrivals, queueing, utilization.
//!
//! The experiment behind §4.2.4's ">98% utilization" claim: feed the same
//! job stream to a pooled (OCS) scheduler and a contiguous (static)
//! scheduler and compare achieved utilization, queue delays, and
//! fragmentation stalls (a job that waits even though enough cubes are
//! idle — impossible under pooling, routine under contiguity).

use crate::alloc::Allocator;
use lightwave_superpod::geometry::CubeId;
use lightwave_superpod::slice::SliceShape;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// A job template for the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Requested slice shape.
    pub shape: SliceShape,
    /// Mean duration, hours.
    pub mean_hours: f64,
    /// Relative arrival weight.
    pub weight: f64,
}

/// The TPU-fleet-flavored default mix: mostly small jobs, a tail of big
/// ones (shapes all fit both disciplines, isolating *fragmentation* as
/// the difference rather than shape support).
pub fn default_mix() -> Vec<JobSpec> {
    let s = |a, b, c| SliceShape::new(a, b, c).expect("valid shape");
    vec![
        JobSpec {
            shape: s(4, 4, 4),
            mean_hours: 2.0,
            weight: 0.40,
        },
        JobSpec {
            shape: s(8, 4, 4),
            mean_hours: 3.0,
            weight: 0.25,
        },
        JobSpec {
            shape: s(8, 8, 4),
            mean_hours: 4.0,
            weight: 0.15,
        },
        JobSpec {
            shape: s(8, 8, 8),
            mean_hours: 6.0,
            weight: 0.12,
        },
        JobSpec {
            shape: s(16, 8, 8),
            mean_hours: 8.0,
            weight: 0.05,
        },
        JobSpec {
            shape: s(16, 16, 4),
            mean_hours: 8.0,
            weight: 0.03,
        },
    ]
}

/// Simulation results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Fraction of cube-hours spent running jobs.
    pub utilization: f64,
    /// Jobs completed.
    pub completed: u64,
    /// Mean queue wait, hours.
    pub mean_wait_hours: f64,
    /// Scheduling attempts that failed *despite* enough idle cubes for the
    /// request (fragmentation stalls).
    pub fragmentation_stalls: u64,
    /// Jobs rejected because the discipline can never place their shape.
    pub unsupported: u64,
    /// Running jobs moved by defragmentation (each paying the migration
    /// cost). Always 0 for disciplines without defrag.
    pub migrations: u64,
}

/// The cluster simulator.
#[derive(Debug)]
pub struct ClusterSim {
    mix: Vec<JobSpec>,
    /// Mean inter-arrival time, hours.
    pub mean_interarrival_hours: f64,
}

#[derive(Debug, Clone)]
struct PendingJob {
    shape: SliceShape,
    duration: f64,
    arrived: f64,
}

impl ClusterSim {
    /// A simulator over a workload mix.
    pub fn new(mix: Vec<JobSpec>, mean_interarrival_hours: f64) -> ClusterSim {
        assert!(!mix.is_empty(), "need at least one job spec");
        assert!(mean_interarrival_hours > 0.0);
        ClusterSim {
            mix,
            mean_interarrival_hours,
        }
    }

    /// Runs `horizon_hours` of simulated time under `alloc`, FIFO queue.
    pub fn run<A: Allocator>(&self, alloc: &A, horizon_hours: f64, seed: u64) -> SimReport {
        assert!(horizon_hours > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let arrival = Exp::new(1.0 / self.mean_interarrival_hours).expect("positive rate");
        let total_weight: f64 = self.mix.iter().map(|s| s.weight).sum();

        let mut idle: BTreeSet<CubeId> = (0..64).collect();
        // (completion time, cubes to release) for every running job.
        let mut releases: Vec<(f64, Vec<CubeId>)> = Vec::new();
        let mut queue: VecDeque<PendingJob> = VecDeque::new();
        let mut now = 0.0f64;
        let mut next_arrival = arrival.sample(&mut rng);

        let mut busy_cube_hours = 0.0f64;
        let mut completed = 0u64;
        let mut total_wait = 0.0f64;
        let mut waits = 0u64;
        let mut frag_stalls = 0u64;
        let mut unsupported = 0u64;
        let mut busy_cubes = 0usize;

        let advance_to = |now: &mut f64, t: f64, busy: usize, acc: &mut f64| {
            *acc += busy as f64 * (t - *now);
            *now = t;
        };

        while now < horizon_hours {
            // Next event: arrival or earliest release.
            releases.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            let next_release = releases.first().map(|r| r.0);
            let t_event = match next_release {
                Some(r) if r <= next_arrival => r,
                _ => next_arrival,
            };
            if t_event >= horizon_hours {
                advance_to(&mut now, horizon_hours, busy_cubes, &mut busy_cube_hours);
                break;
            }
            advance_to(&mut now, t_event, busy_cubes, &mut busy_cube_hours);

            if Some(t_event) == next_release {
                let (_, cubes) = releases.remove(0);
                busy_cubes -= cubes.len();
                idle.extend(cubes);
                completed += 1;
            } else {
                // Arrival: draw a spec from the mix.
                let mut pick = rng.random_range(0.0..total_weight);
                let spec = self
                    .mix
                    .iter()
                    .find(|s| {
                        pick -= s.weight;
                        pick <= 0.0
                    })
                    .unwrap_or(self.mix.last().expect("non-empty"));
                let dur = Exp::new(1.0 / spec.mean_hours)
                    .expect("positive rate")
                    .sample(&mut rng);
                if !alloc.supports(spec.shape) {
                    unsupported += 1;
                } else {
                    queue.push_back(PendingJob {
                        shape: spec.shape,
                        duration: dur,
                        arrived: now,
                    });
                }
                next_arrival = now + arrival.sample(&mut rng);
            }

            // Drain the queue with backfilling: oldest-first, but jobs
            // that fit run even when an older, larger job is still
            // waiting — the standard discipline of production gang
            // schedulers (and necessary for the paper's >98% utilization).
            let mut i = 0;
            while i < queue.len() {
                let job_shape = queue[i].shape;
                match alloc.allocate(job_shape, &idle) {
                    Some(cubes) => {
                        let job = queue.remove(i).expect("index in range");
                        for c in &cubes {
                            idle.remove(c);
                        }
                        busy_cubes += cubes.len();
                        total_wait += now - job.arrived;
                        waits += 1;
                        releases.push((now + job.duration, cubes));
                    }
                    None => {
                        if idle.len() >= job_shape.cube_count() {
                            frag_stalls += 1;
                        }
                        i += 1;
                    }
                }
            }
        }

        SimReport {
            utilization: busy_cube_hours / (64.0 * horizon_hours),
            completed,
            mean_wait_hours: if waits > 0 {
                total_wait / waits as f64
            } else {
                0.0
            },
            fragmentation_stalls: frag_stalls,
            unsupported,
            migrations: 0,
        }
    }

    /// Runs the contiguous (static-fabric) discipline with *migration
    /// defragmentation*: on a fragmentation stall the scheduler repacks
    /// every running job first-fit-decreasing into fresh boxes, charging
    /// each moved job `migration_hours` of lost progress (checkpoint,
    /// drain, restart). §4.2.4 credits the OCS pod's scheduler with
    /// defragmenting "more effectively" — this quantifies what the static
    /// alternative must pay for the same effect.
    pub fn run_contiguous_with_defrag(
        &self,
        horizon_hours: f64,
        migration_hours: f64,
        seed: u64,
    ) -> SimReport {
        assert!(horizon_hours > 0.0 && migration_hours >= 0.0);
        let alloc = crate::alloc::Contiguous;
        let mut rng = StdRng::seed_from_u64(seed);
        let arrival = Exp::new(1.0 / self.mean_interarrival_hours).expect("positive rate");
        let total_weight: f64 = self.mix.iter().map(|s| s.weight).sum();

        let mut idle: BTreeSet<CubeId> = (0..64).collect();
        // Running jobs: (completion time, cubes, shape).
        let mut running: Vec<(f64, Vec<CubeId>, SliceShape)> = Vec::new();
        let mut queue: VecDeque<PendingJob> = VecDeque::new();
        let mut now = 0.0f64;
        let mut next_arrival = arrival.sample(&mut rng);

        let mut busy_cube_hours = 0.0f64;
        let mut completed = 0u64;
        let mut total_wait = 0.0f64;
        let mut waits = 0u64;
        let mut frag_stalls = 0u64;
        let mut unsupported = 0u64;
        let mut busy_cubes = 0usize;
        // Cube-hours burned on checkpoint/drain/restart — occupied but not
        // doing useful work, so excluded from utilization.
        let mut migration_waste = 0.0f64;
        let mut migrations = 0u64;

        while now < horizon_hours {
            running.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            let next_release = running.first().map(|r| r.0);
            let t_event = match next_release {
                Some(r) if r <= next_arrival => r,
                _ => next_arrival,
            };
            if t_event >= horizon_hours {
                busy_cube_hours += busy_cubes as f64 * (horizon_hours - now);
                break;
            }
            busy_cube_hours += busy_cubes as f64 * (t_event - now);
            now = t_event;

            if Some(t_event) == next_release {
                let (_, cubes, _) = running.remove(0);
                busy_cubes -= cubes.len();
                idle.extend(cubes);
                completed += 1;
            } else {
                let mut pick = rng.random_range(0.0..total_weight);
                let spec = self
                    .mix
                    .iter()
                    .find(|s| {
                        pick -= s.weight;
                        pick <= 0.0
                    })
                    .unwrap_or(self.mix.last().expect("non-empty"));
                let dur = Exp::new(1.0 / spec.mean_hours)
                    .expect("positive rate")
                    .sample(&mut rng);
                if !alloc.supports(spec.shape) {
                    unsupported += 1;
                } else {
                    queue.push_back(PendingJob {
                        shape: spec.shape,
                        duration: dur,
                        arrived: now,
                    });
                }
                next_arrival = now + arrival.sample(&mut rng);
            }

            // Backfill, defragmenting on stalls.
            let mut i = 0;
            while i < queue.len() {
                let job_shape = queue[i].shape;
                let placed = match alloc.allocate(job_shape, &idle) {
                    Some(cubes) => Some(cubes),
                    None if idle.len() >= job_shape.cube_count() => {
                        frag_stalls += 1;
                        // Defragment: repack all running jobs FFD.
                        if let Some((new_assignments, moved)) = repack(&running, job_shape) {
                            idle = (0..64).collect();
                            for (slot, cubes) in new_assignments.iter().enumerate() {
                                for c in cubes {
                                    idle.remove(c);
                                }
                                let was_moved = moved.contains(&slot);
                                let entry = &mut running[slot];
                                entry.1 = cubes.clone();
                                if was_moved {
                                    entry.0 += migration_hours;
                                    migration_waste += cubes.len() as f64 * migration_hours;
                                    migrations += 1;
                                }
                            }
                            alloc.allocate(job_shape, &idle)
                        } else {
                            None
                        }
                    }
                    None => None,
                };
                match placed {
                    Some(cubes) => {
                        let job = queue.remove(i).expect("index in range");
                        for c in &cubes {
                            idle.remove(c);
                        }
                        busy_cubes += cubes.len();
                        total_wait += now - job.arrived;
                        waits += 1;
                        running.push((now + job.duration, cubes, job.shape));
                    }
                    None => i += 1,
                }
            }
        }

        SimReport {
            utilization: (busy_cube_hours - migration_waste).max(0.0) / (64.0 * horizon_hours),
            completed,
            mean_wait_hours: if waits > 0 {
                total_wait / waits as f64
            } else {
                0.0
            },
            fragmentation_stalls: frag_stalls,
            unsupported,
            migrations,
        }
    }
}

/// First-fit-decreasing repack of the running jobs into boxes, leaving
/// room for `incoming`. Returns per-job new cube sets and the indices of
/// jobs whose assignment changed, or `None` if even a full repack cannot
/// fit everything.
fn repack(
    running: &[(f64, Vec<CubeId>, SliceShape)],
    incoming: SliceShape,
) -> Option<(Vec<Vec<CubeId>>, Vec<usize>)> {
    use crate::alloc::{Allocator, Contiguous};
    let mut order: Vec<usize> = (0..running.len()).collect();
    order.sort_by(|&a, &b| running[b].1.len().cmp(&running[a].1.len()));
    let mut idle: BTreeSet<CubeId> = (0..64).collect();
    let mut new_assignments = vec![Vec::new(); running.len()];
    for &slot in &order {
        let cubes = Contiguous.allocate(running[slot].2, &idle)?;
        for c in &cubes {
            idle.remove(c);
        }
        new_assignments[slot] = cubes;
    }
    // The repack must actually make room for the stalled job.
    Contiguous.allocate(incoming, &idle)?;
    let moved = (0..running.len())
        .filter(|&s| new_assignments[s] != running[s].1)
        .collect();
    Some((new_assignments, moved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{Contiguous, Pooled};

    fn busy_cluster() -> ClusterSim {
        // Heavy offered load so utilization is allocator-limited, not
        // demand-limited.
        ClusterSim::new(default_mix(), 0.25)
    }

    #[test]
    fn pooled_achieves_high_utilization() {
        let report = busy_cluster().run(&Pooled, 2000.0, 42);
        assert!(
            report.utilization > 0.95,
            "pooled utilization {:.3} should exceed 95% under load (paper: >98%)",
            report.utilization
        );
        assert_eq!(report.fragmentation_stalls, 0, "pooling cannot fragment");
        assert_eq!(report.unsupported, 0);
    }

    #[test]
    fn contiguous_loses_utilization_to_fragmentation() {
        let sim = busy_cluster();
        let pooled = sim.run(&Pooled, 2000.0, 42);
        let contiguous = sim.run(&Contiguous, 2000.0, 42);
        // The gap's exact size is RNG-stream dependent (observed 0.011–0.029
        // across seeds); a full percentage point of cluster utilization is
        // already material at fleet scale.
        assert!(
            contiguous.utilization < pooled.utilization - 0.01,
            "contiguous {:.3} should trail pooled {:.3} materially",
            contiguous.utilization,
            pooled.utilization
        );
        assert!(
            contiguous.fragmentation_stalls > 100,
            "expected routine fragmentation stalls, got {}",
            contiguous.fragmentation_stalls
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        // (Per-job wait and completion counts are survivor-biased under
        // backfilling — large jobs that starve on the contiguous cluster
        // never count — so cross-discipline deltas are asserted on
        // utilization and stalls in the tests above; here we check the
        // report's internal consistency.)
        let sim = busy_cluster();
        let r = sim.run(&Pooled, 500.0, 7);
        assert!(r.completed > 100, "busy cluster completes work");
        assert!(r.mean_wait_hours >= 0.0);
        assert!((0.0..=1.0).contains(&r.utilization));
    }

    #[test]
    fn light_load_equalizes_disciplines() {
        // With almost no contention both disciplines place everything.
        let sim = ClusterSim::new(default_mix(), 20.0);
        let pooled = sim.run(&Pooled, 2000.0, 3);
        let contiguous = sim.run(&Contiguous, 2000.0, 3);
        assert!((pooled.utilization - contiguous.utilization).abs() < 0.02);
        assert!(contiguous.mean_wait_hours < 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = busy_cluster();
        let a = sim.run(&Pooled, 500.0, 9);
        let b = sim.run(&Pooled, 500.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn defrag_recovers_some_of_the_gap_at_a_migration_cost() {
        // §4.2.4: pooled ≥ contiguous+defrag ≥ contiguous. Defrag converts
        // fragmentation stalls into migrations; with cheap migrations it
        // closes most of the gap, with expensive ones it is barely worth
        // it.
        let sim = busy_cluster();
        let pooled = sim.run(&Pooled, 600.0, 42);
        let plain = sim.run(&Contiguous, 600.0, 42);
        let cheap = sim.run_contiguous_with_defrag(600.0, 0.05, 42);
        let costly = sim.run_contiguous_with_defrag(600.0, 2.0, 42);
        assert!(
            cheap.utilization > plain.utilization,
            "cheap defrag must beat plain contiguous: {:.3} vs {:.3}",
            cheap.utilization,
            plain.utilization
        );
        assert!(
            pooled.utilization >= cheap.utilization - 0.01,
            "pooling still wins (or ties): {:.3} vs {:.3}",
            pooled.utilization,
            cheap.utilization
        );
        assert!(
            costly.utilization <= cheap.utilization + 0.01,
            "expensive migrations erode the benefit: {:.3} vs {:.3}",
            costly.utilization,
            cheap.utilization
        );
        assert_eq!(plain.migrations, 0, "no defrag, no migrations");
        assert!(
            cheap.migrations > 0,
            "defrag must have moved running jobs to recover utilization"
        );
    }

    #[test]
    fn asymmetric_shapes_unsupported_on_static() {
        let mix = vec![JobSpec {
            shape: SliceShape::new(4, 4, 256).unwrap(),
            mean_hours: 4.0,
            weight: 1.0,
        }];
        let sim = ClusterSim::new(mix, 1.0);
        let r = sim.run(&Contiguous, 200.0, 5);
        assert_eq!(r.completed, 0);
        assert!(r.unsupported > 100, "every arrival is unplaceable");
        let r2 = sim.run(&Pooled, 200.0, 5);
        assert!(r2.completed > 0, "the OCS fabric runs them");
    }
}
