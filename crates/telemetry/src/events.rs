//! The structured event bus.
//!
//! Events are the narrative complement to metrics: a metric says "commit
//! settle time p99 is 41 ms", an event says "commit #3 moved 12 circuits
//! on switch 5 at t=1.2 s". The bus keeps a bounded ring of recent events
//! (oldest dropped first, drops counted — never silent) and fans every
//! published event out to typed subscriber hooks before retention, so a
//! subscriber sees the full stream even when the ring is small.

use crate::severity::Severity;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// One switch applied a reconfiguration delta.
    Reconfig {
        /// Switch id.
        switch: u32,
        /// Circuits newly established.
        added: u32,
        /// Circuits torn down.
        removed: u32,
        /// Circuits left carrying light throughout.
        untouched: u32,
        /// Time until every new circuit is aligned.
        duration: Nanos,
    },
    /// The fabric controller committed a transaction.
    Commit {
        /// Switches touched.
        switches: u32,
        /// Circuits added fabric-wide.
        added: u32,
        /// Circuits removed fabric-wide.
        removed: u32,
        /// Circuits untouched fabric-wide (the isolation audit).
        untouched: u32,
        /// Time until traffic-ready (settle + transceiver re-acquisition).
        settle: Nanos,
    },
    /// The alarm aggregator opened a new incident (a page).
    IncidentOpened {
        /// Incident id.
        incident: u64,
        /// Severity at open.
        severity: Severity,
    },
    /// An open incident escalated.
    IncidentEscalated {
        /// Incident id.
        incident: u64,
        /// New severity.
        to: Severity,
    },
    /// An incident went quiet and cleared.
    IncidentCleared {
        /// Incident id.
        incident: u64,
        /// Alarms absorbed by blast-radius correlation.
        correlated: u64,
    },
    /// An SLO object burned through its error budget.
    SloViolated {
        /// The tracked object (e.g. `ocs-3`).
        object: String,
        /// Availability so far, in parts per million.
        availability_ppm: u64,
    },
    /// A collective ran materially slower than its healthy baseline.
    StragglerDetected {
        /// Torus dimension whose phase slowed.
        dim: u8,
        /// Phase slowdown in percent over baseline.
        slowdown_pct: u32,
    },
    /// A marginal link renegotiated below its top lane rate (§3.3.1).
    RateFallback {
        /// Port (census index) of the link.
        port: u32,
        /// Negotiated lane rate, Gb/s (0 = link dead).
        to_gbps: u32,
    },
    /// Anti-entropy: a desynced switch was reconciled back to the live
    /// slice union after revival (`Superpod::resync`). Informational —
    /// service-level replays use it to see self-healing activity that
    /// would otherwise be invisible between composes.
    Resync {
        /// Switch id that was reconciled.
        switch: u32,
        /// Circuits newly established by the reconciliation.
        added: u32,
        /// Circuits torn down.
        removed: u32,
        /// Circuits already correct.
        untouched: u32,
    },
    /// Free-form operator note (maintenance windows etc.).
    Note {
        /// The note text.
        text: String,
    },
}

/// A timestamped, attributed event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time.
    pub at: Nanos,
    /// Emitting subsystem (e.g. `fabric`, `ocs-3`, `scheduler`).
    pub source: String,
    /// Payload.
    pub kind: EventKind,
}

/// A typed hook invoked synchronously for every published event.
pub trait EventSubscriber {
    /// Called for each event, before ring retention.
    fn on_event(&mut self, event: &Event);
}

/// Bounded-retention event bus.
pub struct EventBus {
    retain: usize,
    ring: VecDeque<Event>,
    subscribers: Vec<Box<dyn EventSubscriber>>,
    published: u64,
    dropped: u64,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("retain", &self.retain)
            .field("retained", &self.ring.len())
            .field("published", &self.published)
            .field("dropped", &self.dropped)
            .field("subscribers", &self.subscribers.len())
            .finish()
    }
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::with_retention(1024)
    }
}

impl EventBus {
    /// A bus retaining the most recent `retain` events (≥ 1).
    pub fn with_retention(retain: usize) -> EventBus {
        assert!(retain > 0, "retention must be positive");
        EventBus {
            retain,
            ring: VecDeque::with_capacity(retain.min(4096)),
            subscribers: Vec::new(),
            published: 0,
            dropped: 0,
        }
    }

    /// Registers a subscriber hook. Hooks run in registration order.
    pub fn subscribe(&mut self, sub: Box<dyn EventSubscriber>) {
        self.subscribers.push(sub);
    }

    /// Publishes an event: subscribers first, then ring retention.
    pub fn publish(&mut self, event: Event) {
        for sub in &mut self.subscribers {
            sub.on_event(&event);
        }
        if self.ring.len() == self.retain {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
        self.published += 1;
    }

    /// Convenience: build and publish.
    pub fn emit(&mut self, at: Nanos, source: &str, kind: EventKind) {
        self.publish(Event {
            at,
            source: source.to_string(),
            kind,
        });
    }

    /// Retained events, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Total events ever published.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Events evicted from retention (still seen by subscribers).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::cell::Cell;
    use std::rc::Rc;

    struct CritCounter {
        pages: Rc<Cell<u32>>,
    }

    impl EventSubscriber for CritCounter {
        fn on_event(&mut self, event: &Event) {
            if matches!(
                event.kind,
                EventKind::IncidentOpened {
                    severity: Severity::Critical,
                    ..
                }
            ) {
                self.pages.set(self.pages.get() + 1);
            }
        }
    }

    #[test]
    fn ring_bounds_retention_and_counts_drops() {
        let mut bus = EventBus::with_retention(3);
        for i in 0..5u64 {
            bus.emit(
                Nanos(i),
                "test",
                EventKind::Note {
                    text: i.to_string(),
                },
            );
        }
        assert_eq!(bus.recent().count(), 3);
        assert_eq!(bus.published(), 5);
        assert_eq!(bus.dropped(), 2);
        let first = bus.recent().next().unwrap();
        assert_eq!(first.at, Nanos(2), "oldest events evicted first");
    }

    #[test]
    fn subscribers_see_everything_despite_small_ring() {
        // A paging hook must not miss incidents just because the ring is
        // tiny: subscribers run before retention.
        let pages = Rc::new(Cell::new(0));
        let mut bus = EventBus::with_retention(1);
        bus.subscribe(Box::new(CritCounter {
            pages: Rc::clone(&pages),
        }));
        for i in 0..4u64 {
            bus.emit(
                Nanos(i),
                "agg",
                EventKind::IncidentOpened {
                    incident: i,
                    severity: Severity::Critical,
                },
            );
        }
        assert_eq!(bus.recent().count(), 1);
        assert_eq!(bus.published(), 4);
        assert_eq!(bus.dropped(), 3);
        assert_eq!(pages.get(), 4, "hook saw every event, evicted or not");
    }
}
