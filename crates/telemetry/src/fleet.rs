//! The fleet observability facade: one struct wiring the four stores
//! together, with alarm→event plumbing.

use crate::alarms::{AlarmAggregator, AlarmRecord, IngestOutcome};
use crate::events::{EventBus, EventKind};
use crate::export;
use crate::metrics::MetricsRegistry;
use crate::slo::SloTracker;
use lightwave_units::Nanos;

/// Fleet-wide telemetry: metrics + events + alarm incidents + SLO.
///
/// Instrumentation modules in the device and control-plane crates
/// (`ocs::instrument`, `fabric::instrument`, …) record into this through
/// `&mut` — plain ownership, no interior mutability, fully deterministic.
#[derive(Debug, Default)]
pub struct FleetTelemetry {
    /// Labeled counters, gauges, log-scale histograms.
    pub metrics: MetricsRegistry,
    /// Structured event stream with bounded retention.
    pub events: EventBus,
    /// Alarm ingestion, debounce, blast-radius correlation.
    pub alarms: AlarmAggregator,
    /// Availability vs the 99.98% OCS target.
    pub slo: SloTracker,
}

impl FleetTelemetry {
    /// A facade with default policies (1024-event retention, default
    /// aggregation windows, 99.98% SLO target).
    pub fn new() -> FleetTelemetry {
        FleetTelemetry::default()
    }

    /// Ingests an alarm and publishes the matching incident-lifecycle
    /// event (opened/escalated); absorbed alarms publish nothing.
    pub fn ingest_alarm(&mut self, rec: AlarmRecord) -> IngestOutcome {
        let at = rec.at;
        let outcome = self.alarms.ingest(rec);
        match outcome {
            IngestOutcome::Paged { incident } => {
                let severity = self
                    .alarms
                    .incident(incident)
                    .expect("incident just opened")
                    .severity;
                self.events.emit(
                    at,
                    "alarms",
                    EventKind::IncidentOpened { incident, severity },
                );
            }
            IngestOutcome::Escalated { incident } => {
                let to = self
                    .alarms
                    .incident(incident)
                    .expect("incident exists")
                    .severity;
                self.events
                    .emit(at, "alarms", EventKind::IncidentEscalated { incident, to });
            }
            IngestOutcome::Coalesced { .. } | IngestOutcome::Correlated { .. } => {}
        }
        outcome
    }

    /// Advances aggregation time: quiet incidents clear (each publishing
    /// an [`EventKind::IncidentCleared`] event).
    pub fn advance(&mut self, now: Nanos) {
        for id in self.alarms.advance(now) {
            let correlated = self
                .alarms
                .incident(id)
                .expect("cleared incident exists")
                .correlated;
            self.events.emit(
                now,
                "alarms",
                EventKind::IncidentCleared {
                    incident: id,
                    correlated,
                },
            );
        }
    }

    /// Renders the text dashboard as of `now`.
    pub fn dashboard(&self, now: Nanos) -> String {
        export::text_dashboard(self, now)
    }

    /// Serializes the full state as JSON-lines as of `now`.
    pub fn to_jsonl(&self, now: Nanos) -> String {
        export::to_jsonl(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alarms::AlarmCause;
    use crate::severity::Severity;

    #[test]
    fn alarm_lifecycle_flows_into_events() {
        let mut t = FleetTelemetry::new();
        t.ingest_alarm(AlarmRecord {
            at: Nanos::from_millis(1),
            severity: Severity::Critical,
            switch: 0,
            cause: AlarmCause::ChassisDown,
        });
        // Repeat coalesces: no second event.
        t.ingest_alarm(AlarmRecord {
            at: Nanos::from_millis(2),
            severity: Severity::Critical,
            switch: 0,
            cause: AlarmCause::ChassisDown,
        });
        t.advance(Nanos::from_secs_f64(60.0));
        let kinds: Vec<_> = t.events.recent().map(|e| &e.kind).collect();
        assert_eq!(kinds.len(), 2, "opened + cleared, repeat suppressed");
        assert!(matches!(kinds[0], EventKind::IncidentOpened { .. }));
        assert!(matches!(kinds[1], EventKind::IncidentCleared { .. }));
    }

    #[test]
    fn exports_do_not_panic_on_empty_state() {
        let t = FleetTelemetry::new();
        let dash = t.dashboard(Nanos(0));
        assert!(dash.contains("METRICS"));
        let jsonl = t.to_jsonl(Nanos(0));
        assert!(jsonl.lines().count() >= 2, "meta + slo lines");
    }
}
