//! Exemplar-carrying histograms: every bucket remembers *which request*
//! produced its smallest and largest sample.
//!
//! An aggregate histogram answers "how bad is the tail?"; an exemplar
//! answers "show me one". Each bucket of an [`ExemplarHistogram`]
//! retains a min and a max [`Exemplar`] — the sample value plus the
//! request index and trace span id that produced it — so any tail
//! bucket links directly to the full Perfetto trace of a concrete
//! request.
//!
//! Exemplar selection is a lattice join over a total order, which keeps
//! the histogram's merge exactly associative and commutative like
//! [`LogHistogram`]'s: the min exemplar is the lexicographic minimum of
//! `(value, request)`, the max exemplar the lexicographic maximum of
//! `(value, −request)`. Ties on value therefore break **to the smaller
//! request index** on both ends — a pure, order-free rule, so sharded
//! runs pick the same exemplars whatever order cells merge in
//! (DESIGN §6.7).

use crate::histogram::{bucket_exponent, HistogramSnapshot, LogHistogram};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One retained sample: the value plus the identity needed to find its
/// full trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// The recorded sample value.
    pub value: f64,
    /// Request index in the arrival stream.
    pub request: u64,
    /// Trace span id of the request's root scope span (`0` = none).
    pub span: u64,
}

impl Exemplar {
    /// Whether `self` beats `other` as the bucket's **min** exemplar:
    /// smaller value, ties to the smaller request index.
    fn wins_min(&self, other: &Exemplar) -> bool {
        (self.value, self.request) < (other.value, other.request)
    }

    /// Whether `self` beats `other` as the bucket's **max** exemplar:
    /// larger value, ties to the smaller request index.
    fn wins_max(&self, other: &Exemplar) -> bool {
        self.value > other.value || (self.value == other.value && self.request < other.request)
    }
}

/// The two exemplars one bucket retains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BucketExemplars {
    /// The bucket's smallest sample.
    pub min: Exemplar,
    /// The bucket's largest sample.
    pub max: Exemplar,
}

impl BucketExemplars {
    /// Joins `e` in; returns whether `e` is now one of the retained
    /// exemplars.
    fn join(&mut self, e: Exemplar) -> bool {
        let mut kept = false;
        if e.wins_min(&self.min) {
            self.min = e;
            kept = true;
        }
        if e.wins_max(&self.max) {
            self.max = e;
            kept = true;
        }
        kept || e == self.min || e == self.max
    }
}

/// A [`LogHistogram`] whose buckets also retain min/max [`Exemplar`]s.
///
/// Zero/negative/NaN samples land in the base histogram's `nonfinite`
/// count and retain no exemplar, exactly like [`LogHistogram::record`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExemplarHistogram {
    hist: LogHistogram,
    /// Per-bucket exemplars, keyed by the bucket's lower-bound binary
    /// exponent. Sparse: only buckets with at least one sample.
    exemplars: BTreeMap<i16, BucketExemplars>,
}

impl ExemplarHistogram {
    /// An empty histogram.
    pub fn new() -> ExemplarHistogram {
        ExemplarHistogram::default()
    }

    /// Records one sample with its identity. Returns whether the sample
    /// is now one of its bucket's retained exemplars (callers use this
    /// to decide which full per-request timelines are worth keeping).
    pub fn record(&mut self, value: f64, request: u64, span: u64) -> bool {
        self.hist.record(value);
        if !(value > 0.0 && value.is_finite()) {
            return false;
        }
        let e = Exemplar {
            value,
            request,
            span,
        };
        match self.exemplars.entry(bucket_exponent(value)) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(BucketExemplars { min: e, max: e });
                true
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => slot.get_mut().join(e),
        }
    }

    /// The underlying count histogram.
    pub fn hist(&self) -> &LogHistogram {
        &self.hist
    }

    /// Bucketed sample count.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Quantile estimate (see [`LogHistogram::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }

    /// The **max** exemplar of the bucket containing quantile `q` — the
    /// concrete request a tail report should name. `None` when empty.
    pub fn quantile_exemplar(&self, q: f64) -> Option<Exemplar> {
        let exp = self.hist.quantile_bucket(q)?;
        self.exemplars.get(&exp).map(|b| b.max)
    }

    /// Every retained exemplar's request index, in ascending bucket
    /// order (min then max per bucket) — the retention set for
    /// exemplar-linked timeline GC.
    pub fn exemplar_requests(&self, out: &mut std::collections::BTreeSet<u64>) {
        for b in self.exemplars.values() {
            out.insert(b.min.request);
            out.insert(b.max.request);
        }
    }

    /// Every retained exemplar's span id (nonzero only), for trace
    /// annotation.
    pub fn exemplar_spans(&self, out: &mut std::collections::BTreeSet<u64>) {
        for b in self.exemplars.values() {
            for e in [b.min, b.max] {
                if e.span != 0 {
                    out.insert(e.span);
                }
            }
        }
    }

    /// Folds another histogram in. Exactly associative and commutative:
    /// integer count sums plus per-bucket exemplar joins over a total
    /// order.
    pub fn merge(&mut self, other: &ExemplarHistogram) {
        self.hist.merge(&other.hist);
        for (&exp, theirs) in &other.exemplars {
            match self.exemplars.entry(exp) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(*theirs);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let b = slot.get_mut();
                    if theirs.min.wins_min(&b.min) {
                        b.min = theirs.min;
                    }
                    if theirs.max.wins_max(&b.max) {
                        b.max = theirs.max;
                    }
                }
            }
        }
    }

    /// Sparse serializable view.
    pub fn snapshot(&self) -> ExemplarSnapshot {
        ExemplarSnapshot {
            counts: self.hist.snapshot(),
            exemplars: self
                .exemplars
                .iter()
                .map(|(&exp, &b)| ExemplarBucket {
                    exp,
                    min: b.min,
                    max: b.max,
                })
                .collect(),
        }
    }
}

/// One bucket's exemplars in an [`ExemplarSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExemplarBucket {
    /// The bucket's lower-bound binary exponent.
    pub exp: i16,
    /// See [`BucketExemplars::min`].
    pub min: Exemplar,
    /// See [`BucketExemplars::max`].
    pub max: Exemplar,
}

/// Sparse, serializable view of an [`ExemplarHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExemplarSnapshot {
    /// The count histogram.
    pub counts: HistogramSnapshot,
    /// Per-bucket exemplars, ascending by `exp`. Same bucket keys as
    /// `counts.buckets`.
    pub exemplars: Vec<ExemplarBucket>,
}

impl ExemplarSnapshot {
    /// Rebuilds the dense histogram (for merge-after-load).
    pub fn restore(&self) -> ExemplarHistogram {
        ExemplarHistogram {
            hist: self.counts.restore(),
            exemplars: self
                .exemplars
                .iter()
                .map(|b| {
                    (
                        b.exp,
                        BucketExemplars {
                            min: b.min,
                            max: b.max,
                        },
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(v: f64, r: u64) -> (f64, u64, u64) {
        (v, r, r.wrapping_mul(31))
    }

    #[test]
    fn buckets_retain_min_and_max_exemplars() {
        let mut h = ExemplarHistogram::new();
        for (v, r, s) in [ex(1.5, 10), ex(1.1, 11), ex(1.9, 12), ex(5.0, 13)] {
            h.record(v, r, s);
        }
        let snap = h.snapshot();
        assert_eq!(snap.exemplars.len(), 2, "two buckets: [1,2) and [4,8)");
        let b0 = &snap.exemplars[0];
        assert_eq!((b0.min.value, b0.min.request), (1.1, 11));
        assert_eq!((b0.max.value, b0.max.request), (1.9, 12));
        let b1 = &snap.exemplars[1];
        assert_eq!(b1.min.request, 13);
        assert_eq!(b1.max.request, 13);
    }

    #[test]
    fn value_ties_break_to_the_smaller_request() {
        // Both ends of the bucket: equal values keep the smaller index,
        // in either arrival order.
        for order in [[7u64, 3u64], [3, 7]] {
            let mut h = ExemplarHistogram::new();
            for r in order {
                h.record(2.5, r, 0);
            }
            let b = &h.snapshot().exemplars[0];
            assert_eq!(b.min.request, 3);
            assert_eq!(b.max.request, 3);
        }
    }

    #[test]
    fn merge_is_order_invariant_and_matches_single_stream() {
        let samples = [
            ex(0.002, 1),
            ex(3.0, 2),
            ex(3.0, 0),
            ex(900.0, 3),
            ex(2.2, 4),
            ex(0.0015, 5),
        ];
        let mut whole = ExemplarHistogram::new();
        let mut a = ExemplarHistogram::new();
        let mut b = ExemplarHistogram::new();
        for (i, &(v, r, s)) in samples.iter().enumerate() {
            whole.record(v, r, s);
            if i % 2 == 0 {
                a.record(v, r, s);
            } else {
                b.record(v, r, s);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab, whole, "merge equals single-stream recording");
    }

    #[test]
    fn quantile_exemplar_names_the_tail_bucket_representative() {
        let mut h = ExemplarHistogram::new();
        for i in 0..100u64 {
            h.record(1.0 + (i as f64) / 200.0, i, i + 1);
        }
        h.record(1000.0, 777, 778);
        let e = h.quantile_exemplar(0.999).expect("nonempty");
        assert_eq!(e.request, 777, "p99.9 lands in the outlier's bucket");
        assert!(h.quantile_exemplar(0.5).is_some());
        assert_eq!(ExemplarHistogram::new().quantile_exemplar(0.5), None);
    }

    #[test]
    fn record_reports_exemplar_status() {
        let mut h = ExemplarHistogram::new();
        assert!(h.record(4.0, 1, 0), "first sample is both exemplars");
        assert!(h.record(7.9, 2, 0), "new bucket max");
        assert!(!h.record(5.0, 3, 0), "mid-bucket sample is not retained");
        assert!(!h.record(0.0, 4, 0), "nonfinite samples never retained");
        assert_eq!(h.hist().nonfinite(), 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut h = ExemplarHistogram::new();
        for (v, r, s) in [ex(0.25, 9), ex(1e6, 2), ex(3.3, 4)] {
            h.record(v, r, s);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: ExemplarSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.restore(), h);
    }

    #[test]
    fn retention_sets_cover_all_buckets() {
        let mut h = ExemplarHistogram::new();
        h.record(1.0, 10, 100);
        h.record(64.0, 20, 0);
        let mut reqs = std::collections::BTreeSet::new();
        let mut spans = std::collections::BTreeSet::new();
        h.exemplar_requests(&mut reqs);
        h.exemplar_spans(&mut spans);
        assert_eq!(reqs.into_iter().collect::<Vec<_>>(), vec![10, 20]);
        assert_eq!(spans.into_iter().collect::<Vec<_>>(), vec![100]);
    }
}
