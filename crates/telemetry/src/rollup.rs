//! Campus-scale hierarchical telemetry rollups.
//!
//! ROADMAP item 1 grows the stack from one pod to dozens of pods and
//! ~100k OCS ports. At that cardinality a flat scrape — walk every
//! port-level series, re-fold everything — is O(ports) per poll and
//! cannot keep up. Mission Apollo's fleet monitoring works at
//! datacenter scale precisely because per-port optics roll up into
//! chassis- and fleet-level views; this module is that rollup plane.
//!
//! [`RollupTree`] maintains a four-level aggregation hierarchy —
//! **port → switch → pod → campus** — over the exact integer
//! [`Aggregate`] lattice from [`crate::timeseries`]:
//!
//! - **Ingest** is O(1): the sample folds into its port leaf's *pending
//!   delta* and the leaf joins a dirty set.
//! - **Scrape** is O(changed · depth): each dirty leaf's pending delta
//!   merges into the leaf total and then into exactly one switch, one
//!   pod, and the campus node. Untouched ports cost nothing.
//! - **Merge** is exact: [`Aggregate::merge`] is associative and
//!   commutative by construction, so per-cell trees from
//!   `service::engine::run_sharded`-style runs combine in shard order
//!   and the exported snapshot is byte-identical at any
//!   `LIGHTWAVE_THREADS` (DESIGN.md §6.9).
//!
//! The flat re-aggregation (`fold every leaf from EMPTY`) is kept as
//! [`RollupTree::flat_campus`]: it is the ground truth the chaos
//! invariant compares incremental node totals against after every
//! injected event, the reference the proptests fold in arbitrary
//! partition orders, and the baseline `bench_pr10` gates ≥10x against.
//!
//! [`CampusHealthDoc`] is the versioned queryable snapshot
//! (`lightwave/campus-health/v1`): per-level rollups with a
//! dominant-cause verdict at every node, plus the multi-window
//! burn-rate / error-budget section from [`crate::slo::BurnRateLedger`].

use crate::slo::{BurnReport, BurnStatus};
use crate::timeseries::{quantize, Aggregate, Sample};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Format tag of the exported campus snapshot.
pub const CAMPUS_HEALTH_FORMAT: &str = "lightwave/campus-health/v1";

/// Leaf coordinates in the campus hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortPath {
    /// Pod (cell) index.
    pub pod: u32,
    /// Switch id within the pod.
    pub switch: u32,
    /// Port id on the switch (0 for switch-scoped producers).
    pub port: u32,
}

impl PortPath {
    /// A leaf path.
    pub fn new(pod: u32, switch: u32, port: u32) -> PortPath {
        PortPath { pod, switch, port }
    }
}

/// Handle to an interned rollup metric (a `Vec` index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollupMetric(usize);

impl RollupMetric {
    /// The metric's intern index — the position of its slot in
    /// [`RollupTree::flat_campus`]'s output.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One node's per-metric aggregates, indexed by [`RollupMetric`].
#[derive(Debug, Clone, Default)]
struct NodeAggs {
    aggs: Vec<Aggregate>,
}

impl NodeAggs {
    fn fold(&mut self, metric: usize, delta: Aggregate) {
        if self.aggs.len() <= metric {
            self.aggs.resize(metric + 1, Aggregate::EMPTY);
        }
        self.aggs[metric] = self.aggs[metric].merge(delta);
    }

    fn get(&self, metric: usize) -> Aggregate {
        self.aggs.get(metric).copied().unwrap_or(Aggregate::EMPTY)
    }
}

/// One port leaf: the scraped total plus the not-yet-propagated delta,
/// with its interior-node slots resolved once at creation so the scrape
/// hot path is pure array arithmetic (no tree lookups).
#[derive(Debug, Clone)]
struct Leaf {
    total: NodeAggs,
    pending: NodeAggs,
    dirty: bool,
    /// Index into [`RollupTree::switches`].
    switch_slot: u32,
    /// Index into [`RollupTree::pods`].
    pod_slot: u32,
}

/// The campus aggregation tree (see module docs).
///
/// Node storage is slot-indexed `Vec`s; the `BTreeMap` side tables map
/// ids to slots and exist for queries and ordered iteration only —
/// ingest pays one leaf lookup, and [`RollupTree::scrape`] pays none.
#[derive(Debug, Clone, Default)]
pub struct RollupTree {
    /// Interned metric names, in registration order.
    metrics: Vec<String>,
    metric_ids: BTreeMap<String, usize>,
    leaves: Vec<Leaf>,
    leaf_slots: BTreeMap<PortPath, u32>,
    switches: Vec<NodeAggs>,
    switch_slots: BTreeMap<(u32, u32), u32>,
    pods: Vec<NodeAggs>,
    pod_slots: BTreeMap<u32, u32>,
    campus: NodeAggs,
    /// Dirty leaf slots awaiting propagation (each at most once — the
    /// leaf's `dirty` flag dedups).
    dirty: Vec<u32>,
    ingested: u64,
    scrapes: u64,
    propagated: u64,
}

impl RollupTree {
    /// An empty tree.
    pub fn new() -> RollupTree {
        RollupTree::default()
    }

    /// Interns (or finds) a metric by name.
    pub fn metric(&mut self, name: &str) -> RollupMetric {
        if let Some(&i) = self.metric_ids.get(name) {
            return RollupMetric(i);
        }
        let i = self.metrics.len();
        self.metrics.push(name.to_string());
        self.metric_ids.insert(name.to_string(), i);
        RollupMetric(i)
    }

    /// The interned metric names, in registration order.
    pub fn metric_names(&self) -> &[String] {
        &self.metrics
    }

    /// Resolves (or creates) the leaf slot for `path`, wiring its
    /// interior-node slots on first sight.
    fn leaf_slot(&mut self, path: PortPath) -> u32 {
        if let Some(&slot) = self.leaf_slots.get(&path) {
            return slot;
        }
        let switch_slot = match self.switch_slots.get(&(path.pod, path.switch)) {
            Some(&s) => s,
            None => {
                let s = self.switches.len() as u32;
                self.switches.push(NodeAggs::default());
                self.switch_slots.insert((path.pod, path.switch), s);
                s
            }
        };
        let pod_slot = match self.pod_slots.get(&path.pod) {
            Some(&s) => s,
            None => {
                let s = self.pods.len() as u32;
                self.pods.push(NodeAggs::default());
                self.pod_slots.insert(path.pod, s);
                s
            }
        };
        let slot = self.leaves.len() as u32;
        self.leaves.push(Leaf {
            total: NodeAggs::default(),
            pending: NodeAggs::default(),
            dirty: false,
            switch_slot,
            pod_slot,
        });
        self.leaf_slots.insert(path, slot);
        slot
    }

    /// Ingests one pre-quantized sample into `path`'s leaf: O(1), no
    /// propagation (that happens at the next [`RollupTree::scrape`]).
    pub fn ingest_micros(&mut self, m: RollupMetric, path: PortPath, at: Nanos, micros: i64) {
        let delta = Aggregate::from_sample(Sample {
            at,
            value_micros: micros,
        });
        let slot = self.leaf_slot(path);
        let leaf = &mut self.leaves[slot as usize];
        leaf.pending.fold(m.0, delta);
        if !leaf.dirty {
            leaf.dirty = true;
            self.dirty.push(slot);
        }
        self.ingested += 1;
    }

    /// Ingests one native-unit sample (quantized here, exactly once —
    /// the same float→int boundary as [`crate::timeseries::quantize`]).
    pub fn ingest(&mut self, m: RollupMetric, path: PortPath, at: Nanos, value: f64) {
        self.ingest_micros(m, path, at, quantize(value));
    }

    /// Convenience ingest by metric name (interns on first use).
    pub fn record(&mut self, name: &str, path: PortPath, at: Nanos, value: f64) {
        let m = self.metric(name);
        self.ingest(m, path, at, value);
    }

    /// Propagates every dirty leaf's pending delta up the tree —
    /// leaf total, switch, pod, campus — and returns how many leaves
    /// were propagated. Cost is O(dirty · depth), independent of the
    /// total port count; with nothing dirty it is O(1).
    pub fn scrape(&mut self) -> usize {
        let dirty = std::mem::take(&mut self.dirty);
        let n = dirty.len();
        for slot in dirty {
            let leaf = &mut self.leaves[slot as usize];
            let pending = std::mem::take(&mut leaf.pending);
            leaf.dirty = false;
            let (sw, pod) = (leaf.switch_slot as usize, leaf.pod_slot as usize);
            for (metric, &delta) in pending.aggs.iter().enumerate() {
                if delta.count == 0 {
                    continue;
                }
                leaf.total.fold(metric, delta);
            }
            for (metric, &delta) in pending.aggs.iter().enumerate() {
                if delta.count == 0 {
                    continue;
                }
                self.switches[sw].fold(metric, delta);
                self.pods[pod].fold(metric, delta);
                self.campus.fold(metric, delta);
            }
        }
        self.scrapes += 1;
        self.propagated += n as u64;
        n
    }

    /// Merges another tree into this one (consuming it). Both sides are
    /// scraped first, then every level merges node-wise with metric
    /// names remapped through this tree's intern table — exact in any
    /// association because [`Aggregate::merge`] is, though callers merge
    /// in shard order for byte-identical intern ordering.
    pub fn merge(&mut self, mut other: RollupTree) {
        self.scrape();
        other.scrape();
        // other metric index -> self metric index.
        let remap: Vec<usize> = other.metrics.iter().map(|n| self.metric(n).0).collect();
        let fold_remapped = |dst: &mut NodeAggs, src: &NodeAggs| {
            for (m, &agg) in src.aggs.iter().enumerate() {
                if agg.count > 0 {
                    dst.fold(remap[m], agg);
                }
            }
        };
        // The leaf fold reaches switch/pod/campus through the same
        // remap, so interior nodes stay exactly the leaf sums.
        let mut other_leaves = std::mem::take(&mut other.leaves);
        for (&path, &slot) in &other.leaf_slots {
            let mine = self.leaf_slot(path);
            let src = std::mem::take(&mut other_leaves[slot as usize].total);
            let dst = &mut self.leaves[mine as usize];
            let (sw, pod) = (dst.switch_slot as usize, dst.pod_slot as usize);
            fold_remapped(&mut dst.total, &src);
            fold_remapped(&mut self.switches[sw], &src);
            fold_remapped(&mut self.pods[pod], &src);
            fold_remapped(&mut self.campus, &src);
        }
        self.ingested += other.ingested;
        self.propagated += other.propagated;
    }

    /// The campus-level aggregate of `m` (scraped state only).
    pub fn campus_agg(&self, m: RollupMetric) -> Aggregate {
        self.campus.get(m.0)
    }

    /// The pod-level aggregate of `m`.
    pub fn pod_agg(&self, pod: u32, m: RollupMetric) -> Aggregate {
        self.pod_slots
            .get(&pod)
            .map(|&s| self.pods[s as usize].get(m.0))
            .unwrap_or(Aggregate::EMPTY)
    }

    /// The switch-level aggregate of `m`.
    pub fn switch_agg(&self, pod: u32, switch: u32, m: RollupMetric) -> Aggregate {
        self.switch_slots
            .get(&(pod, switch))
            .map(|&s| self.switches[s as usize].get(m.0))
            .unwrap_or(Aggregate::EMPTY)
    }

    /// The port-leaf aggregate of `m` (scraped total, excluding any
    /// pending delta).
    pub fn port_agg(&self, path: PortPath, m: RollupMetric) -> Aggregate {
        self.leaf_slots
            .get(&path)
            .map(|&s| self.leaves[s as usize].total.get(m.0))
            .unwrap_or(Aggregate::EMPTY)
    }

    /// Pod ids present, ascending.
    pub fn pod_ids(&self) -> Vec<u32> {
        self.pod_slots.keys().copied().collect()
    }

    /// Switch ids present under `pod`, ascending.
    pub fn switch_ids(&self, pod: u32) -> Vec<u32> {
        self.switch_slots
            .range((pod, 0)..=(pod, u32::MAX))
            .map(|(&(_, s), _)| s)
            .collect()
    }

    /// Leaf count (distinct ports ever ingested).
    pub fn ports(&self) -> usize {
        self.leaves.len()
    }

    /// Samples ever ingested.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Leaves currently awaiting propagation.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// The flat ground truth: campus totals re-folded from every leaf
    /// (scraped total ⊕ pending delta), one [`Aggregate`] per interned
    /// metric. O(ports) — the cost the incremental scrape avoids, kept
    /// as the reference for invariants, proptests, and `bench_pr10`.
    pub fn flat_campus(&self) -> Vec<Aggregate> {
        let mut out = vec![Aggregate::EMPTY; self.metrics.len()];
        for leaf in &self.leaves {
            for (m, slot) in out.iter_mut().enumerate() {
                *slot = slot.merge(leaf.total.get(m)).merge(leaf.pending.get(m));
            }
        }
        out
    }

    /// Checks every interior node against a fresh flat re-aggregation
    /// of the scraped leaf totals: switch, pod, and campus rollups must
    /// all equal the fold of their leaves. Call after
    /// [`RollupTree::scrape`]; returns the first divergence found.
    pub fn check_consistency(&self) -> Result<(), String> {
        let nm = self.metrics.len();
        let mut switches: BTreeMap<(u32, u32), Vec<Aggregate>> = BTreeMap::new();
        let mut pods: BTreeMap<u32, Vec<Aggregate>> = BTreeMap::new();
        let mut campus = vec![Aggregate::EMPTY; nm];
        for (path, &slot) in &self.leaf_slots {
            let leaf = &self.leaves[slot as usize];
            let sw = switches
                .entry((path.pod, path.switch))
                .or_insert_with(|| vec![Aggregate::EMPTY; nm]);
            for (m, slot) in sw.iter_mut().enumerate() {
                *slot = slot.merge(leaf.total.get(m));
            }
            let pd = pods
                .entry(path.pod)
                .or_insert_with(|| vec![Aggregate::EMPTY; nm]);
            for (m, slot) in pd.iter_mut().enumerate() {
                let a = leaf.total.get(m);
                *slot = slot.merge(a);
                campus[m] = campus[m].merge(a);
            }
        }
        for (&(pod, sw), want) in &switches {
            for (m, want) in want.iter().enumerate() {
                let have = self.switch_agg(pod, sw, RollupMetric(m));
                if have != *want {
                    return Err(format!(
                        "switch ({pod},{sw}) metric {}: rollup {:?} != flat {:?}",
                        self.metrics[m], have, want
                    ));
                }
            }
        }
        for (&pod, want) in &pods {
            for (m, want) in want.iter().enumerate() {
                let have = self.pod_agg(pod, RollupMetric(m));
                if have != *want {
                    return Err(format!(
                        "pod {pod} metric {}: rollup {:?} != flat {:?}",
                        self.metrics[m], have, want
                    ));
                }
            }
        }
        for (m, want) in campus.iter().enumerate() {
            let have = self.campus_agg(RollupMetric(m));
            if have != *want {
                return Err(format!(
                    "campus metric {}: rollup {:?} != flat {:?}",
                    self.metrics[m], have, want
                ));
            }
        }
        Ok(())
    }
}

/// One metric's aggregate at a node, named for export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricCell {
    /// Metric name.
    pub metric: String,
    /// Exact aggregate.
    pub agg: Aggregate,
}

/// One node of the exported hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeHealth {
    /// Per-metric aggregates, metric-name-sorted (empty metrics
    /// omitted).
    pub metrics: Vec<MetricCell>,
    /// The metric contributing the most samples at this node — the
    /// drill-down verdict an operator reads first. Ties break to the
    /// lexicographically smaller name.
    pub dominant_cause: Option<String>,
}

impl NodeHealth {
    fn build(names: &[String], get: impl Fn(usize) -> Aggregate) -> NodeHealth {
        let mut metrics: Vec<MetricCell> = names
            .iter()
            .enumerate()
            .filter_map(|(m, name)| {
                let agg = get(m);
                (agg.count > 0).then(|| MetricCell {
                    metric: name.clone(),
                    agg,
                })
            })
            .collect();
        metrics.sort_by(|a, b| a.metric.cmp(&b.metric));
        let dominant_cause = metrics
            .iter()
            .max_by(|a, b| a.agg.count.cmp(&b.agg.count).then(b.metric.cmp(&a.metric)))
            .map(|c| c.metric.clone());
        NodeHealth {
            metrics,
            dominant_cause,
        }
    }

    /// The aggregate of `metric` at this node, if present.
    pub fn metric(&self, metric: &str) -> Option<&Aggregate> {
        self.metrics
            .iter()
            .find(|c| c.metric == metric)
            .map(|c| &c.agg)
    }
}

/// One switch row in the snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchRow {
    /// Switch id within its pod.
    pub switch: u32,
    /// The switch-level rollup.
    pub node: NodeHealth,
}

/// One pod row in the snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodRow {
    /// Pod index.
    pub pod: u32,
    /// The pod-level rollup.
    pub node: NodeHealth,
    /// Per-switch drill-down, switch-id-sorted.
    pub switches: Vec<SwitchRow>,
}

/// The versioned queryable campus snapshot (`lightwave/campus-health/v1`).
///
/// Everything inside is integer-exact or deterministically ordered, so
/// the serialized document is byte-identical for the same logical
/// state at any worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampusHealthDoc {
    /// [`CAMPUS_HEALTH_FORMAT`].
    pub format: String,
    /// Sim time the snapshot was taken.
    pub generated_at: Nanos,
    /// Distinct port leaves rolled up.
    pub ports: u64,
    /// Campus-level rollup.
    pub campus: NodeHealth,
    /// Per-pod drill-down, pod-sorted.
    pub pods: Vec<PodRow>,
    /// Multi-window burn-rate / error-budget section.
    pub slo: BurnReport,
}

impl CampusHealthDoc {
    /// Builds the snapshot from a **scraped** tree and a burn-rate
    /// assessment. Call [`RollupTree::scrape`] first so pending deltas
    /// are included.
    pub fn build(tree: &RollupTree, slo: BurnReport, generated_at: Nanos) -> CampusHealthDoc {
        let names = tree.metric_names();
        let pods = tree
            .pod_ids()
            .into_iter()
            .map(|pod| PodRow {
                pod,
                node: NodeHealth::build(names, |m| tree.pod_agg(pod, RollupMetric(m))),
                switches: tree
                    .switch_ids(pod)
                    .into_iter()
                    .map(|sw| SwitchRow {
                        switch: sw,
                        node: NodeHealth::build(names, |m| {
                            tree.switch_agg(pod, sw, RollupMetric(m))
                        }),
                    })
                    .collect(),
            })
            .collect();
        CampusHealthDoc {
            format: CAMPUS_HEALTH_FORMAT.to_string(),
            generated_at,
            ports: tree.ports() as u64,
            campus: NodeHealth::build(names, |m| tree.campus_agg(RollupMetric(m))),
            pods,
            slo,
        }
    }

    /// Drill-down: one pod's row.
    pub fn pod(&self, pod: u32) -> Option<&PodRow> {
        self.pods.iter().find(|p| p.pod == pod)
    }

    /// Drill-down: one switch's row.
    pub fn switch(&self, pod: u32, switch: u32) -> Option<&SwitchRow> {
        self.pod(pod)?.switches.iter().find(|s| s.switch == switch)
    }

    /// The top-`k` error-budget burners: pods ordered by budget spent
    /// (descending), ties by pod id. The campus row is excluded — it is
    /// the sum, not a burner.
    pub fn top_burners(&self, k: usize) -> Vec<&BurnStatus> {
        let mut rows: Vec<&BurnStatus> = self.slo.pods.iter().collect();
        rows.sort_by(|a, b| {
            b.spent_nanos
                .cmp(&a.spent_nanos)
                .then(a.object.cmp(&b.object))
        });
        rows.truncate(k);
        rows
    }

    /// Dominant cause at the campus level.
    pub fn dominant_cause(&self) -> Option<&str> {
        self.campus.dominant_cause.as_deref()
    }

    /// Serializes the document (pretty JSON + trailing newline — the CI
    /// byte-compare artifact).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("doc serializes");
        s.push('\n');
        s
    }

    /// Parses a serialized document, checking the format tag.
    pub fn from_json(text: &str) -> Result<CampusHealthDoc, String> {
        let doc: CampusHealthDoc =
            serde_json::from_str(text).map_err(|e| format!("campus-health parse: {e}"))?;
        if doc.format != CAMPUS_HEALTH_FORMAT {
            return Err(format!(
                "campus-health format {:?}, want {CAMPUS_HEALTH_FORMAT:?}",
                doc.format
            ));
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::BurnRateLedger;
    use proptest::prelude::*;

    fn p(pod: u32, sw: u32, port: u32) -> PortPath {
        PortPath::new(pod, sw, port)
    }

    #[test]
    fn scrape_propagates_only_dirty_leaves() {
        let mut t = RollupTree::new();
        let m = t.metric("relocks");
        for port in 0..100 {
            t.ingest(m, p(0, port % 4, port), Nanos(port as u64), 1.0);
        }
        assert_eq!(t.scrape(), 100);
        assert_eq!(t.campus_agg(m).count, 100);
        // Touch two ports: the next scrape propagates exactly two.
        t.ingest(m, p(0, 1, 1), Nanos(200), 1.0);
        t.ingest(m, p(0, 1, 1), Nanos(201), 1.0);
        t.ingest(m, p(0, 2, 2), Nanos(202), 1.0);
        assert_eq!(t.dirty_len(), 2, "dirty set dedups per leaf");
        assert_eq!(t.scrape(), 2);
        assert_eq!(t.campus_agg(m).count, 103);
        assert_eq!(t.switch_agg(0, 1, m).count, 27);
        assert_eq!(t.port_agg(p(0, 1, 1), m).count, 3);
        assert_eq!(t.scrape(), 0, "clean tree scrapes nothing");
        t.check_consistency()
            .expect("nodes equal flat ground truth");
    }

    #[test]
    fn merge_equals_single_tree_and_flat_sum() {
        let mut whole = RollupTree::new();
        let mut a = RollupTree::new();
        let mut b = RollupTree::new();
        for i in 0..60u32 {
            let path = p(i % 3, i % 5, i);
            let at = Nanos(i as u64 * 7);
            let v = (i as f64) * 0.5 - 3.0;
            whole.record("drift_db", path, at, v);
            if i % 2 == 0 {
                a.record("drift_db", path, at, v);
            } else {
                b.record("drift_db", path, at, v);
            }
        }
        whole.scrape();
        a.merge(b);
        let m = whole.metric("drift_db");
        let ma = a.metric("drift_db");
        assert_eq!(whole.campus_agg(m), a.campus_agg(ma));
        assert_eq!(whole.flat_campus(), a.flat_campus());
        for pod in whole.pod_ids() {
            assert_eq!(whole.pod_agg(pod, m), a.pod_agg(pod, ma));
        }
        a.check_consistency().expect("merged tree consistent");
    }

    #[test]
    fn doc_builds_queries_and_round_trips() {
        let mut t = RollupTree::new();
        t.record("relocks", p(0, 1, 4), Nanos(5), 1.0);
        t.record("relocks", p(0, 1, 5), Nanos(6), 1.0);
        t.record("drift_db", p(1, 0, 0), Nanos(7), 0.25);
        t.scrape();
        let mut burn = BurnRateLedger::default();
        burn.observe(Nanos(0), 0, true);
        burn.observe(Nanos(0), 1, true);
        let doc = CampusHealthDoc::build(&t, burn.assess(Nanos(100)), Nanos(100));
        assert_eq!(doc.format, CAMPUS_HEALTH_FORMAT);
        assert_eq!(doc.ports, 3);
        assert_eq!(doc.dominant_cause(), Some("relocks"));
        assert_eq!(
            doc.pod(1).unwrap().node.dominant_cause.as_deref(),
            Some("drift_db")
        );
        let sw = doc.switch(0, 1).expect("switch row");
        assert_eq!(sw.node.metric("relocks").unwrap().count, 2);
        assert!(doc.switch(0, 9).is_none());
        let parsed = CampusHealthDoc::from_json(&doc.to_json()).expect("round trip");
        assert_eq!(parsed, doc);
    }

    proptest! {
        /// Hierarchical totals equal the flat fold whatever the ingest
        /// order, and scraping at arbitrary points never changes them.
        #[test]
        fn rollup_equals_flat_under_any_order(
            samples in proptest::collection::vec(
                (0u32..4, 0u32..6, 0u32..8, 0u64..1000, -500i64..500), 1..80),
            scrape_every in 1usize..10,
        ) {
            let mut t = RollupTree::new();
            let m = t.metric("x");
            let mut reference = Aggregate::EMPTY;
            for (i, &(pod, sw, port, at, v)) in samples.iter().enumerate() {
                t.ingest_micros(m, p(pod, sw, port), Nanos(at), v);
                reference = reference.merge(Aggregate::from_sample(Sample {
                    at: Nanos(at), value_micros: v,
                }));
                if i % scrape_every == 0 {
                    t.scrape();
                }
            }
            prop_assert_eq!(t.flat_campus()[0], reference);
            t.scrape();
            prop_assert_eq!(t.campus_agg(m), reference);
            t.check_consistency().map_err(|e| {
                TestCaseError::fail(format!("inconsistent: {e}"))
            })?;
        }
    }
}
