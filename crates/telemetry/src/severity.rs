//! Alarm severity, with an explicit is-worse-than ordering.
//!
//! This is *the* severity type of the workspace: `lightwave-ocs`
//! re-exports it as `ocs::telemetry::Severity`, so a per-switch alarm and
//! a fleet-level incident always speak the same language.

use serde::{Deserialize, Serialize};

/// Severity of an alarm or incident.
///
/// The derived `Ord` follows declaration order, and [`Severity::rank`]
/// pins that ordering explicitly: `Info < Warning < Critical`. Paging
/// policy everywhere in the workspace relies on "greater = worse".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational; no action needed.
    Info,
    /// Degraded but operating; schedule service.
    Warning,
    /// Service-affecting; page.
    Critical,
}

impl Severity {
    /// Explicit badness rank: `Info` = 0, `Warning` = 1, `Critical` = 2.
    ///
    /// The derived `Ord` is required to agree with this (unit-tested
    /// below); use whichever reads better at the call site.
    pub const fn rank(self) -> u8 {
        match self {
            Severity::Info => 0,
            Severity::Warning => 1,
            Severity::Critical => 2,
        }
    }

    /// Whether `self` is strictly worse than `other`.
    pub const fn is_worse_than(self, other: Severity) -> bool {
        self.rank() > other.rank()
    }

    /// The next-worse severity (`Critical` saturates).
    pub const fn escalated(self) -> Severity {
        match self {
            Severity::Info => Severity::Warning,
            Severity::Warning | Severity::Critical => Severity::Critical,
        }
    }

    /// Short uppercase label for dashboards.
    pub const fn label(self) -> &'static str {
        match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Severity; 3] = [Severity::Info, Severity::Warning, Severity::Critical];

    #[test]
    fn is_worse_than_matches_declared_ranks() {
        assert!(Severity::Critical.is_worse_than(Severity::Warning));
        assert!(Severity::Critical.is_worse_than(Severity::Info));
        assert!(Severity::Warning.is_worse_than(Severity::Info));
        assert!(!Severity::Info.is_worse_than(Severity::Info));
        assert!(!Severity::Warning.is_worse_than(Severity::Critical));
    }

    #[test]
    fn derived_ord_agrees_with_rank() {
        // The derive follows declaration order; `rank` pins it so a
        // reordering of the enum cannot silently invert paging policy.
        for a in ALL {
            for b in ALL {
                assert_eq!(a > b, a.is_worse_than(b), "{a:?} vs {b:?}");
                assert_eq!(a.cmp(&b), a.rank().cmp(&b.rank()), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn escalation_is_monotone_and_saturating() {
        for s in ALL {
            assert!(!s.is_worse_than(s.escalated()));
        }
        assert_eq!(Severity::Critical.escalated(), Severity::Critical);
        assert_eq!(Severity::Info.escalated(), Severity::Warning);
    }
}
