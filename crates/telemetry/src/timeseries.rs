//! Deterministic fixed-capacity multi-resolution time-series retention.
//!
//! The metrics registry ([`crate::metrics`]) keeps only *current* values;
//! this module retains bounded **history** so detectors and dashboards can
//! see trends. The design follows the log-histogram discipline of
//! DESIGN.md §6: samples are quantized to integer micro-units exactly
//! once at ingest, and every derived aggregate is built from integer
//! sums and min/max lattice joins — so merging downsample buckets is
//! *exactly* associative and commutative, and no float ever depends on
//! arrival order or worker count.
//!
//! Retention is two-layered:
//!
//! - a **raw ring** of the last `raw_capacity` samples, and
//! - **power-of-two downsample tiers**: tier `k` buckets samples into
//!   windows of `base_window << k` nanoseconds, each bucket an exact
//!   [`Aggregate`], each tier a fixed ring of `tier_capacity` buckets.
//!
//! Ingest is O(raw ring + tiers) per sample with no allocation on the
//! steady state (rings are at capacity).

use crate::metrics::MetricKey;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Micro-units per 1.0 of a sample's native unit (quantization scale).
pub const SERIES_SCALE: f64 = 1e6;

/// Quantizes a native-unit value to integer micro-units.
///
/// This is the *only* float→int boundary in the retention path; it runs
/// once per ingested sample, so every downstream aggregate is exact.
pub fn quantize(value: f64) -> i64 {
    (value * SERIES_SCALE).round() as i64
}

/// Converts micro-units back to the native unit (display only).
pub fn dequantize(micros: i64) -> f64 {
    micros as f64 / SERIES_SCALE
}

/// One retained sample: a sim-time stamp and a quantized value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Simulation time of the observation.
    pub at: Nanos,
    /// Value in integer micro-units (see [`SERIES_SCALE`]).
    pub value_micros: i64,
}

/// An exact downsample aggregate: integer sums and lattice joins only.
///
/// `merge` is associative and commutative by construction — the same
/// guarantee the log histogram gives bucket counts — so a bucket built
/// from samples in any order (or from merged sub-buckets) is
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Samples folded in.
    pub count: u64,
    /// Exact integer sum of quantized values.
    pub sum_micros: i64,
    /// Smallest quantized value.
    pub min_micros: i64,
    /// Largest quantized value.
    pub max_micros: i64,
    /// Earliest sample stamp folded in.
    pub first_at: Nanos,
    /// Latest sample stamp folded in.
    pub last_at: Nanos,
}

impl Aggregate {
    /// The identity element for [`Aggregate::merge`].
    pub const EMPTY: Aggregate = Aggregate {
        count: 0,
        sum_micros: 0,
        min_micros: i64::MAX,
        max_micros: i64::MIN,
        first_at: Nanos(u64::MAX),
        last_at: Nanos(0),
    };

    /// An aggregate of exactly one sample.
    pub fn from_sample(s: Sample) -> Aggregate {
        Aggregate {
            count: 1,
            sum_micros: s.value_micros,
            min_micros: s.value_micros,
            max_micros: s.value_micros,
            first_at: s.at,
            last_at: s.at,
        }
    }

    /// Exact merge: integer sums plus min/max/first/last lattice joins.
    pub fn merge(self, other: Aggregate) -> Aggregate {
        Aggregate {
            count: self.count + other.count,
            sum_micros: self.sum_micros + other.sum_micros,
            min_micros: self.min_micros.min(other.min_micros),
            max_micros: self.max_micros.max(other.max_micros),
            first_at: self.first_at.min(other.first_at),
            last_at: self.last_at.max(other.last_at),
        }
    }

    /// Integer mean in micro-units (truncating; `None` when empty).
    pub fn mean_micros(&self) -> Option<i64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_micros / self.count as i64)
        }
    }
}

/// One downsample bucket: the window start and its exact aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Window start (`at` floored to the tier window).
    pub start: Nanos,
    /// Exact aggregate of every sample in the window.
    pub agg: Aggregate,
}

/// Retention shape shared by every series in a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesConfig {
    /// Raw samples retained (ring, oldest evicted first).
    pub raw_capacity: usize,
    /// Tier-0 bucket window; tier `k` covers `base_window << k`.
    pub base_window: Nanos,
    /// Number of downsample tiers.
    pub tiers: u32,
    /// Buckets retained per tier (ring, oldest evicted first).
    pub tier_capacity: usize,
}

impl Default for SeriesConfig {
    fn default() -> SeriesConfig {
        SeriesConfig {
            raw_capacity: 256,
            base_window: Nanos::from_millis(250),
            tiers: 4,
            tier_capacity: 64,
        }
    }
}

/// A single bounded multi-resolution series.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    cfg: SeriesConfig,
    raw: VecDeque<Sample>,
    tiers: Vec<VecDeque<Bucket>>,
    total: u64,
}

impl TimeSeries {
    /// An empty series with the given retention shape.
    pub fn new(cfg: SeriesConfig) -> TimeSeries {
        TimeSeries {
            cfg,
            raw: VecDeque::with_capacity(cfg.raw_capacity),
            tiers: (0..cfg.tiers).map(|_| VecDeque::new()).collect(),
            total: 0,
        }
    }

    /// Ingests one pre-quantized sample.
    pub fn push_micros(&mut self, at: Nanos, value_micros: i64) {
        let s = Sample { at, value_micros };
        if self.raw.len() == self.cfg.raw_capacity {
            self.raw.pop_front();
        }
        self.raw.push_back(s);
        self.total += 1;
        for (k, tier) in self.tiers.iter_mut().enumerate() {
            let window = self.cfg.base_window.0.max(1) << k;
            let start = Nanos(at.0 / window * window);
            match tier.back_mut() {
                Some(b) if b.start == start => b.agg = b.agg.merge(Aggregate::from_sample(s)),
                Some(b) if start < b.start => {
                    // Out-of-order stamp: fold into the matching retained
                    // bucket (merge is order-exact), drop if evicted.
                    if let Some(b) = tier.iter_mut().find(|b| b.start == start) {
                        b.agg = b.agg.merge(Aggregate::from_sample(s));
                    }
                }
                _ => {
                    if tier.len() == self.cfg.tier_capacity {
                        tier.pop_front();
                    }
                    tier.push_back(Bucket {
                        start,
                        agg: Aggregate::from_sample(s),
                    });
                }
            }
        }
    }

    /// Ingests one native-unit sample (quantized here, exactly once).
    pub fn push(&mut self, at: Nanos, value: f64) {
        self.push_micros(at, quantize(value));
    }

    /// The raw retained samples, oldest first.
    pub fn raw(&self) -> impl Iterator<Item = &Sample> {
        self.raw.iter()
    }

    /// Retained buckets of tier `k`, oldest first.
    pub fn tier(&self, k: u32) -> impl Iterator<Item = &Bucket> {
        self.tiers[k as usize].iter()
    }

    /// Most recent sample, if any.
    pub fn latest(&self) -> Option<Sample> {
        self.raw.back().copied()
    }

    /// Total samples ever ingested (including evicted).
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Handle to a series registered in a [`SeriesStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// One exported counter sample — the unit of flight-recorder embedding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Series identity, rendered Prometheus-style (`name{k=v,...}`).
    pub series: String,
    /// Simulation time of the sample.
    pub at: Nanos,
    /// Value in integer micro-units.
    pub value_micros: i64,
}

/// One Perfetto counter track: a named series plus its raw points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterTrack {
    /// Track name (the series identity).
    pub name: String,
    /// Raw retained points, oldest first.
    pub points: Vec<Sample>,
}

/// A keyed collection of series sharing one retention shape.
///
/// Mirrors the [`crate::metrics::MetricsRegistry`] access pattern:
/// get-or-create by name + labels (allocates), then record through the
/// copy handle [`SeriesId`] (a `Vec` index).
#[derive(Debug, Clone)]
pub struct SeriesStore {
    cfg: SeriesConfig,
    series: Vec<TimeSeries>,
    index: BTreeMap<MetricKey, usize>,
    /// `switch` label value → the series carrying it, keyed by full
    /// identity so lookups stay name-sorted. Maintained in [`series`]
    /// (the only place a series is minted), so a per-switch slice is
    /// O(that switch's series) instead of a scan of every series.
    ///
    /// [`series`]: SeriesStore::series
    switch_index: BTreeMap<String, BTreeMap<MetricKey, usize>>,
}

impl Default for SeriesStore {
    fn default() -> SeriesStore {
        SeriesStore::new(SeriesConfig::default())
    }
}

impl SeriesStore {
    /// An empty store whose series all use `cfg`.
    pub fn new(cfg: SeriesConfig) -> SeriesStore {
        SeriesStore {
            cfg,
            series: Vec::new(),
            index: BTreeMap::new(),
            switch_index: BTreeMap::new(),
        }
    }

    /// Registers (or finds) a series by name + labels.
    pub fn series(&mut self, name: &str, labels: &[(&str, &str)]) -> SeriesId {
        let key = MetricKey::new(name, labels);
        if let Some(&i) = self.index.get(&key) {
            return SeriesId(i);
        }
        let i = self.series.len();
        self.series.push(TimeSeries::new(self.cfg));
        if let Some((_, sw)) = key.labels.iter().find(|(k, _)| k == "switch") {
            self.switch_index
                .entry(sw.clone())
                .or_default()
                .insert(key.clone(), i);
        }
        self.index.insert(key, i);
        SeriesId(i)
    }

    /// Ingests one native-unit sample into `id`.
    pub fn push(&mut self, id: SeriesId, at: Nanos, value: f64) {
        self.series[id.0].push(at, value);
    }

    /// Ingests one pre-quantized sample into `id`.
    pub fn push_micros(&mut self, id: SeriesId, at: Nanos, value_micros: i64) {
        self.series[id.0].push_micros(at, value_micros);
    }

    /// Read access to one series.
    pub fn get(&self, id: SeriesId) -> &TimeSeries {
        &self.series[id.0]
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Iterates series in deterministic (name-sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &TimeSeries)> {
        self.index.iter().map(|(k, &i)| (k, &self.series[i]))
    }

    /// The last `per_series` raw samples of every series labeled
    /// `switch=<switch>` — the blast-radius slice a flight-recorder
    /// postmortem embeds. Deterministic: series in name-sorted order,
    /// samples oldest first.
    pub fn recent_for_switch(&self, switch: u32, per_series: usize) -> Vec<CounterSample> {
        let mut out = Vec::new();
        let Some(members) = self.switch_index.get(switch.to_string().as_str()) else {
            return out;
        };
        // The inner map is keyed by full MetricKey, so iteration is
        // already the name-sorted order the flat scan produced.
        for (key, &i) in members {
            let ts = &self.series[i];
            let n = ts.raw.len();
            for s in ts.raw.iter().skip(n.saturating_sub(per_series)) {
                out.push(CounterSample {
                    series: key.to_string(),
                    at: s.at,
                    value_micros: s.value_micros,
                });
            }
        }
        out
    }

    /// Every series rendered as a Perfetto counter track (raw points,
    /// name-sorted order).
    pub fn tracks(&self) -> Vec<CounterTrack> {
        self.iter()
            .map(|(key, ts)| CounterTrack {
                name: key.to_string(),
                points: ts.raw.iter().copied().collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantization_round_trips_at_micro_resolution() {
        for v in [0.0, 0.25, -3.125, 120.000001] {
            assert!((dequantize(quantize(v)) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn raw_ring_evicts_oldest() {
        let mut ts = TimeSeries::new(SeriesConfig {
            raw_capacity: 3,
            ..SeriesConfig::default()
        });
        for i in 0..5u64 {
            ts.push(Nanos(i * 10), i as f64);
        }
        let vals: Vec<i64> = ts.raw().map(|s| s.value_micros).collect();
        assert_eq!(vals, vec![quantize(2.0), quantize(3.0), quantize(4.0)]);
        assert_eq!(ts.total(), 5);
    }

    #[test]
    fn tiers_bucket_by_power_of_two_windows() {
        let cfg = SeriesConfig {
            raw_capacity: 16,
            base_window: Nanos(100),
            tiers: 2,
            tier_capacity: 8,
        };
        let mut ts = TimeSeries::new(cfg);
        // Four samples across two tier-0 windows = one tier-1 window.
        for (t, v) in [(0u64, 1.0), (50, 2.0), (100, 3.0), (150, 4.0)] {
            ts.push(Nanos(t), v);
        }
        let t0: Vec<&Bucket> = ts.tier(0).collect();
        assert_eq!(t0.len(), 2);
        assert_eq!(t0[0].agg.count, 2);
        assert_eq!(t0[1].agg.count, 2);
        let t1: Vec<&Bucket> = ts.tier(1).collect();
        assert_eq!(t1.len(), 1);
        assert_eq!(t1[0].agg.count, 4);
        assert_eq!(t1[0].agg.sum_micros, quantize(10.0));
        assert_eq!(t1[0].agg.min_micros, quantize(1.0));
        assert_eq!(t1[0].agg.max_micros, quantize(4.0));
    }

    #[test]
    fn store_dedups_and_filters_by_switch_label() {
        let mut store = SeriesStore::default();
        let a = store.series("health_port_drift_db", &[("switch", "3"), ("port", "9")]);
        let b = store.series("health_port_drift_db", &[("port", "9"), ("switch", "3")]);
        assert_eq!(a, b, "label order must not mint a new series");
        let c = store.series("health_relocks", &[("switch", "4")]);
        store.push(a, Nanos(10), 0.25);
        store.push(c, Nanos(20), 1.0);
        let three = store.recent_for_switch(3, 8);
        assert_eq!(three.len(), 1);
        assert_eq!(three[0].series, "health_port_drift_db{port=9,switch=3}");
        assert_eq!(three[0].value_micros, quantize(0.25));
        assert!(store.recent_for_switch(7, 8).is_empty());
        assert_eq!(store.tracks().len(), 2);
    }

    /// The pre-index implementation of `recent_for_switch`, kept as the
    /// oracle: an O(all-series) scan in name-sorted order.
    fn recent_by_flat_scan(
        store: &SeriesStore,
        switch: u32,
        per_series: usize,
    ) -> Vec<CounterSample> {
        let want = switch.to_string();
        let mut out = Vec::new();
        for (key, ts) in store.iter() {
            if !key.labels.iter().any(|(k, v)| k == "switch" && *v == want) {
                continue;
            }
            let n = ts.raw.len();
            for s in ts.raw.iter().skip(n.saturating_sub(per_series)) {
                out.push(CounterSample {
                    series: key.to_string(),
                    at: s.at,
                    value_micros: s.value_micros,
                });
            }
        }
        out
    }

    #[test]
    fn switch_index_matches_the_flat_scan_exactly() {
        // A mixed registry: per-switch series interleaved with
        // unlabeled and differently-labeled ones, registered out of
        // name order so the index has to do the sorting.
        let mut store = SeriesStore::default();
        let mut ids = Vec::new();
        for sw in [7u32, 3, 5] {
            for name in ["z_relocks", "a_drift_db", "m_commits"] {
                let sv = sw.to_string();
                for port in 0..4u32 {
                    let pv = port.to_string();
                    ids.push(store.series(name, &[("switch", &sv), ("port", &pv)]));
                }
            }
        }
        ids.push(store.series("global_epoch", &[]));
        ids.push(store.series("pod_util", &[("pod", "1")]));
        let mut state = 0x51D3u64;
        for step in 0..600u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = ids[(state >> 33) as usize % ids.len()];
            store.push_micros(id, Nanos(step * 11), (state >> 40) as i64);
        }
        for sw in [3u32, 5, 7, 9] {
            for per in [1usize, 4, 1000] {
                assert_eq!(
                    store.recent_for_switch(sw, per),
                    recent_by_flat_scan(&store, sw, per),
                    "switch {sw} per_series {per}"
                );
            }
        }
        assert!(store.recent_for_switch(9, 8).is_empty());
    }

    fn agg_of(samples: &[Sample]) -> Aggregate {
        samples
            .iter()
            .fold(Aggregate::EMPTY, |a, &s| a.merge(Aggregate::from_sample(s)))
    }

    proptest! {
        /// The tentpole contract: bucket aggregates merge *exactly* in
        /// any order — fold left, fold right, shuffled, or tree-merged
        /// from arbitrary splits, the result is identical.
        #[test]
        fn aggregate_merge_is_exact_in_any_order(
            values in proptest::collection::vec((0u64..1_000_000, -500_000i64..500_000), 1..64),
            split in 0usize..64,
            shuffle_seed in 0u64..u64::MAX,
        ) {
            let samples: Vec<Sample> = values
                .iter()
                .map(|&(t, v)| Sample { at: Nanos(t), value_micros: v })
                .collect();
            let reference = agg_of(&samples);

            // Arbitrary split point, merged as two sub-aggregates.
            let cut = split % samples.len();
            let (lo, hi) = samples.split_at(cut);
            prop_assert_eq!(agg_of(lo).merge(agg_of(hi)), reference);
            prop_assert_eq!(agg_of(hi).merge(agg_of(lo)), reference);

            // Deterministic shuffle (splitmix-style LCG walk).
            let mut shuffled = samples.clone();
            let mut state = shuffle_seed;
            for i in (1..shuffled.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            prop_assert_eq!(agg_of(&shuffled), reference);
        }

        /// Tier buckets are themselves exact: the tier-1 bucket equals
        /// the merge of its two tier-0 children, whatever the input.
        #[test]
        fn downsample_tiers_merge_exactly(
            values in proptest::collection::vec(-1000.0f64..1000.0, 1..40),
        ) {
            let cfg = SeriesConfig {
                raw_capacity: 64,
                base_window: Nanos(100),
                tiers: 2,
                tier_capacity: 64,
            };
            let mut ts = TimeSeries::new(cfg);
            for (i, &v) in values.iter().enumerate() {
                ts.push(Nanos(i as u64 * 37), v);
            }
            for b1 in ts.tier(1) {
                let children = ts
                    .tier(0)
                    .filter(|b0| b0.start.0 / 200 * 200 == b1.start.0)
                    .fold(Aggregate::EMPTY, |a, b| a.merge(b.agg));
                prop_assert_eq!(children, b1.agg);
            }
        }
    }
}
