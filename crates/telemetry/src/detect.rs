//! Streaming detectors: EWMA drift, CUSUM change-point, windowed
//! rate-spike.
//!
//! Each detector is O(1) per sample, holds only integer state, and is a
//! **pure function of the sample sequence** — no wall clock, no
//! randomness, no floats whose value could depend on worker count
//! (property-tested below). Samples arrive pre-quantized in the
//! micro-units of [`crate::timeseries`].
//!
//! Detectors are *sticky*: once tripped they report `tripped()` forever
//! and `ingest` returns `true` exactly once, so one creeping port raises
//! one alarm, not one per subsequent sample.
//!
//! Threshold defaults are tuned against the deterministic chaos corpus
//! (`tests/fleet_health.rs`): the seed-2024 clean corpus must produce
//! zero trips while every generated slow-degradation schedule trips
//! before its hard failure — determinism makes that an exact invariant,
//! not a statistical claim.

use lightwave_units::Nanos;

/// CUSUM change-point configuration, in micro-units per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CusumConfig {
    /// Per-step allowance subtracted before accumulating (noise floor).
    pub slack_micros: i64,
    /// Cumulative-sum decision threshold.
    pub decision_micros: i64,
    /// Minimum distinct positive increments before a trip is allowed.
    ///
    /// This gate separates *creep* (many small rises) from a single
    /// legitimate step — e.g. a spare-mirror swap can move a port's
    /// drift by hundreds of milli-dB in one jump, which must not trip.
    pub min_rises: u32,
}

impl Default for CusumConfig {
    fn default() -> CusumConfig {
        CusumConfig {
            // 10 mdb/step allowance; 100 mdb cumulative decision.
            slack_micros: 10_000,
            decision_micros: 100_000,
            min_rises: 4,
        }
    }
}

/// One-sided (upward) CUSUM change-point detector over a level signal.
///
/// State: `s = max(0, s + (x_n − x_{n−1}) − slack)`, plus a count of
/// distinct positive increments. Trips when `s ≥ decision` **and**
/// `rises ≥ min_rises`. The baseline starts at zero because the signals
/// it watches (port drift) are deviations from as-built by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cusum {
    cfg: CusumConfig,
    s_micros: i64,
    rises: u32,
    last_micros: i64,
    tripped: bool,
}

impl Cusum {
    /// A fresh detector.
    pub fn new(cfg: CusumConfig) -> Cusum {
        Cusum {
            cfg,
            s_micros: 0,
            rises: 0,
            last_micros: 0,
            tripped: false,
        }
    }

    /// Folds in one sample; returns `true` exactly once, on the trip.
    pub fn ingest(&mut self, value_micros: i64) -> bool {
        let inc = value_micros - self.last_micros;
        self.last_micros = value_micros;
        if inc > 0 {
            self.rises += 1;
        }
        self.s_micros = (self.s_micros + inc - self.cfg.slack_micros).max(0);
        if !self.tripped
            && self.s_micros >= self.cfg.decision_micros
            && self.rises >= self.cfg.min_rises
        {
            self.tripped = true;
            return true;
        }
        false
    }

    /// Whether the detector has ever tripped.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Current cumulative sum (micro-units), for dashboards.
    pub fn sum_micros(&self) -> i64 {
        self.s_micros
    }

    /// Distinct positive increments seen.
    pub fn rises(&self) -> u32 {
        self.rises
    }
}

/// EWMA drift-detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EwmaConfig {
    /// Smoothing as an arithmetic shift: `α = 2^-shift` (integer EWMA).
    pub shift: u32,
    /// Deviation (sample − EWMA) that counts as "over", micro-units.
    pub threshold_micros: i64,
    /// Samples required before deviations are evaluated at all.
    pub min_samples: u32,
    /// Consecutive over-threshold samples required to trip.
    pub min_over: u32,
}

impl Default for EwmaConfig {
    fn default() -> EwmaConfig {
        EwmaConfig {
            shift: 3, // α = 1/8
            threshold_micros: 60_000,
            min_samples: 4,
            min_over: 3,
        }
    }
}

/// Integer EWMA drift detector: trips when a signal runs persistently
/// above its own smoothed history.
///
/// The update `ewma += (x − ewma) >> shift` is pure integer arithmetic,
/// so the smoothed baseline — like every detector state — is exact and
/// order-determined. A lone step (however large) re-baselines within
/// `min_over` samples and never trips on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EwmaDrift {
    cfg: EwmaConfig,
    ewma_micros: i64,
    samples: u32,
    over: u32,
    tripped: bool,
}

impl EwmaDrift {
    /// A fresh detector (baseline zero — the signals are deviations).
    pub fn new(cfg: EwmaConfig) -> EwmaDrift {
        EwmaDrift {
            cfg,
            ewma_micros: 0,
            samples: 0,
            over: 0,
            tripped: false,
        }
    }

    /// Folds in one sample; returns `true` exactly once, on the trip.
    pub fn ingest(&mut self, value_micros: i64) -> bool {
        self.samples += 1;
        let dev = value_micros - self.ewma_micros;
        if self.samples > self.cfg.min_samples && dev >= self.cfg.threshold_micros {
            self.over += 1;
        } else {
            self.over = 0;
        }
        self.ewma_micros += dev >> self.cfg.shift;
        if !self.tripped && self.over >= self.cfg.min_over {
            self.tripped = true;
            return true;
        }
        false
    }

    /// Whether the detector has ever tripped.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Current smoothed baseline (micro-units), for dashboards.
    pub fn ewma_micros(&self) -> i64 {
        self.ewma_micros
    }
}

/// Windowed rate-spike configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateSpikeConfig {
    /// Counting-window width (sim time).
    pub window: Nanos,
    /// Events per window for the window to qualify.
    pub per_window: u32,
    /// Contiguous qualifying windows required to trip.
    ///
    /// Requiring *contiguous* windows is what separates a sustained
    /// relock spike from a single-instant storm (one window, however
    /// many events) and from scattered background flaps.
    pub min_windows: u32,
}

impl Default for RateSpikeConfig {
    fn default() -> RateSpikeConfig {
        RateSpikeConfig {
            window: Nanos::from_millis(250),
            per_window: 2,
            min_windows: 3,
        }
    }
}

/// Event-rate spike detector over fixed sim-time windows.
///
/// Counts events per `window`; trips as soon as the current window
/// reaches `per_window` with `min_windows − 1` contiguous qualifying
/// windows immediately before it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateSpike {
    cfg: RateSpikeConfig,
    cur_idx: u64,
    cur_count: u32,
    streak: u32,
    primed: bool,
    tripped: bool,
}

impl RateSpike {
    /// A fresh detector.
    pub fn new(cfg: RateSpikeConfig) -> RateSpike {
        RateSpike {
            cfg,
            cur_idx: 0,
            cur_count: 0,
            streak: 0,
            primed: false,
            tripped: false,
        }
    }

    /// Folds in one event at sim time `at`; returns `true` exactly
    /// once, on the trip.
    pub fn ingest(&mut self, at: Nanos) -> bool {
        let idx = at.0 / self.cfg.window.0.max(1);
        if !self.primed {
            self.primed = true;
            self.cur_idx = idx;
        } else if idx != self.cur_idx {
            let qualified = self.cur_count >= self.cfg.per_window;
            if qualified && idx == self.cur_idx + 1 {
                self.streak += 1;
            } else {
                self.streak = 0;
            }
            self.cur_idx = idx;
            self.cur_count = 0;
        }
        self.cur_count += 1;
        if !self.tripped
            && self.cur_count >= self.cfg.per_window
            && self.streak + 1 >= self.cfg.min_windows
        {
            self.tripped = true;
            return true;
        }
        false
    }

    /// Whether the detector has ever tripped.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Qualifying-window streak immediately before the current window.
    pub fn streak(&self) -> u32 {
        self.streak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cusum_trips_on_creep_not_on_single_step() {
        // Creep: 10 × 30 mdb rises.
        let mut d = Cusum::new(CusumConfig::default());
        let mut tripped_at = None;
        for i in 1..=10i64 {
            if d.ingest(i * 30_000) {
                tripped_at = Some(i);
            }
        }
        assert_eq!(tripped_at, Some(5), "creep trips mid-ramp");
        assert!(d.tripped());
        // A lone 300 mdb spare-swap jump: rises gate holds it back.
        let mut d = Cusum::new(CusumConfig::default());
        assert!(!d.ingest(300_000));
        assert!(!d.tripped());
        assert_eq!(d.rises(), 1);
    }

    #[test]
    fn cusum_trip_fires_exactly_once() {
        let mut d = Cusum::new(CusumConfig::default());
        let trips: u32 = (1..=20i64).map(|i| d.ingest(i * 40_000) as u32).sum();
        assert_eq!(trips, 1);
    }

    #[test]
    fn ewma_trips_on_persistent_ramp_only() {
        let mut d = EwmaDrift::new(EwmaConfig::default());
        let mut trips = 0;
        for i in 1..=12i64 {
            trips += d.ingest(i * 30_000) as u32;
        }
        assert_eq!(trips, 1, "a sustained ramp trips once");
        // One big step then silence: min_samples gate → never evaluated.
        let mut d = EwmaDrift::new(EwmaConfig::default());
        assert!(!d.ingest(400_000));
        assert!(!d.ingest(400_000));
        assert!(!d.tripped());
    }

    #[test]
    fn rate_spike_needs_contiguous_windows() {
        let w = Nanos::from_millis(250).0;
        // Three contiguous windows, 3 events each → trips in window 3.
        let mut d = RateSpike::new(RateSpikeConfig::default());
        let mut trip_time = None;
        for round in 0..4u64 {
            for _ in 0..3 {
                if d.ingest(Nanos(round * w)) && trip_time.is_none() {
                    trip_time = Some(round);
                }
            }
        }
        assert_eq!(trip_time, Some(2));
        // A single-instant 16-event storm: one window, no trip.
        let mut d = RateSpike::new(RateSpikeConfig::default());
        for _ in 0..16 {
            assert!(!d.ingest(Nanos(1000)));
        }
        assert!(!d.tripped());
        // Qualifying windows with a gap: streak resets, no trip.
        let mut d = RateSpike::new(RateSpikeConfig::default());
        for round in [0u64, 1, 3, 4] {
            for _ in 0..3 {
                assert!(!d.ingest(Nanos(round * w)));
            }
        }
    }

    /// Replays a sample sequence through a detector twice and checks the
    /// final states match — plus prefix-purity: state after n samples
    /// equals a fresh detector fed the first n samples.
    fn assert_pure<D: PartialEq + std::fmt::Debug + Clone>(
        mk: impl Fn() -> D,
        step: impl Fn(&mut D, i64),
        seq: &[i64],
    ) {
        let mut a = mk();
        let mut b = mk();
        for &v in seq {
            step(&mut a, v);
            step(&mut b, v);
        }
        assert_eq!(a, b, "same sequence, same state");
        let cut = seq.len() / 2;
        let mut prefix = mk();
        for &v in &seq[..cut] {
            step(&mut prefix, v);
        }
        let mut replay = mk();
        for &v in &seq[..cut] {
            step(&mut replay, v);
        }
        assert_eq!(prefix, replay, "prefix state is reproducible");
    }

    proptest! {
        /// Detector state is a pure function of the sample sequence: two
        /// independent replays of the same sequence end in identical
        /// state (derive(PartialEq) covers every field), and every trip
        /// decision happens at the same index.
        #[test]
        fn cusum_and_ewma_are_pure_functions_of_the_sequence(
            seq in proptest::collection::vec(-500_000i64..500_000, 0..128),
        ) {
            assert_pure(
                || Cusum::new(CusumConfig::default()),
                |d, v| { d.ingest(v); },
                &seq,
            );
            assert_pure(
                || EwmaDrift::new(EwmaConfig::default()),
                |d, v| { d.ingest(v); },
                &seq,
            );
            // Trip indices, not just final state, must agree.
            let trips = |seq: &[i64]| -> Vec<usize> {
                let mut d = Cusum::new(CusumConfig::default());
                seq.iter().enumerate().filter(|&(_, &v)| d.ingest(v)).map(|(i, _)| i).collect()
            };
            prop_assert_eq!(trips(&seq), trips(&seq));
        }

        #[test]
        fn rate_spike_is_a_pure_function_of_the_stamp_sequence(
            stamps in proptest::collection::vec(0u64..10_000_000_000, 0..128),
        ) {
            let run = |stamps: &[u64]| {
                let mut d = RateSpike::new(RateSpikeConfig::default());
                let trips: Vec<usize> = stamps
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| d.ingest(Nanos(t)))
                    .map(|(i, _)| i)
                    .collect();
                (d, trips)
            };
            prop_assert_eq!(run(&stamps), run(&stamps));
        }
    }
}
