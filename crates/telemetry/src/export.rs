//! Exporters: a human-readable text dashboard and machine-readable
//! JSON-lines.
//!
//! Both walk the underlying stores in deterministic order (name-sorted
//! instruments, id-ordered incidents, publication-ordered events) and
//! stamp nothing but simulation time, so a seeded simulation exports
//! byte-identical output on every run — asserted by an integration test
//! at the workspace root.

use crate::alarms::Incident;
use crate::events::Event;
use crate::fleet::FleetTelemetry;
use crate::metrics::{MetricKey, MetricSample, MetricValue};
use crate::slo::SloReport;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One line of the JSONL export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JsonlRecord {
    /// Header line: what this export contains.
    Meta {
        /// Simulation time of the export.
        exported_at: Nanos,
        /// Instrument count.
        metrics: u64,
        /// Retained event count.
        events: u64,
        /// Incident count (open + cleared).
        incidents: u64,
    },
    /// One instrument sample.
    Metric {
        /// Instrument identity.
        key: MetricKey,
        /// Last update stamp.
        at: Nanos,
        /// Current value.
        sample: MetricSample,
    },
    /// One retained event.
    Event {
        /// The event.
        event: Event,
    },
    /// One incident.
    Incident {
        /// The incident.
        incident: Incident,
    },
    /// The SLO assessment.
    Slo {
        /// The report.
        report: SloReport,
    },
}

/// Serializes the full telemetry state as JSON-lines, one record per
/// line: a `Meta` header, then metrics, events, incidents, and the SLO
/// report.
pub fn to_jsonl(t: &FleetTelemetry, now: Nanos) -> String {
    let mut out = String::new();
    let mut push = |rec: &JsonlRecord| {
        out.push_str(&serde_json::to_string(rec).expect("telemetry types serialize"));
        out.push('\n');
    };
    push(&JsonlRecord::Meta {
        exported_at: now,
        metrics: t.metrics.len() as u64,
        events: t.events.recent().count() as u64,
        incidents: t.alarms.incidents().len() as u64,
    });
    for (key, sample, at) in t.metrics.samples() {
        push(&JsonlRecord::Metric { key, at, sample });
    }
    for event in t.events.recent() {
        push(&JsonlRecord::Event {
            event: event.clone(),
        });
    }
    for incident in t.alarms.incidents() {
        push(&JsonlRecord::Incident {
            incident: incident.clone(),
        });
    }
    push(&JsonlRecord::Slo {
        report: t.slo.report(now),
    });
    out
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 && v.abs() < 1e6 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Renders the fleet dashboard as plain text: metrics, open incidents,
/// SLO standing, and the recent-event tail.
pub fn text_dashboard(t: &FleetTelemetry, now: Nanos) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "── fleet telemetry @ {now} ──");

    let _ = writeln!(s, "\nMETRICS ({} instruments)", t.metrics.len());
    for (key, value, at) in t.metrics.iter() {
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(s, "  {key:<52} {c:>12}  (at {at})");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(s, "  {key:<52} {:>12}  (at {at})", fmt_value(*g));
            }
            MetricValue::Histogram(h) => {
                let (p50, p99) = (
                    h.quantile(0.5).map_or("-".into(), fmt_value),
                    h.quantile(0.99).map_or("-".into(), fmt_value),
                );
                let _ = writeln!(
                    s,
                    "  {key:<52} n={} p50={} p99={} max={}",
                    h.count(),
                    p50,
                    p99,
                    h.max().map_or("-".into(), fmt_value),
                );
            }
        }
    }

    let open: Vec<&Incident> = t.alarms.open_incidents().collect();
    let _ = writeln!(
        s,
        "\nINCIDENTS ({} open / {} total; {} pages, {} alarms suppressed)",
        open.len(),
        t.alarms.incidents().len(),
        t.alarms.pages(),
        t.alarms.suppressed(),
    );
    for inc in t.alarms.incidents() {
        let state = if inc.is_open() { "OPEN " } else { "clear" };
        let _ = writeln!(
            s,
            "  #{:<3} [{}] {} ocs-{} {:?} ×{} (+{} correlated) since {}",
            inc.id,
            state,
            inc.severity.label(),
            inc.switch,
            inc.class,
            inc.occurrences,
            inc.correlated,
            inc.opened_at,
        );
    }

    let slo = t.slo.report(now);
    let _ = writeln!(
        s,
        "\nSLO (target {:.4}%, fleet {:.4}%, {} violating)",
        slo.target * 100.0,
        slo.fleet_availability * 100.0,
        slo.violating,
    );
    for o in &slo.objects {
        let flag = if o.in_violation { " VIOLATION" } else { "" };
        let _ = writeln!(
            s,
            "  {:<20} avail {:.4}% down {} budget {:>5.1}% left{flag}",
            o.object,
            o.availability * 100.0,
            o.downtime,
            o.budget_remaining * 100.0,
        );
    }

    let tail: Vec<&Event> = t.events.recent().collect();
    let show = tail.len().min(12);
    let _ = writeln!(
        s,
        "\nEVENTS (last {show} of {} published, {} evicted)",
        t.events.published(),
        t.events.dropped(),
    );
    for e in &tail[tail.len() - show..] {
        let _ = writeln!(
            s,
            "  {:>12}  {:<10} {:?}",
            e.at.to_string(),
            e.source,
            e.kind
        );
    }
    s
}
