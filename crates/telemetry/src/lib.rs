//! # lightwave-telemetry
//!
//! Fleet-wide observability for the lightwave-fabric workspace: the
//! §3.2.2 "telemetry and anomaly reporting" layer, built as a library the
//! device and control-plane crates record into.
//!
//! The paper's operational argument is that at-scale OCS deployment was
//! won or lost on observability: switches have a large *blast radius*
//! (one chassis fault disturbs every circuit through it), the optical
//! link budget is "a precious commodity" eroded in tenths of a dB, and
//! the fleet target is ≥ 99.98% availability per OCS (§4.1.1). This
//! crate provides the corresponding machinery:
//!
//! - [`MetricsRegistry`] — labeled counters, gauges, and log-scale
//!   histograms, stamped with **simulation time** ([`Nanos`]) passed by
//!   callers. No wall clock exists anywhere in this crate, so seeded runs
//!   export byte-identical state (DESIGN.md §6 determinism rule).
//! - [`EventBus`] — structured events with bounded ring retention and
//!   typed subscriber hooks.
//! - [`AlarmAggregator`] — fleet alarm ingestion with debounce,
//!   hysteresis, severity escalation, and blast-radius correlation: one
//!   FRU failure pages once, not 48 times.
//! - [`SloTracker`] — per-object availability and error budget against
//!   the paper's 99.98% OCS target.
//! - [`export`] — a text dashboard and a JSON-lines serializer.
//! - [`timeseries`] — bounded multi-resolution metric history whose
//!   downsample aggregates merge *exactly* in any order.
//! - [`rollup`] — the campus observability plane: a dirty-set
//!   incremental port → switch → pod → campus aggregation tree and the
//!   versioned queryable `campus_health.json` snapshot.
//! - [`detect`] — O(1)-per-sample streaming detectors (EWMA drift,
//!   CUSUM change-point, windowed rate-spike), pure integer state.
//! - [`health`] — the analytics tier: detector banks over port drift
//!   and relock rates, a [`HealthScorer`] rollup, and the
//!   preemptive-maintenance advisor (the §3.2.2 "repair before it
//!   fails" loop as a library).
//!
//! [`FleetTelemetry`] bundles the four stores for the common case. The
//! [`Severity`] scale defined here is re-exported by `lightwave-ocs` as
//! `ocs::telemetry::Severity`, so per-switch alarms and fleet incidents
//! share one ordering.
//!
//! In the workspace DAG this crate sits directly above `lightwave-units`;
//! every crate that emits telemetry (`ocs`, `transceiver`, `fabric`,
//! `scheduler`, `superpod`) depends on it, each through its own
//! `instrument` module.
//!
//! ```
//! use lightwave_telemetry::{FleetTelemetry, AlarmRecord, AlarmCause, Severity};
//! use lightwave_units::Nanos;
//!
//! let mut t = FleetTelemetry::new();
//! let settle = t.metrics.histogram("commit_settle_ms", &[]);
//! t.metrics.observe(settle, Nanos::from_millis(12), 11.7);
//!
//! // A FRU fails; its 48 disturbed circuits alarm. One page.
//! t.ingest_alarm(AlarmRecord {
//!     at: Nanos::from_millis(20),
//!     severity: Severity::Warning,
//!     switch: 3,
//!     cause: AlarmCause::FruFailed { slot: 6 },
//! });
//! for port in 0..48u16 {
//!     t.ingest_alarm(AlarmRecord {
//!         at: Nanos::from_millis(21 + port as u64),
//!         severity: Severity::Warning,
//!         switch: 3,
//!         cause: AlarmCause::AlignmentTimeout { north: port },
//!     });
//! }
//! assert_eq!(t.alarms.pages(), 1);
//! assert_eq!(t.alarms.suppressed(), 48);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alarms;
pub mod detect;
pub mod events;
pub mod exemplar;
pub mod export;
pub mod fleet;
pub mod health;
pub mod histogram;
pub mod metrics;
pub mod rollup;
pub mod severity;
pub mod slo;
pub mod timeseries;

pub use alarms::{
    AggregatorConfig, AlarmAggregator, AlarmCause, AlarmRecord, CauseClass, Incident,
    IngestOutcome, TrendSignal,
};
pub use detect::{Cusum, CusumConfig, EwmaConfig, EwmaDrift, RateSpike, RateSpikeConfig};
pub use events::{Event, EventBus, EventKind, EventSubscriber};
pub use exemplar::{Exemplar, ExemplarBucket, ExemplarHistogram, ExemplarSnapshot};
pub use export::JsonlRecord;
pub use fleet::FleetTelemetry;
pub use health::{
    FleetHealth, FleetHealthReport, HealthConfig, HealthScorer, MaintenanceAction, MaintenanceKind,
    SwitchHealth, TrendTrip, HEALTH_FORMAT,
};
pub use histogram::{HistogramSnapshot, LogHistogram};
pub use metrics::{
    CounterId, GaugeId, HistogramId, MetricKey, MetricSample, MetricsRegistry, RateWindow,
};
pub use rollup::{
    CampusHealthDoc, MetricCell, NodeHealth, PodRow, PortPath, RollupMetric, RollupTree, SwitchRow,
    CAMPUS_HEALTH_FORMAT,
};
pub use severity::Severity;
pub use slo::{
    BurnConfig, BurnRateLedger, BurnReport, BurnStatus, ObjectSlo, SloReport, SloTracker,
    CAMPUS_ALARM_SWITCH, OCS_AVAILABILITY_TARGET, OCS_ERROR_BUDGET_PPM,
};
pub use timeseries::{
    Aggregate, CounterSample, CounterTrack, Sample, SeriesConfig, SeriesId, SeriesStore, TimeSeries,
};

// Re-exported for the doc example above.
#[doc(hidden)]
pub use lightwave_units::Nanos;
