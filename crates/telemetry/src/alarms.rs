//! Fleet-wide alarm aggregation: debounce, hysteresis, escalation, and
//! blast-radius correlation.
//!
//! §3.2.2: the switches have a large "blast radius" — one chassis-level
//! fault disturbs every circuit through the switch, and naive per-alarm
//! paging would page an operator 48 times for one failed FRU. The
//! aggregator turns the raw per-switch alarm stream into *incidents*:
//!
//! - **Debounce**: repeats of the same fault class on the same switch
//!   coalesce into the open incident (occurrence-counted, no new page).
//! - **Blast-radius correlation**: while a root-cause incident (FRU or
//!   chassis) is active on a switch, port-scoped symptoms from that
//!   switch (mirror, alignment, loss alarms) are absorbed as correlated
//!   children instead of paging.
//! - **Escalation**: a storm of occurrences escalates an incident to
//!   [`Severity::Critical`]; severity never moves down while an incident
//!   lives (hysteresis — flapping cannot downgrade a page).
//! - **Clearing**: an incident clears only after a quiet period with no
//!   new occurrences, and reopening within the debounce window revives
//!   the old incident rather than paging again (flap suppression).

use crate::severity::Severity;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Machine-parseable cause of a fleet alarm.
///
/// Mirrors the per-switch `ocs::telemetry::AlarmCode` plus causes raised
/// by other subsystems. Measured losses are quantized to milli-dB so the
/// type is fully `Eq`/`Ord` (and hence usable as a map key and exactly
/// comparable across runs).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlarmCause {
    /// A MEMS mirror failed; spare swapped if available.
    MirrorFailed {
        /// North (true) or South (false) die.
        north_die: bool,
        /// Port whose mirror failed.
        port: u16,
        /// Whether a spare restored the port.
        spare_used: bool,
    },
    /// Camera alignment loop failed to converge on a circuit.
    AlignmentTimeout {
        /// North port of the circuit.
        north: u16,
    },
    /// A chassis FRU failed.
    FruFailed {
        /// Slot index in the chassis.
        slot: u32,
    },
    /// The chassis dropped below operational redundancy.
    ChassisDown,
    /// A path's insertion loss exceeded its alarm threshold.
    HighLoss {
        /// North port.
        north: u16,
        /// South port.
        south: u16,
        /// Measured loss in milli-dB (quantized for exact comparison).
        loss_mdb: i32,
    },
    /// A transceiver link renegotiated below its top rate (§3.3.1).
    RateFallback {
        /// Port (census index) of the link.
        port: u32,
    },
    /// A collective phase ran materially slower than baseline.
    Straggler {
        /// Torus dimension of the slow phase.
        dim: u8,
    },
    /// A streaming detector caught a slow trend (drift creep or a
    /// sustained rate spike) before any hard-failure alarm fired.
    TrendAnomaly {
        /// Which trend signal tripped.
        signal: TrendSignal,
        /// Port the trend is attributed to (0 for switch-wide signals).
        port: u16,
    },
}

/// The trend signal a streaming detector watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrendSignal {
    /// Per-port insertion-loss drift creeping toward the link budget.
    LossDrift,
    /// Sustained transceiver relock/fallback rate on one switch.
    RelockRate,
    /// Multi-window SLO error-budget burn (fast **and** slow window
    /// both over the paging threshold — see
    /// [`crate::slo::BurnRateLedger`]). The alarm's `switch` field
    /// carries the pod id, or [`crate::slo::CAMPUS_ALARM_SWITCH`] for
    /// the campus-wide ledger.
    ErrorBudgetBurn,
}

/// Correlation class of a cause: incidents are keyed per (switch, class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CauseClass {
    /// Chassis-level root cause.
    Chassis,
    /// FRU-level root cause.
    Fru,
    /// Mirror-level symptom.
    Mirror,
    /// Alignment-loop symptom.
    Alignment,
    /// Optical-loss symptom.
    Loss,
    /// Transceiver link symptom.
    Link,
    /// Collective-performance symptom.
    Collective,
    /// Streaming-detector trend anomaly (predictive, not correlatable:
    /// a trend page is the early warning itself, never absorbed into a
    /// hard-failure incident's blast radius).
    Trend,
}

impl AlarmCause {
    /// The correlation class of this cause.
    pub fn class(&self) -> CauseClass {
        match self {
            AlarmCause::MirrorFailed { .. } => CauseClass::Mirror,
            AlarmCause::AlignmentTimeout { .. } => CauseClass::Alignment,
            AlarmCause::FruFailed { .. } => CauseClass::Fru,
            AlarmCause::ChassisDown => CauseClass::Chassis,
            AlarmCause::HighLoss { .. } => CauseClass::Loss,
            AlarmCause::RateFallback { .. } => CauseClass::Link,
            AlarmCause::Straggler { .. } => CauseClass::Collective,
            AlarmCause::TrendAnomaly { .. } => CauseClass::Trend,
        }
    }

    /// Whether this cause is a root cause whose blast radius absorbs
    /// port-scoped symptoms on the same switch.
    pub fn is_root_cause(&self) -> bool {
        matches!(self.class(), CauseClass::Chassis | CauseClass::Fru)
    }

    /// Whether this cause is a port-scoped symptom that a root-cause
    /// incident on the same switch can absorb.
    pub fn is_correlatable_symptom(&self) -> bool {
        matches!(
            self.class(),
            CauseClass::Mirror | CauseClass::Alignment | CauseClass::Loss
        )
    }
}

/// One raw alarm, attributed to a source switch (or pseudo-switch for
/// non-OCS subsystems).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlarmRecord {
    /// Simulation time the alarm fired.
    pub at: Nanos,
    /// Severity as raised.
    pub severity: Severity,
    /// Source switch id.
    pub switch: u32,
    /// Cause.
    pub cause: AlarmCause,
}

/// Aggregation policy knobs (all in simulation time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregatorConfig {
    /// Reopening a cleared incident within this window of its clearing
    /// revives it instead of paging again (flap suppression).
    pub debounce: Nanos,
    /// An incident clears after this long without new occurrences.
    pub clear_after: Nanos,
    /// Occurrence count at which an open incident escalates to Critical.
    pub escalate_after: u64,
    /// Symptoms within this window of a root incident's last activity are
    /// absorbed into it.
    pub correlation_window: Nanos,
}

impl Default for AggregatorConfig {
    fn default() -> AggregatorConfig {
        AggregatorConfig {
            debounce: Nanos::from_millis(500),
            clear_after: Nanos::from_secs_f64(5.0),
            escalate_after: 10,
            correlation_window: Nanos::from_secs_f64(2.0),
        }
    }
}

/// A correlated, debounced alarm group — the unit that pages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Stable id, assigned in open order.
    pub id: u64,
    /// Source switch.
    pub switch: u32,
    /// Correlation class.
    pub class: CauseClass,
    /// First cause observed (the presumed root).
    pub root: AlarmCause,
    /// When the incident opened.
    pub opened_at: Nanos,
    /// Last occurrence or absorbed symptom.
    pub last_at: Nanos,
    /// Worst severity seen (never decreases).
    pub severity: Severity,
    /// Same-class occurrences (including the opening alarm).
    pub occurrences: u64,
    /// Symptoms absorbed by blast-radius correlation.
    pub correlated: u64,
    /// Set when the incident has gone quiet and cleared.
    pub cleared_at: Option<Nanos>,
}

impl Incident {
    /// Whether the incident is still open.
    pub fn is_open(&self) -> bool {
        self.cleared_at.is_none()
    }
}

/// What [`AlarmAggregator::ingest`] did with a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// A new incident opened (this is the only outcome that pages).
    Paged {
        /// The new incident's id.
        incident: u64,
    },
    /// Coalesced into an already-open (or revived) incident of its class.
    Coalesced {
        /// The absorbing incident's id.
        incident: u64,
    },
    /// Escalated its incident to Critical while coalescing.
    Escalated {
        /// The escalated incident's id.
        incident: u64,
    },
    /// Absorbed into a root-cause incident's blast radius.
    Correlated {
        /// The root incident's id.
        incident: u64,
    },
}

impl IngestOutcome {
    /// The incident the record landed in.
    pub fn incident(&self) -> u64 {
        match *self {
            IngestOutcome::Paged { incident }
            | IngestOutcome::Coalesced { incident }
            | IngestOutcome::Escalated { incident }
            | IngestOutcome::Correlated { incident } => incident,
        }
    }
}

/// The fleet alarm aggregator.
#[derive(Debug, Default)]
pub struct AlarmAggregator {
    config: AggregatorConfig,
    /// Every incident ever opened, in id order (`incidents[id]`).
    incidents: Vec<Incident>,
    /// Open (or recently cleared, for debounce) incident per key.
    latest: BTreeMap<(u32, CauseClass), usize>,
    pages: u64,
    suppressed: u64,
    ingested: u64,
}

impl AlarmAggregator {
    /// An aggregator with default policy.
    pub fn new() -> AlarmAggregator {
        AlarmAggregator::default()
    }

    /// An aggregator with explicit policy.
    pub fn with_config(config: AggregatorConfig) -> AlarmAggregator {
        AlarmAggregator {
            config,
            ..AlarmAggregator::default()
        }
    }

    /// The active policy.
    pub fn config(&self) -> &AggregatorConfig {
        &self.config
    }

    /// Ingests one alarm record. Records must arrive in non-decreasing
    /// time order per switch (the natural order of a simulation export).
    pub fn ingest(&mut self, rec: AlarmRecord) -> IngestOutcome {
        self.ingested += 1;
        let class = rec.cause.class();
        let key = (rec.switch, class);

        // 1. An open (or revivable) incident of the same class absorbs
        //    the record: debounce.
        if let Some(&idx) = self.latest.get(&key) {
            // Open incidents absorb anything within the clear window of
            // their last activity; cleared ones revive within the
            // debounce window of their *clearing* (flap suppression).
            let (anchor, quiet_limit) = match self.incidents[idx].cleared_at {
                None => (self.incidents[idx].last_at, self.config.clear_after),
                Some(cleared) => (cleared, self.config.debounce),
            };
            let since = rec.at.saturating_sub(anchor);
            if since <= quiet_limit {
                let inc = &mut self.incidents[idx];
                if inc.cleared_at.is_some() {
                    // Flap: revive without a fresh page.
                    inc.cleared_at = None;
                }
                inc.occurrences += 1;
                inc.last_at = inc.last_at.max(rec.at);
                let before = inc.severity;
                inc.severity = inc.severity.max(rec.severity);
                self.suppressed += 1;
                // A Critical record must never vanish into a quieter
                // incident: absorbing one lifts the incident and reports
                // Escalated so the event stream (and anything wired to
                // it, like a flight recorder) sees the severity change.
                if inc.severity == Severity::Critical && before != Severity::Critical {
                    return IngestOutcome::Escalated { incident: inc.id };
                }
                // Trend incidents are predictive early warnings with
                // non-escalating semantics: a repeating trend signal
                // (burn-rate re-checks, detector re-trips) coalesces
                // but never storms its way to Critical — only a raised
                // severity on the record itself can lift it (above).
                if class != CauseClass::Trend
                    && inc.occurrences >= self.config.escalate_after
                    && inc.severity.is_worse_than(Severity::Info)
                    && inc.severity != Severity::Critical
                {
                    inc.severity = Severity::Critical;
                    return IngestOutcome::Escalated { incident: inc.id };
                }
                return IngestOutcome::Coalesced { incident: inc.id };
            }
        }

        // 2. Blast-radius correlation: a recent root-cause incident on
        //    the same switch absorbs port-scoped symptoms.
        if rec.cause.is_correlatable_symptom() {
            for root_class in [CauseClass::Fru, CauseClass::Chassis] {
                if let Some(&idx) = self.latest.get(&(rec.switch, root_class)) {
                    let inc = &mut self.incidents[idx];
                    let since = rec.at.saturating_sub(inc.last_at);
                    if inc.cleared_at.is_none() && since <= self.config.correlation_window {
                        inc.correlated += 1;
                        inc.last_at = inc.last_at.max(rec.at);
                        let before = inc.severity;
                        inc.severity = inc.severity.max(rec.severity);
                        self.suppressed += 1;
                        // Same never-drop-Critical rule as the debounce
                        // branch: a Critical symptom lifting its root
                        // incident reports Escalated, not a silent absorb.
                        if inc.severity == Severity::Critical && before != Severity::Critical {
                            return IngestOutcome::Escalated { incident: inc.id };
                        }
                        return IngestOutcome::Correlated { incident: inc.id };
                    }
                }
            }
        }

        // 3. Nothing absorbs it: open a new incident. This pages.
        let id = self.incidents.len() as u64;
        self.incidents.push(Incident {
            id,
            switch: rec.switch,
            class,
            root: rec.cause,
            opened_at: rec.at,
            last_at: rec.at,
            severity: rec.severity,
            occurrences: 1,
            correlated: 0,
            cleared_at: None,
        });
        self.latest.insert(key, id as usize);
        self.pages += 1;
        IngestOutcome::Paged { incident: id }
    }

    /// Advances aggregator time, clearing incidents quiet for longer than
    /// the policy's `clear_after`. Returns ids of incidents cleared now.
    pub fn advance(&mut self, now: Nanos) -> Vec<u64> {
        let mut cleared = Vec::new();
        for inc in &mut self.incidents {
            if inc.is_open() && now.saturating_sub(inc.last_at) > self.config.clear_after {
                inc.cleared_at = Some(now);
                cleared.push(inc.id);
            }
        }
        cleared
    }

    /// Every incident ever opened, in id (= open) order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Incident by id.
    pub fn incident(&self, id: u64) -> Option<&Incident> {
        self.incidents.get(id as usize)
    }

    /// Currently-open incidents.
    pub fn open_incidents(&self) -> impl Iterator<Item = &Incident> {
        self.incidents.iter().filter(|i| i.is_open())
    }

    /// Total pages emitted (new incidents opened).
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Alarms absorbed without paging (debounced + correlated).
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Total alarm records ingested.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ms: u64, severity: Severity, switch: u32, cause: AlarmCause) -> AlarmRecord {
        AlarmRecord {
            at: Nanos::from_millis(at_ms),
            severity,
            switch,
            cause,
        }
    }

    #[test]
    fn one_fru_failure_pages_once_not_48_times() {
        // The §3.2.2 blast-radius scenario: an HV-driver FRU fails and
        // every one of its 48 disturbed circuits raises an alignment
        // alarm. The operator gets exactly one page.
        let mut agg = AlarmAggregator::new();
        agg.ingest(rec(
            0,
            Severity::Warning,
            3,
            AlarmCause::FruFailed { slot: 6 },
        ));
        for port in 0..48u16 {
            agg.ingest(rec(
                1 + port as u64,
                Severity::Warning,
                3,
                AlarmCause::AlignmentTimeout { north: port },
            ));
        }
        assert_eq!(agg.pages(), 1, "one incident, one page");
        assert_eq!(agg.suppressed(), 48);
        let inc = &agg.incidents()[0];
        assert_eq!(inc.correlated, 48);
        assert_eq!(inc.class, CauseClass::Fru);
    }

    #[test]
    fn trend_repeats_coalesce_without_escalating() {
        // A burn-rate ledger re-checks every poll while the condition
        // holds, so a sustained burn produces a storm of identical
        // Trend records. They must coalesce into the one open page and
        // never occurrence-escalate to Critical: a trend is the early
        // warning itself, not a worsening hard failure.
        let mut agg = AlarmAggregator::new();
        let trend = AlarmCause::TrendAnomaly {
            signal: TrendSignal::ErrorBudgetBurn,
            port: 0,
        };
        let first = agg.ingest(rec(0, Severity::Warning, 2, trend.clone()));
        assert!(matches!(first, IngestOutcome::Paged { .. }));
        for i in 0..100u64 {
            let out = agg.ingest(rec(1 + i, Severity::Warning, 2, trend.clone()));
            assert!(
                matches!(out, IngestOutcome::Coalesced { .. }),
                "repeat {i} must coalesce, got {out:?}"
            );
        }
        let inc = &agg.incidents()[0];
        assert_eq!(inc.class, CauseClass::Trend);
        assert_eq!(inc.occurrences, 101);
        assert_eq!(inc.severity, Severity::Warning, "no occurrence escalation");
        // The never-drop-Critical rule still applies: a genuinely
        // Critical trend record lifts the incident and reports it.
        let out = agg.ingest(rec(200, Severity::Critical, 2, trend));
        assert!(matches!(out, IngestOutcome::Escalated { .. }));
        assert_eq!(agg.incidents()[0].severity, Severity::Critical);
    }

    #[test]
    fn symptoms_on_other_switches_still_page() {
        let mut agg = AlarmAggregator::new();
        agg.ingest(rec(
            0,
            Severity::Warning,
            3,
            AlarmCause::FruFailed { slot: 6 },
        ));
        let out = agg.ingest(rec(
            1,
            Severity::Warning,
            4,
            AlarmCause::AlignmentTimeout { north: 0 },
        ));
        assert!(matches!(out, IngestOutcome::Paged { .. }));
        assert_eq!(agg.pages(), 2, "correlation is per-switch");
    }

    #[test]
    fn debounce_coalesces_same_class_repeats() {
        let mut agg = AlarmAggregator::new();
        let first = agg.ingest(rec(
            0,
            Severity::Warning,
            1,
            AlarmCause::MirrorFailed {
                north_die: true,
                port: 5,
                spare_used: true,
            },
        ));
        let second = agg.ingest(rec(
            100,
            Severity::Warning,
            1,
            AlarmCause::MirrorFailed {
                north_die: true,
                port: 9,
                spare_used: true,
            },
        ));
        assert!(matches!(first, IngestOutcome::Paged { .. }));
        assert!(matches!(second, IngestOutcome::Coalesced { .. }));
        assert_eq!(agg.pages(), 1);
        assert_eq!(agg.incidents()[0].occurrences, 2);
    }

    #[test]
    fn occurrence_storm_escalates_to_critical() {
        let mut agg = AlarmAggregator::new();
        let mut escalated = false;
        for i in 0..12u64 {
            let out = agg.ingest(rec(
                i * 10,
                Severity::Warning,
                2,
                AlarmCause::AlignmentTimeout { north: 0 },
            ));
            if matches!(out, IngestOutcome::Escalated { .. }) {
                escalated = true;
            }
        }
        assert!(escalated, "a 12-occurrence storm escalates");
        assert_eq!(agg.incidents()[0].severity, Severity::Critical);
        assert_eq!(agg.pages(), 1, "escalation reuses the existing page");
    }

    #[test]
    fn critical_never_downgrades_while_flapping() {
        let mut agg = AlarmAggregator::new();
        agg.ingest(rec(0, Severity::Critical, 7, AlarmCause::ChassisDown));
        // Later Warning repeats of the same class must not soften it.
        agg.ingest(rec(50, Severity::Warning, 7, AlarmCause::ChassisDown));
        agg.ingest(rec(90, Severity::Info, 7, AlarmCause::ChassisDown));
        assert_eq!(agg.incidents()[0].severity, Severity::Critical);
    }

    #[test]
    fn critical_absorbed_into_open_warning_reports_escalated() {
        // Regression: a Critical record coalesced into an open Warning
        // incident used to return Coalesced, so no event was published
        // and a flight recorder wired to the event stream never saw the
        // incident go Critical — even if it cleared before the next
        // poll. The absorption must surface as Escalated.
        let mut agg = AlarmAggregator::new();
        let first = agg.ingest(rec(0, Severity::Warning, 7, AlarmCause::ChassisDown));
        assert!(matches!(first, IngestOutcome::Paged { .. }));
        let lifted = agg.ingest(rec(50, Severity::Critical, 7, AlarmCause::ChassisDown));
        assert!(
            matches!(lifted, IngestOutcome::Escalated { .. }),
            "severity lift to Critical must not be a silent Coalesced, got {lifted:?}"
        );
        assert_eq!(agg.incidents()[0].severity, Severity::Critical);
        assert_eq!(agg.pages(), 1, "escalation reuses the existing page");
        // A further Critical repeat is already at ceiling: plain coalesce.
        let repeat = agg.ingest(rec(90, Severity::Critical, 7, AlarmCause::ChassisDown));
        assert!(matches!(repeat, IngestOutcome::Coalesced { .. }));
    }

    #[test]
    fn critical_symptom_correlated_into_warning_root_reports_escalated() {
        // Same never-drop-Critical rule on the blast-radius path: a
        // Critical symptom folded into its Warning root incident must
        // report Escalated, not a silent Correlated.
        let mut agg = AlarmAggregator::new();
        agg.ingest(rec(
            0,
            Severity::Warning,
            3,
            AlarmCause::FruFailed { slot: 6 },
        ));
        let out = agg.ingest(rec(
            1,
            Severity::Critical,
            3,
            AlarmCause::AlignmentTimeout { north: 0 },
        ));
        assert!(
            matches!(out, IngestOutcome::Escalated { .. }),
            "Critical symptom must escalate its root incident, got {out:?}"
        );
        assert_eq!(agg.incidents()[0].severity, Severity::Critical);
        assert_eq!(agg.pages(), 1);
    }

    #[test]
    fn quiet_incidents_clear_and_flaps_revive_without_paging() {
        let cfg = AggregatorConfig {
            debounce: Nanos::from_millis(500),
            clear_after: Nanos::from_millis(100),
            ..AggregatorConfig::default()
        };
        let mut agg = AlarmAggregator::with_config(cfg);
        agg.ingest(rec(
            0,
            Severity::Warning,
            1,
            AlarmCause::HighLoss {
                north: 1,
                south: 2,
                loss_mdb: 2600,
            },
        ));
        let cleared = agg.advance(Nanos::from_millis(300));
        assert_eq!(cleared, vec![0]);
        assert!(!agg.incidents()[0].is_open());
        // Reopen within the debounce window of the clear: revive, no page.
        let out = agg.ingest(rec(
            600,
            Severity::Warning,
            1,
            AlarmCause::HighLoss {
                north: 1,
                south: 2,
                loss_mdb: 2700,
            },
        ));
        assert!(matches!(out, IngestOutcome::Coalesced { .. }));
        assert!(agg.incidents()[0].is_open(), "flap revived the incident");
        assert_eq!(agg.pages(), 1);
        // Far outside the window: a genuinely new incident.
        agg.advance(Nanos::from_millis(800));
        let out = agg.ingest(rec(
            5000,
            Severity::Warning,
            1,
            AlarmCause::HighLoss {
                north: 1,
                south: 2,
                loss_mdb: 2500,
            },
        ));
        assert!(matches!(out, IngestOutcome::Paged { .. }));
        assert_eq!(agg.pages(), 2);
    }

    #[test]
    fn correlation_window_expires() {
        let cfg = AggregatorConfig::default();
        let window_ms = cfg.correlation_window.0 / 1_000_000;
        let clear_ms = cfg.clear_after.0 / 1_000_000;
        let mut agg = AlarmAggregator::with_config(cfg);
        agg.ingest(rec(
            0,
            Severity::Warning,
            3,
            AlarmCause::FruFailed { slot: 1 },
        ));
        // A symptom long after the root went quiet — and after the root
        // cleared — is its own incident again.
        let late = clear_ms + window_ms + 1000;
        agg.advance(Nanos::from_millis(late - 1));
        let out = agg.ingest(rec(
            late,
            Severity::Warning,
            3,
            AlarmCause::AlignmentTimeout { north: 2 },
        ));
        assert!(matches!(out, IngestOutcome::Paged { .. }));
    }
}
