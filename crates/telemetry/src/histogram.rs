//! Log-scale histograms with exactly-mergeable state.
//!
//! Observability distributions in this workspace span many decades — BER
//! from 1e-12 to 2e-4, switch durations from microseconds to seconds — so
//! buckets are logarithmic: one per binary order of magnitude (factor-of-2
//! resolution), indexed straight off the IEEE-754 exponent. That makes
//! `record` a few integer ops (no `log()` call, no allocation) and makes
//! [`LogHistogram::merge`] *exactly* associative and commutative: bucket
//! counts are integer sums and min/max are lattice joins. A histogram
//! deliberately stores no floating-point running sum — the mean is
//! estimated from bucket midpoints — so merging partial histograms in any
//! order yields bit-identical state (property-tested at the workspace
//! root).

use serde::{Deserialize, Serialize};

/// Lowest binary exponent with its own bucket; smaller positive values
/// land in the underflow (first) bucket.
const MIN_EXP: i32 = -128;
/// Highest binary exponent with its own bucket; larger values (including
/// +∞) land in the overflow (last) bucket.
const MAX_EXP: i32 = 127;
/// Bucket count: one per exponent in `MIN_EXP..=MAX_EXP`.
const BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// The lower-bound binary exponent of the bucket a positive finite
/// sample lands in, clamped into `MIN_EXP..=MAX_EXP`. Shared with
/// [`crate::exemplar::ExemplarHistogram`], whose per-bucket exemplars
/// must key on exactly the same bucketing as the counts.
pub(crate) fn bucket_exponent(v: f64) -> i16 {
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    exp.clamp(MIN_EXP, MAX_EXP) as i16
}

/// A log₂-bucketed histogram of positive samples.
///
/// Zero, negative, and NaN samples are counted in `nonfinite` rather than
/// silently dropped — a BER of exactly 0.0 or a negative "duration" is a
/// modeling bug worth surfacing, not averaging away.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// `buckets[i]` counts samples with `floor(log2(v)) == MIN_EXP + i`,
    /// clamped at both ends.
    buckets: Vec<u64>,
    /// Total positive finite (bucketed) samples.
    count: u64,
    /// Zero, negative, or NaN samples (not bucketed).
    nonfinite: u64,
    /// Smallest bucketed sample, if any.
    min: Option<f64>,
    /// Largest bucketed sample, if any.
    max: Option<f64>,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram. This is the only allocation the histogram ever
    /// performs; recording is allocation-free.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            nonfinite: 0,
            min: None,
            max: None,
        }
    }

    /// Bucket index of a positive finite sample, straight off the IEEE-754
    /// exponent field (subnormals read as exponent −1023 and clamp into
    /// the underflow bucket).
    fn bucket_index(v: f64) -> usize {
        (bucket_exponent(v) as i32 - MIN_EXP) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        if v > 0.0 && v.is_finite() {
            self.buckets[Self::bucket_index(v)] += 1;
            self.count += 1;
            self.min = Some(match self.min {
                Some(m) if m <= v => m,
                _ => v,
            });
            self.max = Some(match self.max {
                Some(m) if m >= v => m,
                _ => v,
            });
        } else {
            self.nonfinite += 1;
        }
    }

    /// Bucketed (positive finite) sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Zero/negative/NaN sample count.
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// Smallest bucketed sample.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest bucketed sample.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Folds another histogram into this one.
    ///
    /// Merging is exactly associative and commutative: integer bucket
    /// sums plus min/max joins, no float accumulation. Fleet roll-ups may
    /// therefore combine per-switch histograms in any order and obtain
    /// identical state.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.nonfinite += other.nonfinite;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// The value below which a fraction `q` (in `[0, 1]`) of bucketed
    /// samples fall, estimated at the geometric midpoint of the bucket
    /// containing the quantile (exact min/max are used for q at the
    /// extremes). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the target sample, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let exp = MIN_EXP + i as i32;
                // Geometric midpoint of [2^exp, 2^(exp+1)): 2^(exp+0.5),
                // clamped into the observed range so estimates never
                // leave [min, max].
                let mid = (exp as f64 + 0.5).exp2();
                let lo = self.min.expect("count > 0");
                let hi = self.max.expect("count > 0");
                return Some(mid.clamp(lo, hi));
            }
        }
        self.max
    }

    /// The lower-bound binary exponent of the bucket containing quantile
    /// `q` — the key an [`ExemplarHistogram`](crate::ExemplarHistogram)
    /// uses to look up that bucket's retained exemplars. `None` when
    /// empty.
    pub fn quantile_bucket(&self, q: f64) -> Option<i16> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min.map(bucket_exponent);
        }
        if q >= 1.0 {
            return self.max.map(bucket_exponent);
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(MIN_EXP as i16 + i as i16);
            }
        }
        self.max.map(bucket_exponent)
    }

    /// Geometric-midpoint estimate of the mean of bucketed samples.
    pub fn mean_estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut acc = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                let exp = MIN_EXP + i as i32;
                acc += c as f64 * (exp as f64 + 0.5).exp2();
            }
        }
        Some(acc / self.count as f64)
    }

    /// Sparse export snapshot: only non-empty buckets, keyed by the
    /// bucket's lower-bound binary exponent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            nonfinite: self.nonfinite,
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (MIN_EXP as i16 + i as i16, c))
                .collect(),
        }
    }
}

/// Sparse, serializable view of a [`LogHistogram`].
///
/// `buckets` holds `(exp, count)` pairs in ascending `exp` order: `count`
/// samples fell in `[2^exp, 2^(exp+1))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total bucketed samples.
    pub count: u64,
    /// Zero/negative/NaN samples.
    pub nonfinite: u64,
    /// Smallest bucketed sample.
    pub min: Option<f64>,
    /// Largest bucketed sample.
    pub max: Option<f64>,
    /// Non-empty buckets as `(lower-bound exponent, count)`.
    pub buckets: Vec<(i16, u64)>,
}

impl HistogramSnapshot {
    /// Rebuilds a dense histogram from the snapshot (for merge-after-load).
    pub fn restore(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for &(exp, c) in &self.buckets {
            let i = (exp as i32 - MIN_EXP) as usize;
            h.buckets[i] = c;
        }
        h.count = self.count;
        h.nonfinite = self.nonfinite;
        h.min = self.min;
        h.max = self.max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_by_binary_exponent() {
        let mut h = LogHistogram::new();
        for v in [1.0, 1.5, 1.99, 2.0, 3.9, 4.0] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(0, 3), (1, 2), (2, 1)]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
    }

    #[test]
    fn nonpositive_and_nan_are_counted_not_bucketed() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(1e-9);
        assert_eq!(h.nonfinite(), 3);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn extreme_values_clamp_into_edge_buckets() {
        let mut h = LogHistogram::new();
        h.record(f64::MIN_POSITIVE / 4.0); // subnormal → underflow bucket
        h.record(1e300);
        h.record(f64::INFINITY); // not finite → nonfinite
        let snap = h.snapshot();
        assert_eq!(snap.buckets.first().unwrap().0, MIN_EXP as i16);
        assert_eq!(snap.buckets.last().unwrap().0, MAX_EXP as i16);
        assert_eq!(h.nonfinite(), 1);
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for (i, v) in [0.003, 2.5e-4, 7.0, 1024.0, 0.11].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            whole.record(*v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab, whole, "merge must equal single-stream recording");
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u32 {
            h.record(i as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((256.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} ≥ p50 {p50}");
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
        // Factor-of-2 buckets: estimates are within 2× of truth.
        assert!((p50 / 500.0) < 2.0 && (500.0 / p50) < 2.0);
    }

    #[test]
    fn snapshot_roundtrips() {
        let mut h = LogHistogram::new();
        for v in [1e-6, 3e-6, 0.5, 0.0, 42.0] {
            h.record(v);
        }
        assert_eq!(h.snapshot().restore(), h);
    }

    #[test]
    fn mean_estimate_is_order_of_magnitude_right() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(8.0);
        }
        let m = h.mean_estimate().unwrap();
        assert!(
            (8.0..16.0).contains(&m),
            "mean estimate {m} in bucket [8,16)"
        );
    }
}
