//! The deterministic metrics registry.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism** (§6 of DESIGN.md): samples are stamped with
//!    simulation [`Nanos`] passed by the caller — there is no wall clock
//!    anywhere in this crate — and export iterates instruments in
//!    name-sorted order, so two runs with the same seed export
//!    byte-identical state.
//! 2. **A cheap hot path**: instruments are registered once (get-or-create
//!    by name + labels, which allocates) and then recorded through copy
//!    handles ([`CounterId`], [`GaugeId`], [`HistogramId`]) — a recording
//!    is an index into a `Vec` plus a few integer ops, O(ns) and
//!    allocation-free (benchmarked in `lightwave-bench`).

use crate::histogram::{HistogramSnapshot, LogHistogram};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fully-qualified metric identity: a name plus label pairs.
///
/// Labels are sorted by key at registration, so two call sites that list
/// the same labels in different orders resolve to the same instrument.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricKey {
    /// Metric name, `snake_case` with unit suffix by convention
    /// (e.g. `ocs_switch_duration_ms`).
    pub name: String,
    /// Sorted `(key, value)` label pairs (e.g. `[("switch", "3")]`).
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting labels by key name.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// One instrument's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Log-scale distribution.
    Histogram(LogHistogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Serializable sample of one instrument, as exported.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricSample {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

struct Metric {
    value: MetricValue,
    last_update: Nanos,
}

/// The fleet metrics registry.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
    index: BTreeMap<MetricKey, usize>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("instruments", &self.metrics.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    fn get_or_create(&mut self, key: MetricKey, make: fn() -> MetricValue) -> usize {
        if let Some(&i) = self.index.get(&key) {
            let existing = &self.metrics[i].value;
            let wanted = make();
            assert_eq!(
                existing.kind(),
                wanted.kind(),
                "metric `{key}` re-registered as a different kind"
            );
            return i;
        }
        let i = self.metrics.len();
        self.metrics.push(Metric {
            value: make(),
            last_update: Nanos(0),
        });
        self.index.insert(key, i);
        i
    }

    /// Registers (or finds) a counter.
    ///
    /// # Panics
    /// Panics if the same key is already registered as another kind.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        CounterId(self.get_or_create(MetricKey::new(name, labels), || MetricValue::Counter(0)))
    }

    /// Registers (or finds) a gauge.
    ///
    /// # Panics
    /// Panics if the same key is already registered as another kind.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        GaugeId(self.get_or_create(MetricKey::new(name, labels), || MetricValue::Gauge(0.0)))
    }

    /// Registers (or finds) a log-scale histogram.
    ///
    /// # Panics
    /// Panics if the same key is already registered as another kind.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> HistogramId {
        HistogramId(self.get_or_create(MetricKey::new(name, labels), || {
            MetricValue::Histogram(LogHistogram::new())
        }))
    }

    /// Adds `delta` to a counter at simulation time `at`. Allocation-free.
    #[inline]
    pub fn inc(&mut self, id: CounterId, at: Nanos, delta: u64) {
        let m = &mut self.metrics[id.0];
        match &mut m.value {
            MetricValue::Counter(c) => *c += delta,
            _ => unreachable!("CounterId always points at a counter"),
        }
        m.last_update = m.last_update.max(at);
    }

    /// Sets a gauge at simulation time `at`. Allocation-free.
    #[inline]
    pub fn set(&mut self, id: GaugeId, at: Nanos, value: f64) {
        let m = &mut self.metrics[id.0];
        match &mut m.value {
            MetricValue::Gauge(g) => *g = value,
            _ => unreachable!("GaugeId always points at a gauge"),
        }
        m.last_update = m.last_update.max(at);
    }

    /// Records a histogram sample at simulation time `at`. Allocation-free.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, at: Nanos, value: f64) {
        let m = &mut self.metrics[id.0];
        match &mut m.value {
            MetricValue::Histogram(h) => h.record(value),
            _ => unreachable!("HistogramId always points at a histogram"),
        }
        m.last_update = m.last_update.max(at);
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        match &self.metrics[id.0].value {
            MetricValue::Counter(c) => *c,
            _ => unreachable!("CounterId always points at a counter"),
        }
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        match &self.metrics[id.0].value {
            MetricValue::Gauge(g) => *g,
            _ => unreachable!("GaugeId always points at a gauge"),
        }
    }

    /// Read access to a histogram.
    pub fn histogram_value(&self, id: HistogramId) -> &LogHistogram {
        match &self.metrics[id.0].value {
            MetricValue::Histogram(h) => h,
            _ => unreachable!("HistogramId always points at a histogram"),
        }
    }

    /// Looks up an instrument by identity (for tests and exporters).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.index
            .get(&MetricKey::new(name, labels))
            .map(|&i| &self.metrics[i].value)
    }

    /// Iterates instruments in deterministic (name-sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue, Nanos)> {
        self.index.iter().map(|(key, &i)| {
            let m = &self.metrics[i];
            (key, &m.value, m.last_update)
        })
    }

    /// Registers a rate helper: a gauge named `rate_name` that tracks
    /// `counter`'s per-second rate over fixed windows of `window`.
    ///
    /// Call [`RateWindow::observe`] from any periodic path (a scrape, a
    /// health poll); when the window rolls over, the helper publishes
    /// `delta / elapsed_seconds` computed from the counter's exact
    /// integer delta — call sites stop hand-rolling per-window rate
    /// bookkeeping, and the published rate is a pure function of the
    /// counter history.
    ///
    /// # Panics
    /// Panics if `rate_name` is already registered as a non-gauge.
    pub fn rate_window(
        &mut self,
        counter: CounterId,
        rate_name: &str,
        labels: &[(&str, &str)],
        window: Nanos,
    ) -> RateWindow {
        RateWindow {
            counter,
            gauge: self.gauge(rate_name, labels),
            window,
            last_bucket: 0,
            last_count: 0,
        }
    }

    /// Serializable samples of every instrument, name-sorted.
    pub fn samples(&self) -> Vec<(MetricKey, MetricSample, Nanos)> {
        self.iter()
            .map(|(key, value, at)| {
                let sample = match value {
                    MetricValue::Counter(c) => MetricSample::Counter(*c),
                    MetricValue::Gauge(g) => MetricSample::Gauge(*g),
                    MetricValue::Histogram(h) => MetricSample::Histogram(h.snapshot()),
                };
                (key.clone(), sample, at)
            })
            .collect()
    }
}

/// Derives a per-second rate gauge from a counter over fixed sim-time
/// windows (see [`MetricsRegistry::rate_window`]).
///
/// State is two integers (last window index, last counter value), so the
/// helper is `Copy`-cheap and fully deterministic: the same counter
/// history and observe stamps publish the same rates, bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct RateWindow {
    counter: CounterId,
    gauge: GaugeId,
    window: Nanos,
    last_bucket: u64,
    last_count: u64,
}

impl RateWindow {
    /// Re-evaluates the rate at sim time `at`; publishes the companion
    /// gauge when (and only when) the window has rolled over.
    pub fn observe(&mut self, metrics: &mut MetricsRegistry, at: Nanos) {
        let window = self.window.0.max(1);
        let bucket = at.0 / window;
        if bucket == self.last_bucket {
            return;
        }
        let count = metrics.counter_value(self.counter);
        let delta = count - self.last_count;
        let elapsed_secs = ((bucket - self.last_bucket) * window) as f64 / 1e9;
        metrics.set(self.gauge, at, delta as f64 / elapsed_secs);
        self.last_bucket = bucket;
        self.last_count = count;
    }

    /// The companion gauge (for reads and tests).
    pub fn gauge(&self) -> GaugeId {
        self.gauge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_dedups_and_label_order_is_canonical() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("reconfigs", &[("switch", "0"), ("pod", "a")]);
        let b = reg.counter("reconfigs", &[("pod", "a"), ("switch", "0")]);
        assert_eq!(a, b, "label order must not mint a new instrument");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn record_and_read_back() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("commits", &[]);
        let g = reg.gauge("utilization", &[]);
        let h = reg.histogram("settle_ms", &[]);
        reg.inc(c, Nanos(10), 2);
        reg.inc(c, Nanos(5), 1); // out-of-order stamps keep the max
        reg.set(g, Nanos(20), 0.984);
        reg.observe(h, Nanos(30), 25.0);
        assert_eq!(reg.counter_value(c), 3);
        assert_eq!(reg.gauge_value(g), 0.984);
        assert_eq!(reg.histogram_value(h).count(), 1);
        let stamps: Vec<Nanos> = reg.iter().map(|(_, _, at)| at).collect();
        assert!(stamps.contains(&Nanos(10)));
    }

    #[test]
    fn iteration_is_name_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter("zeta", &[]);
        reg.counter("alpha", &[]);
        reg.counter("mid", &[("a", "1")]);
        let names: Vec<&str> = reg.iter().map(|(k, _, _)| k.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn rate_window_publishes_exact_per_window_rates() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("ocs_relocks_total", &[("switch", "3")]);
        let mut rate = reg.rate_window(
            c,
            "ocs_relock_rate_per_sec",
            &[("switch", "3")],
            Nanos::from_secs_f64(1.0),
        );
        // 4 relocks in window 0; observed after the roll to window 1.
        reg.inc(c, Nanos::from_millis(100), 4);
        rate.observe(&mut reg, Nanos::from_millis(500)); // same window: no-op
        assert_eq!(reg.gauge_value(rate.gauge()), 0.0);
        rate.observe(&mut reg, Nanos::from_millis(1200));
        assert_eq!(reg.gauge_value(rate.gauge()), 4.0);
        // Quiet for 2 windows, then 6 more: 6 events / 2 s = 3/s.
        reg.inc(c, Nanos::from_millis(2500), 6);
        rate.observe(&mut reg, Nanos::from_millis(3100));
        assert_eq!(reg.gauge_value(rate.gauge()), 3.0);
        // Determinism: an identical replay publishes identical rates.
        let replay = |stamps: &[(u64, u64, u64)]| {
            let mut reg = MetricsRegistry::new();
            let c = reg.counter("x", &[]);
            let mut r = reg.rate_window(c, "x_rate", &[], Nanos::from_secs_f64(1.0));
            for &(inc_at, n, obs_at) in stamps {
                reg.inc(c, Nanos::from_millis(inc_at), n);
                r.observe(&mut reg, Nanos::from_millis(obs_at));
            }
            reg.gauge_value(r.gauge()).to_bits()
        };
        let script = [(100u64, 4u64, 1200u64), (2500, 6, 3100), (3300, 1, 4400)];
        assert_eq!(replay(&script), replay(&script));
    }

    #[test]
    fn display_renders_prometheus_style() {
        let key = MetricKey::new("ber", &[("port", "7"), ("lane", "2")]);
        assert_eq!(key.to_string(), "ber{lane=2,port=7}");
        assert_eq!(MetricKey::new("ber", &[]).to_string(), "ber");
    }
}
