//! Fleet health analytics: detector banks, a health scorer, and the
//! preemptive-maintenance advisor.
//!
//! The paper's availability story (§3.2.2, §4.3) rests on continuous
//! per-port monitoring: the 850 nm monitor path watches insertion loss,
//! link telemetry watches relock behaviour, and slow optical degradation
//! is repaired *before* circuits fail. [`FleetHealth`] is that layer for
//! the simulated fleet:
//!
//! - every drift/relock observation lands in a bounded
//!   [`crate::timeseries::SeriesStore`] (history for dashboards,
//!   Perfetto counter tracks, and flight-recorder postmortems);
//! - per-port [`Cusum`] + [`EwmaDrift`] banks and per-switch
//!   [`RateSpike`] detectors run on ingest in O(1) per sample;
//! - a detector trip raises a `Warning` [`AlarmCause::TrendAnomaly`]
//!   through the ordinary alarm path (debounce, paging, events);
//! - [`HealthScorer`] rolls detector state into a
//!   [`FleetHealthReport`] whose [`MaintenanceAction`]s propose
//!   drain-and-repair to the scheduler before hard failure.
//!
//! Everything is integer-state and sim-time-stamped, so the report, the
//! dashboard, and the JSONL export are byte-identical per seed at any
//! `LIGHTWAVE_THREADS` (pinned by `tests/fleet_health.rs`).

use crate::alarms::{AlarmCause, AlarmRecord, TrendSignal};
use crate::detect::{Cusum, CusumConfig, EwmaConfig, EwmaDrift, RateSpike, RateSpikeConfig};
use crate::fleet::FleetTelemetry;
use crate::severity::Severity;
use crate::timeseries::{dequantize, quantize, CounterTrack, SeriesConfig, SeriesId, SeriesStore};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Policy for the whole analytics layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// CUSUM change-point policy (per-port drift).
    pub cusum: CusumConfig,
    /// EWMA drift policy (per-port drift).
    pub ewma: EwmaConfig,
    /// Rate-spike policy (per-switch relocks).
    pub rate: RateSpikeConfig,
    /// Retention shape for every health series.
    pub series: SeriesConfig,
    /// Drift (micro-dB) treated as the repair budget: at or above half
    /// of this a port is *watched* even without a detector trip.
    pub repair_budget_micros: i64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            cusum: CusumConfig::default(),
            ewma: EwmaConfig::default(),
            rate: RateSpikeConfig::default(),
            series: SeriesConfig::default(),
            repair_budget_micros: 250_000, // 0.25 dB of creep headroom
        }
    }
}

/// One detector trip, recorded in ingest order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrendTrip {
    /// Simulation time of the trip.
    pub at: Nanos,
    /// Switch the trend is on.
    pub switch: u32,
    /// Which signal tripped.
    pub signal: TrendSignal,
    /// Port attributed (0 for switch-wide relock trends).
    pub port: u16,
    /// Which detector fired (`cusum`, `ewma`, `rate`).
    pub detector: String,
    /// The sample value (micro-units) that tripped it.
    pub value_micros: i64,
}

#[derive(Debug, Clone)]
struct PortState {
    cusum: Cusum,
    ewma: EwmaDrift,
    series: SeriesId,
    last_micros: i64,
}

#[derive(Debug, Clone)]
struct SwitchRelock {
    spike: RateSpike,
    series: SeriesId,
    total: u64,
}

/// The fleet health analytics layer. See the module docs.
#[derive(Debug)]
pub struct FleetHealth {
    cfg: HealthConfig,
    store: SeriesStore,
    ports: BTreeMap<(u32, bool, u16), PortState>,
    relocks: BTreeMap<u32, SwitchRelock>,
    trips: Vec<TrendTrip>,
}

impl Default for FleetHealth {
    fn default() -> FleetHealth {
        FleetHealth::new(HealthConfig::default())
    }
}

impl FleetHealth {
    /// A fresh analytics layer with the given policy.
    pub fn new(cfg: HealthConfig) -> FleetHealth {
        FleetHealth {
            cfg,
            store: SeriesStore::new(cfg.series),
            ports: BTreeMap::new(),
            relocks: BTreeMap::new(),
            trips: Vec::new(),
        }
    }

    /// The active policy.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Ingests one per-port drift observation (dB above as-built).
    ///
    /// Retains the sample, runs the port's CUSUM + EWMA detectors, and
    /// on a trip raises a `Warning` [`AlarmCause::TrendAnomaly`] into
    /// `sink` — the detector bank is sticky, so one creeping port pages
    /// its trend once, not once per sample.
    pub fn ingest_drift(
        &mut self,
        sink: &mut FleetTelemetry,
        at: Nanos,
        switch: u32,
        north: bool,
        port: u16,
        drift_db: f64,
    ) {
        let q = quantize(drift_db);
        let key = (switch, north, port);
        if !self.ports.contains_key(&key) {
            let series = self.store.series(
                "health_port_drift_db",
                &[
                    ("switch", &switch.to_string()),
                    ("die", if north { "north" } else { "south" }),
                    ("port", &port.to_string()),
                ],
            );
            self.ports.insert(
                key,
                PortState {
                    cusum: Cusum::new(self.cfg.cusum),
                    ewma: EwmaDrift::new(self.cfg.ewma),
                    series,
                    last_micros: 0,
                },
            );
        }
        let state = self.ports.get_mut(&key).expect("just inserted");
        state.last_micros = q;
        self.store.push_micros(state.series, at, q);
        let mut fired = Vec::new();
        if state.cusum.ingest(q) {
            fired.push("cusum");
        }
        if state.ewma.ingest(q) {
            fired.push("ewma");
        }
        for detector in fired {
            self.trip(
                sink,
                TrendTrip {
                    at,
                    switch,
                    signal: TrendSignal::LossDrift,
                    port,
                    detector: detector.to_string(),
                    value_micros: q,
                },
            );
        }
    }

    /// Ingests one relock/fallback event on `switch`.
    ///
    /// Retains the cumulative count as a series and runs the switch's
    /// windowed rate-spike detector; a trip raises a `Warning`
    /// [`AlarmCause::TrendAnomaly`] into `sink`.
    pub fn ingest_relock(&mut self, sink: &mut FleetTelemetry, at: Nanos, switch: u32, port: u16) {
        if !self.relocks.contains_key(&switch) {
            let series = self
                .store
                .series("health_relocks_total", &[("switch", &switch.to_string())]);
            self.relocks.insert(
                switch,
                SwitchRelock {
                    spike: RateSpike::new(self.cfg.rate),
                    series,
                    total: 0,
                },
            );
        }
        let state = self.relocks.get_mut(&switch).expect("just inserted");
        state.total += 1;
        let total = state.total as i64 * 1_000_000;
        self.store.push_micros(state.series, at, total);
        if state.spike.ingest(at) {
            self.trip(
                sink,
                TrendTrip {
                    at,
                    switch,
                    signal: TrendSignal::RelockRate,
                    port,
                    detector: "rate".to_string(),
                    value_micros: total,
                },
            );
        }
    }

    fn trip(&mut self, sink: &mut FleetTelemetry, trip: TrendTrip) {
        sink.ingest_alarm(AlarmRecord {
            at: trip.at,
            severity: Severity::Warning,
            switch: trip.switch,
            cause: AlarmCause::TrendAnomaly {
                signal: trip.signal,
                port: trip.port,
            },
        });
        self.trips.push(trip);
    }

    /// Every detector trip so far, in ingest order.
    pub fn trips(&self) -> &[TrendTrip] {
        &self.trips
    }

    /// Sim time of the first trip, if any — the preemptive-detection
    /// instant the oracle tests compare against the hard failure.
    pub fn first_trip_at(&self) -> Option<Nanos> {
        self.trips.first().map(|t| t.at)
    }

    /// The retained series (for exports and flight-recorder embedding).
    pub fn store(&self) -> &SeriesStore {
        &self.store
    }

    /// Every health series as a Perfetto counter track.
    pub fn counter_tracks(&self) -> Vec<CounterTrack> {
        self.store.tracks()
    }

    /// Rolls detector state into a report with the default scorer.
    pub fn report(&self, now: Nanos) -> FleetHealthReport {
        HealthScorer::default().score(self, now)
    }

    /// Renders the text dashboard as of `now`.
    pub fn dashboard(&self, now: Nanos) -> String {
        let r = self.report(now);
        let mut out = String::new();
        out.push_str(&format!("── fleet health @ {} ──\n", now.0));
        out.push_str(&format!(
            "FLEET SCORE {}  (switches {}, actions {}, trips {})\n",
            r.fleet_score,
            r.switches.len(),
            r.actions.len(),
            self.trips.len()
        ));
        out.push_str(&format!("SWITCHES ({})\n", r.switches.len()));
        for s in &r.switches {
            out.push_str(&format!(
                "  ocs-{:02}  score {:3}  drift-trips {}  relock-trip {}  worst-drift {:.3} dB  watched {}\n",
                s.switch,
                s.score,
                s.drift_tripped_ports,
                if s.relock_tripped { "y" } else { "n" },
                dequantize(s.worst_drift_micros),
                s.watched_ports,
            ));
        }
        out.push_str(&format!("ACTIONS ({})\n", r.actions.len()));
        for a in &r.actions {
            out.push_str(&format!(
                "  {} ocs-{:02}: {}\n",
                match a.action {
                    MaintenanceKind::DrainAndRepair => "drain-and-repair",
                    MaintenanceKind::Watch => "watch           ",
                },
                a.switch,
                a.reason
            ));
        }
        out.push_str(&format!("TRIPS ({})\n", self.trips.len()));
        for t in &self.trips {
            out.push_str(&format!(
                "  [{:>12}] ocs-{:02} {:?} port {} via {} at {:.3}\n",
                t.at.0,
                t.switch,
                t.signal,
                t.port,
                t.detector,
                dequantize(t.value_micros)
            ));
        }
        out
    }

    /// Serializes the report, actions, and trips as JSON lines.
    pub fn to_jsonl(&self, now: Nanos) -> String {
        let r = self.report(now);
        let mut out = String::new();
        let mut push = |rec: &HealthJsonl| {
            out.push_str(&serde_json::to_string(rec).expect("health records serialize"));
            out.push('\n');
        };
        push(&HealthJsonl::Meta {
            format: HEALTH_FORMAT.to_string(),
            generated_at: now,
            fleet_score: r.fleet_score,
            switches: r.switches.len() as u64,
            actions: r.actions.len() as u64,
            trips: self.trips.len() as u64,
        });
        for s in &r.switches {
            push(&HealthJsonl::Switch(s.clone()));
        }
        for a in &r.actions {
            push(&HealthJsonl::Action(a.clone()));
        }
        for t in &self.trips {
            push(&HealthJsonl::Trip(t.clone()));
        }
        out
    }
}

/// Format tag of the health JSONL export.
pub const HEALTH_FORMAT: &str = "lightwave/fleet-health/v1";

/// One line of the health JSONL export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthJsonl {
    /// Header line.
    Meta {
        /// Format tag ([`HEALTH_FORMAT`]).
        format: String,
        /// Export time.
        generated_at: Nanos,
        /// Fleet-wide score.
        fleet_score: u32,
        /// Switch-line count.
        switches: u64,
        /// Action-line count.
        actions: u64,
        /// Trip-line count.
        trips: u64,
    },
    /// Per-switch health.
    Switch(SwitchHealth),
    /// Advisor proposal.
    Action(MaintenanceAction),
    /// Detector trip.
    Trip(TrendTrip),
}

/// Health rollup for one switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchHealth {
    /// Switch id.
    pub switch: u32,
    /// 0–100 health score (100 = no detector concern).
    pub score: u32,
    /// Ports with a tripped drift detector (CUSUM or EWMA).
    pub drift_tripped_ports: u32,
    /// Whether the relock rate-spike detector tripped.
    pub relock_tripped: bool,
    /// Worst current drift across watched ports, micro-dB.
    pub worst_drift_micros: i64,
    /// Ports with any drift history.
    pub watched_ports: u32,
    /// Relock events observed.
    pub relocks: u64,
}

/// What the advisor proposes for a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaintenanceKind {
    /// Drain traffic off the switch and repair now, before hard failure.
    DrainAndRepair,
    /// No action yet; re-inspect on the next report.
    Watch,
}

/// One preemptive-maintenance proposal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceAction {
    /// Switch to act on.
    pub switch: u32,
    /// Proposed action.
    pub action: MaintenanceKind,
    /// Deterministic human-readable justification.
    pub reason: String,
    /// When the report proposing it was generated.
    pub proposed_at: Nanos,
}

/// The fleet health report: per-switch rollups plus advisor actions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetHealthReport {
    /// When the report was generated (sim time).
    pub generated_at: Nanos,
    /// Worst switch score (100 when no switch is watched).
    pub fleet_score: u32,
    /// Per-switch rollups, switch-id order.
    pub switches: Vec<SwitchHealth>,
    /// Advisor proposals, switch-id order.
    pub actions: Vec<MaintenanceAction>,
}

/// Rolls detector state into scores and maintenance proposals.
///
/// All weights are integers; the score of a switch is a pure function of
/// its detector bank, so reports are exactly reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthScorer {
    /// Penalty per port with a tripped drift detector (capped at 2×).
    pub drift_trip_penalty: u32,
    /// Penalty when the relock rate detector tripped.
    pub relock_trip_penalty: u32,
    /// Penalty when drift is past half the repair budget with no trip.
    pub watch_penalty: u32,
}

impl Default for HealthScorer {
    fn default() -> HealthScorer {
        HealthScorer {
            drift_trip_penalty: 30,
            relock_trip_penalty: 25,
            watch_penalty: 10,
        }
    }
}

impl HealthScorer {
    /// Builds the report for the current detector state.
    pub fn score(&self, health: &FleetHealth, now: Nanos) -> FleetHealthReport {
        #[derive(Default)]
        struct Acc {
            drift_tripped: u32,
            tripped_ports: Vec<u16>,
            worst_micros: i64,
            watched: u32,
        }
        let mut acc: BTreeMap<u32, Acc> = BTreeMap::new();
        for (&(switch, _north, port), state) in &health.ports {
            let a = acc.entry(switch).or_default();
            a.watched += 1;
            a.worst_micros = a.worst_micros.max(state.last_micros);
            if state.cusum.tripped() || state.ewma.tripped() {
                a.drift_tripped += 1;
                a.tripped_ports.push(port);
            }
        }
        let watch_floor = health.cfg.repair_budget_micros / 2;
        let mut switches = Vec::new();
        let mut actions = Vec::new();
        let all: std::collections::BTreeSet<u32> = acc
            .keys()
            .copied()
            .chain(health.relocks.keys().copied())
            .collect();
        for switch in all {
            let a = acc.remove(&switch).unwrap_or_default();
            let relock = health.relocks.get(&switch);
            let relock_tripped = relock.is_some_and(|r| r.spike.tripped());
            let relocks = relock.map_or(0, |r| r.total);
            let mut penalty = self.drift_trip_penalty * a.drift_tripped.min(2);
            if relock_tripped {
                penalty += self.relock_trip_penalty;
            }
            let watching = a.drift_tripped == 0 && a.worst_micros >= watch_floor;
            if watching {
                penalty += self.watch_penalty;
            }
            let score = 100u32.saturating_sub(penalty);
            if a.drift_tripped > 0 {
                actions.push(MaintenanceAction {
                    switch,
                    action: MaintenanceKind::DrainAndRepair,
                    reason: format!(
                        "loss drift tripped on port(s) {:?}, worst {:.3} dB — replace optics before the link budget is gone",
                        a.tripped_ports,
                        dequantize(a.worst_micros)
                    ),
                    proposed_at: now,
                });
            } else if relock_tripped {
                actions.push(MaintenanceAction {
                    switch,
                    action: MaintenanceKind::DrainAndRepair,
                    reason: format!(
                        "sustained relock spike ({relocks} relocks) — drain and inspect transceivers"
                    ),
                    proposed_at: now,
                });
            } else if watching {
                actions.push(MaintenanceAction {
                    switch,
                    action: MaintenanceKind::Watch,
                    reason: format!(
                        "worst drift {:.3} dB past half the repair budget",
                        dequantize(a.worst_micros)
                    ),
                    proposed_at: now,
                });
            }
            switches.push(SwitchHealth {
                switch,
                score,
                drift_tripped_ports: a.drift_tripped,
                relock_tripped,
                worst_drift_micros: a.worst_micros,
                watched_ports: a.watched,
                relocks,
            });
        }
        let fleet_score = switches.iter().map(|s| s.score).min().unwrap_or(100);
        FleetHealthReport {
            generated_at: now,
            fleet_score,
            switches,
            actions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn creep(h: &mut FleetHealth, sink: &mut FleetTelemetry, switch: u32, port: u16, steps: i64) {
        for i in 1..=steps {
            h.ingest_drift(
                sink,
                Nanos::from_millis(i as u64 * 100),
                switch,
                true,
                port,
                i as f64 * 0.030,
            );
        }
    }

    #[test]
    fn creep_trips_pages_once_and_proposes_drain() {
        let mut h = FleetHealth::default();
        let mut sink = FleetTelemetry::new();
        creep(&mut h, &mut sink, 3, 17, 10);
        assert!(!h.trips.is_empty(), "creep must trip a drift detector");
        assert!(h.first_trip_at().is_some());
        // Both cusum and ewma may fire, but they coalesce into one
        // (switch, Trend) incident: exactly one page.
        assert_eq!(sink.alarms.pages(), 1);
        let r = h.report(Nanos::from_secs_f64(2.0));
        assert_eq!(r.switches.len(), 1);
        assert!(r.switches[0].score < 100);
        assert!(matches!(
            r.actions[0].action,
            MaintenanceKind::DrainAndRepair
        ));
        assert!(r.fleet_score < 100);
    }

    #[test]
    fn single_spare_swap_step_is_clean() {
        let mut h = FleetHealth::default();
        let mut sink = FleetTelemetry::new();
        // One 300 mdb jump — a legitimate spare-mirror swap.
        h.ingest_drift(&mut sink, Nanos::from_millis(5), 9, true, 40, 0.300);
        assert!(h.trips.is_empty());
        assert_eq!(sink.alarms.pages(), 0);
        let r = h.report(Nanos::from_millis(10));
        // Past half the budget: watched, not drained.
        assert_eq!(r.switches[0].drift_tripped_ports, 0);
        assert!(matches!(r.actions[0].action, MaintenanceKind::Watch));
    }

    #[test]
    fn relock_spike_trips_and_single_storm_does_not() {
        let w = Nanos::from_millis(250).0;
        let mut h = FleetHealth::default();
        let mut sink = FleetTelemetry::new();
        for round in 0..3u64 {
            for p in 0..3u16 {
                h.ingest_relock(&mut sink, Nanos(round * w), 5, p);
            }
        }
        assert_eq!(h.trips.len(), 1);
        assert_eq!(h.trips[0].signal, TrendSignal::RelockRate);
        let r = h.report(Nanos(3 * w));
        assert!(r.switches[0].relock_tripped);
        assert_eq!(r.switches[0].relocks, 9);
        // A 16-port single-instant storm on another switch: no trip.
        let mut h2 = FleetHealth::default();
        for p in 0..16u16 {
            h2.ingest_relock(&mut sink, Nanos(1000), 6, p);
        }
        assert!(h2.trips.is_empty());
    }

    #[test]
    fn exports_are_deterministic_and_jsonl_parses() {
        let build = || {
            let mut h = FleetHealth::default();
            let mut sink = FleetTelemetry::new();
            creep(&mut h, &mut sink, 3, 17, 10);
            h.ingest_relock(&mut sink, Nanos(7), 3, 2);
            h
        };
        let now = Nanos::from_secs_f64(3.0);
        let a = build();
        let b = build();
        assert_eq!(a.report(now), b.report(now));
        assert_eq!(a.dashboard(now), b.dashboard(now));
        assert_eq!(a.to_jsonl(now), b.to_jsonl(now));
        let jsonl = a.to_jsonl(now);
        let mut metas = 0;
        for line in jsonl.lines() {
            let rec: HealthJsonl = serde_json::from_str(line).expect("every line parses");
            if matches!(rec, HealthJsonl::Meta { .. }) {
                metas += 1;
            }
        }
        assert_eq!(metas, 1);
        assert!(!a.counter_tracks().is_empty());
        assert!(!a.store().recent_for_switch(3, 4).is_empty());
    }
}
