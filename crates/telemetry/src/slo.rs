//! Availability SLO tracking with error budgets.
//!
//! §4.1.1 reports the Palomar OCS fleet at ≥ 99.98% availability; Fig. 15
//! builds the fabric-availability story on per-OCS availability. The
//! tracker consumes up/down state transitions (in simulation time) per
//! tracked object and reports, per object and fleet-wide: achieved
//! availability, accumulated downtime, and the remaining error budget
//! against the target — the quantity an operator actually plans
//! maintenance around.

use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The paper's OCS availability target (§4.1.1).
pub const OCS_AVAILABILITY_TARGET: f64 = 0.9998;

#[derive(Debug, Clone)]
struct ObjectState {
    first_seen: Nanos,
    up: bool,
    since: Nanos,
    downtime: Nanos,
    transitions: u64,
}

/// Per-object SLO assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSlo {
    /// The tracked object (e.g. `ocs-3`).
    pub object: String,
    /// Achieved availability over the observed window, in `[0, 1]`.
    pub availability: f64,
    /// Accumulated downtime.
    pub downtime: Nanos,
    /// Downtime the target allows over the observed window.
    pub error_budget: Nanos,
    /// Fraction of the error budget still unspent, in `[0, 1]`.
    pub budget_remaining: f64,
    /// True when achieved availability is below target.
    pub in_violation: bool,
    /// Up/down state transitions observed.
    pub transitions: u64,
}

/// Fleet SLO assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// The availability target, e.g. `0.9998`.
    pub target: f64,
    /// Per-object assessments, object-name-sorted.
    pub objects: Vec<ObjectSlo>,
    /// Observation-time-weighted fleet availability.
    pub fleet_availability: f64,
    /// Objects currently in violation.
    pub violating: usize,
}

/// Tracks availability against a target for a set of named objects.
#[derive(Debug, Clone)]
pub struct SloTracker {
    target: f64,
    objects: BTreeMap<String, ObjectState>,
}

impl Default for SloTracker {
    fn default() -> SloTracker {
        SloTracker::ocs_target()
    }
}

impl SloTracker {
    /// A tracker with an explicit availability target in `(0, 1)`.
    pub fn new(target: f64) -> SloTracker {
        assert!(
            target > 0.0 && target < 1.0,
            "availability target must be in (0, 1), got {target}"
        );
        SloTracker {
            target,
            objects: BTreeMap::new(),
        }
    }

    /// A tracker against the paper's 99.98% OCS target (§4.1.1).
    pub fn ocs_target() -> SloTracker {
        SloTracker::new(OCS_AVAILABILITY_TARGET)
    }

    /// The availability target.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Records that `object` is `up`/down as of simulation time `at`.
    ///
    /// The first observation of an object starts its observation window
    /// (it is not assumed to have existed since t=0). Repeated
    /// observations of the same state are idempotent.
    pub fn observe(&mut self, at: Nanos, object: &str, up: bool) {
        match self.objects.get_mut(object) {
            None => {
                self.objects.insert(
                    object.to_string(),
                    ObjectState {
                        first_seen: at,
                        up,
                        since: at,
                        downtime: Nanos(0),
                        transitions: 0,
                    },
                );
            }
            Some(state) => {
                if state.up == up {
                    return;
                }
                if !state.up {
                    state.downtime += at.saturating_sub(state.since);
                }
                state.up = up;
                state.since = at;
                state.transitions += 1;
            }
        }
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when nothing is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Assesses every object as of simulation time `now`.
    pub fn report(&self, now: Nanos) -> SloReport {
        let mut objects = Vec::with_capacity(self.objects.len());
        let mut observed_total = 0u128;
        let mut up_total = 0u128;
        for (name, state) in &self.objects {
            let observed = now.saturating_sub(state.first_seen);
            let mut downtime = state.downtime;
            if !state.up {
                downtime += now.saturating_sub(state.since);
            }
            let availability = if observed.0 == 0 {
                1.0
            } else {
                1.0 - downtime.0 as f64 / observed.0 as f64
            };
            let error_budget = Nanos((observed.0 as f64 * (1.0 - self.target)) as u64);
            let budget_remaining = if error_budget.0 == 0 {
                if downtime.0 == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                ((error_budget.0 as f64 - downtime.0 as f64) / error_budget.0 as f64)
                    .clamp(0.0, 1.0)
            };
            observed_total += observed.0 as u128;
            up_total += (observed.0 - downtime.0.min(observed.0)) as u128;
            objects.push(ObjectSlo {
                object: name.clone(),
                availability,
                downtime,
                error_budget,
                budget_remaining,
                in_violation: availability < self.target,
                transitions: state.transitions,
            });
        }
        let fleet_availability = if observed_total == 0 {
            1.0
        } else {
            up_total as f64 / observed_total as f64
        };
        SloReport {
            target: self.target,
            violating: objects.iter().filter(|o| o.in_violation).count(),
            objects,
            fleet_availability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: f64) -> Nanos {
        Nanos::from_secs_f64(secs)
    }

    #[test]
    fn downtime_accrues_only_while_down() {
        let mut t = SloTracker::new(0.99);
        t.observe(s(0.0), "ocs-0", true);
        t.observe(s(100.0), "ocs-0", false);
        t.observe(s(101.0), "ocs-0", true);
        let r = t.report(s(200.0));
        let o = &r.objects[0];
        assert_eq!(o.downtime, s(1.0));
        assert!((o.availability - 0.995).abs() < 1e-9);
        assert!(!o.in_violation);
        assert_eq!(o.transitions, 2);
    }

    #[test]
    fn ongoing_outage_counts_up_to_now() {
        let mut t = SloTracker::ocs_target();
        t.observe(s(0.0), "ocs-1", true);
        t.observe(s(10.0), "ocs-1", false);
        let r = t.report(s(20.0));
        assert_eq!(r.objects[0].downtime, s(10.0));
        assert!(r.objects[0].in_violation, "50% uptime misses 99.98%");
        assert_eq!(r.violating, 1);
        assert_eq!(r.objects[0].budget_remaining, 0.0);
    }

    #[test]
    fn error_budget_against_paper_target() {
        // 99.98% over a simulated day allows 0.0002 × 86400 s ≈ 17.3 s.
        let mut t = SloTracker::ocs_target();
        t.observe(s(0.0), "ocs-2", true);
        t.observe(s(1000.0), "ocs-2", false);
        t.observe(s(1008.0), "ocs-2", true); // 8 s outage
        let r = t.report(s(86_400.0));
        let o = &r.objects[0];
        assert!(!o.in_violation, "8 s of downtime fits the daily budget");
        let budget_s = o.error_budget.as_secs_f64();
        assert!((budget_s - 17.28).abs() < 0.01, "budget {budget_s} s");
        assert!(o.budget_remaining > 0.5 && o.budget_remaining < 0.6);
    }

    #[test]
    fn late_joining_objects_observe_from_first_seen() {
        let mut t = SloTracker::new(0.999);
        t.observe(s(0.0), "a", true);
        t.observe(s(500.0), "b", true); // turned up mid-simulation
        let r = t.report(s(1000.0));
        assert_eq!(r.objects.len(), 2);
        assert!((r.fleet_availability - 1.0).abs() < 1e-12);
        let b = r.objects.iter().find(|o| o.object == "b").unwrap();
        assert_eq!(b.error_budget, Nanos((500e9 * 0.001) as u64));
    }

    #[test]
    fn idempotent_same_state_observations() {
        let mut t = SloTracker::new(0.99);
        t.observe(s(0.0), "a", false);
        t.observe(s(5.0), "a", false);
        t.observe(s(10.0), "a", true);
        let r = t.report(s(20.0));
        assert_eq!(r.objects[0].downtime, s(10.0));
        assert_eq!(r.objects[0].transitions, 1);
    }
}
