//! Availability SLO tracking with error budgets.
//!
//! §4.1.1 reports the Palomar OCS fleet at ≥ 99.98% availability; Fig. 15
//! builds the fabric-availability story on per-OCS availability. The
//! tracker consumes up/down state transitions (in simulation time) per
//! tracked object and reports, per object and fleet-wide: achieved
//! availability, accumulated downtime, and the remaining error budget
//! against the target — the quantity an operator actually plans
//! maintenance around.

use crate::alarms::{AlarmCause, AlarmRecord, TrendSignal};
use crate::fleet::FleetTelemetry;
use crate::severity::Severity;
use crate::timeseries::SeriesStore;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// The paper's OCS availability target (§4.1.1).
pub const OCS_AVAILABILITY_TARGET: f64 = 0.9998;

/// The 99.98% target as an error budget in parts-per-million of time —
/// the integer form every burn-rate quantity is derived from.
pub const OCS_ERROR_BUDGET_PPM: u64 = 200;

/// Pseudo-switch id burn-rate alarms use for the campus-wide object
/// (per-pod alarms use the pod id).
pub const CAMPUS_ALARM_SWITCH: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct ObjectState {
    first_seen: Nanos,
    up: bool,
    since: Nanos,
    downtime: Nanos,
    transitions: u64,
}

/// Per-object SLO assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSlo {
    /// The tracked object (e.g. `ocs-3`).
    pub object: String,
    /// Achieved availability over the observed window, in `[0, 1]`.
    pub availability: f64,
    /// Accumulated downtime.
    pub downtime: Nanos,
    /// Downtime the target allows over the observed window.
    pub error_budget: Nanos,
    /// Fraction of the error budget still unspent, in `[0, 1]`.
    pub budget_remaining: f64,
    /// True when achieved availability is below target.
    pub in_violation: bool,
    /// Up/down state transitions observed.
    pub transitions: u64,
}

/// Fleet SLO assessment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// The availability target, e.g. `0.9998`.
    pub target: f64,
    /// Per-object assessments, object-name-sorted.
    pub objects: Vec<ObjectSlo>,
    /// Observation-time-weighted fleet availability.
    pub fleet_availability: f64,
    /// Objects currently in violation.
    pub violating: usize,
}

/// Tracks availability against a target for a set of named objects.
#[derive(Debug, Clone)]
pub struct SloTracker {
    target: f64,
    objects: BTreeMap<String, ObjectState>,
}

impl Default for SloTracker {
    fn default() -> SloTracker {
        SloTracker::ocs_target()
    }
}

impl SloTracker {
    /// A tracker with an explicit availability target in `(0, 1)`.
    pub fn new(target: f64) -> SloTracker {
        assert!(
            target > 0.0 && target < 1.0,
            "availability target must be in (0, 1), got {target}"
        );
        SloTracker {
            target,
            objects: BTreeMap::new(),
        }
    }

    /// A tracker against the paper's 99.98% OCS target (§4.1.1).
    pub fn ocs_target() -> SloTracker {
        SloTracker::new(OCS_AVAILABILITY_TARGET)
    }

    /// The availability target.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Records that `object` is `up`/down as of simulation time `at`.
    ///
    /// The first observation of an object starts its observation window
    /// (it is not assumed to have existed since t=0). Repeated
    /// observations of the same state are idempotent.
    pub fn observe(&mut self, at: Nanos, object: &str, up: bool) {
        match self.objects.get_mut(object) {
            None => {
                self.objects.insert(
                    object.to_string(),
                    ObjectState {
                        first_seen: at,
                        up,
                        since: at,
                        downtime: Nanos(0),
                        transitions: 0,
                    },
                );
            }
            Some(state) => {
                if state.up == up {
                    return;
                }
                if !state.up {
                    state.downtime += at.saturating_sub(state.since);
                }
                state.up = up;
                state.since = at;
                state.transitions += 1;
            }
        }
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when nothing is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Assesses every object as of simulation time `now`.
    pub fn report(&self, now: Nanos) -> SloReport {
        let mut objects = Vec::with_capacity(self.objects.len());
        let mut observed_total = 0u128;
        let mut up_total = 0u128;
        for (name, state) in &self.objects {
            let observed = now.saturating_sub(state.first_seen);
            let mut downtime = state.downtime;
            if !state.up {
                downtime += now.saturating_sub(state.since);
            }
            let availability = if observed.0 == 0 {
                1.0
            } else {
                1.0 - downtime.0 as f64 / observed.0 as f64
            };
            let error_budget = Nanos((observed.0 as f64 * (1.0 - self.target)) as u64);
            let budget_remaining = if error_budget.0 == 0 {
                if downtime.0 == 0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                ((error_budget.0 as f64 - downtime.0 as f64) / error_budget.0 as f64)
                    .clamp(0.0, 1.0)
            };
            observed_total += observed.0 as u128;
            up_total += (observed.0 - downtime.0.min(observed.0)) as u128;
            objects.push(ObjectSlo {
                object: name.clone(),
                availability,
                downtime,
                error_budget,
                budget_remaining,
                in_violation: availability < self.target,
                transitions: state.transitions,
            });
        }
        let fleet_availability = if observed_total == 0 {
            1.0
        } else {
            up_total as f64 / observed_total as f64
        };
        SloReport {
            target: self.target,
            violating: objects.iter().filter(|o| o.in_violation).count(),
            objects,
            fleet_availability,
        }
    }
}

/// Multi-window burn-rate policy (all quantities integer, sim-time).
///
/// The Google-SRE shape: an alert fires only when **both** a fast and a
/// slow window burn the error budget faster than `page_burn_milli`
/// (burn rate ×1000) — the fast window makes the alert responsive, the
/// slow window keeps one transient blip from paging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurnConfig {
    /// Error budget as parts-per-million of time (200 = 99.98%).
    pub budget_ppm: u64,
    /// Fast alert window.
    pub fast_window: Nanos,
    /// Slow alert window.
    pub slow_window: Nanos,
    /// Paging threshold: burn rate ×1000 that both windows must exceed.
    pub page_burn_milli: u64,
}

impl Default for BurnConfig {
    fn default() -> BurnConfig {
        BurnConfig {
            budget_ppm: OCS_ERROR_BUDGET_PPM,
            fast_window: Nanos::from_secs_f64(300.0),
            slow_window: Nanos::from_secs_f64(3_600.0),
            page_burn_milli: 10_000, // 10x budget burn
        }
    }
}

#[derive(Debug, Clone)]
struct BurnState {
    first_seen: Nanos,
    up: bool,
    since: Nanos,
    /// Total downtime over closed intervals.
    spent: Nanos,
    /// Closed down intervals `(start, end)`, oldest first, trimmed to
    /// the slow window at assess time (bounded memory).
    intervals: VecDeque<(Nanos, Nanos)>,
    /// Sticky page latch: set while the multi-window condition holds,
    /// so one breach episode pages exactly once.
    alerting: bool,
}

/// One object's burn-rate assessment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurnStatus {
    /// Object name (`pod-<id>` or `campus`).
    pub object: String,
    /// Pod id (`None` for the campus row).
    pub pod: Option<u32>,
    /// Fast-window burn rate ×1000 (1000 = exactly budget pace).
    pub fast_burn_milli: u64,
    /// Slow-window burn rate ×1000.
    pub slow_burn_milli: u64,
    /// Downtime the budget allows over the observed window, nanos.
    pub budget_nanos: u64,
    /// Downtime spent, nanos.
    pub spent_nanos: u64,
    /// Budget remaining ×1000 of the allowance, clamped to `[0, 1000]`.
    pub remaining_milli: u64,
    /// Whether the paired-window page condition currently holds.
    pub alerting: bool,
}

/// The campus burn-rate / error-budget assessment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurnReport {
    /// Error budget in ppm of time.
    pub budget_ppm: u64,
    /// Fast alert window.
    pub fast_window: Nanos,
    /// Slow alert window.
    pub slow_window: Nanos,
    /// Paging threshold (burn ×1000).
    pub page_burn_milli: u64,
    /// Per-pod rows, pod-sorted.
    pub pods: Vec<BurnStatus>,
    /// The campus-wide ledger row (sums of the pod ledgers).
    pub campus: BurnStatus,
    /// Pods currently in the paging condition.
    pub alerting: usize,
}

impl BurnReport {
    /// An empty report under `cfg` (no pods observed yet).
    pub fn empty(cfg: &BurnConfig) -> BurnReport {
        BurnReport {
            budget_ppm: cfg.budget_ppm,
            fast_window: cfg.fast_window,
            slow_window: cfg.slow_window,
            page_burn_milli: cfg.page_burn_milli,
            pods: Vec::new(),
            campus: BurnStatus {
                object: "campus".to_string(),
                pod: None,
                fast_burn_milli: 0,
                slow_burn_milli: 0,
                budget_nanos: 0,
                spent_nanos: 0,
                remaining_milli: 1000,
                alerting: false,
            },
            alerting: 0,
        }
    }
}

/// Multi-window burn-rate tracking with an error-budget ledger per pod
/// and campus-wide.
///
/// Feeds on the same up/down transitions as [`SloTracker`], but keeps
/// enough (bounded) interval history to answer *windowed* downtime —
/// the quantity burn rates are defined over. Every derived number is
/// integer arithmetic on [`Nanos`], so reports and the alarms raised
/// through [`BurnRateLedger::poll`] are byte-identical at any worker
/// count, and ledgers for disjoint pod sets merge exactly.
#[derive(Debug, Clone)]
pub struct BurnRateLedger {
    cfg: BurnConfig,
    pods: BTreeMap<u32, BurnState>,
}

impl Default for BurnRateLedger {
    fn default() -> BurnRateLedger {
        BurnRateLedger::new(BurnConfig::default())
    }
}

impl BurnRateLedger {
    /// A ledger under an explicit policy.
    pub fn new(cfg: BurnConfig) -> BurnRateLedger {
        assert!(cfg.budget_ppm > 0, "zero error budget never pages sanely");
        assert!(cfg.fast_window.0 > 0 && cfg.slow_window.0 >= cfg.fast_window.0);
        BurnRateLedger {
            cfg,
            pods: BTreeMap::new(),
        }
    }

    /// The active policy.
    pub fn config(&self) -> &BurnConfig {
        &self.cfg
    }

    /// Records that `pod` is `up`/down as of sim time `at`. First
    /// observation opens the pod's window; same-state repeats are
    /// idempotent (the [`SloTracker::observe`] contract).
    pub fn observe(&mut self, at: Nanos, pod: u32, up: bool) {
        match self.pods.get_mut(&pod) {
            None => {
                self.pods.insert(
                    pod,
                    BurnState {
                        first_seen: at,
                        up,
                        since: at,
                        spent: Nanos(0),
                        intervals: VecDeque::new(),
                        alerting: false,
                    },
                );
            }
            Some(s) => {
                if s.up == up {
                    return;
                }
                if !s.up {
                    s.spent += at.saturating_sub(s.since);
                    s.intervals.push_back((s.since, at));
                }
                s.up = up;
                s.since = at;
            }
        }
    }

    /// Pods tracked (the reserved campus-latch slot excluded).
    pub fn len(&self) -> usize {
        self.pods
            .keys()
            .filter(|&&p| p != CAMPUS_ALARM_SWITCH)
            .count()
    }

    /// True when nothing is tracked yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Downtime of `s` inside `[now - window, now]`.
    fn windowed_downtime(s: &BurnState, now: Nanos, window: Nanos) -> Nanos {
        let lo = now.saturating_sub(window);
        let mut down = 0u64;
        for &(start, end) in &s.intervals {
            let a = start.max(lo);
            let b = end.min(now);
            down += b.saturating_sub(a).0;
        }
        if !s.up {
            let a = s.since.max(lo);
            down += now.saturating_sub(a).0;
        }
        Nanos(down)
    }

    /// Burn rate ×1000: windowed downtime against the budget's pace.
    fn burn_milli(cfg: BurnConfig, down: Nanos, window: Nanos) -> u64 {
        // burn = (down / window) / (budget_ppm / 1e6); ×1000 for milli.
        let num = down.0 as u128 * 1_000_000_000u128;
        let den = window.0 as u128 * cfg.budget_ppm as u128;
        (num / den.max(1)) as u64
    }

    fn status(&self, pod: u32, s: &BurnState, now: Nanos) -> BurnStatus {
        let fast = Self::windowed_downtime(s, now, self.cfg.fast_window);
        let slow = Self::windowed_downtime(s, now, self.cfg.slow_window);
        let observed = now.saturating_sub(s.first_seen);
        let spent = s.spent.0
            + if s.up {
                0
            } else {
                now.saturating_sub(s.since).0
            };
        let budget = (observed.0 as u128 * self.cfg.budget_ppm as u128 / 1_000_000) as u64;
        BurnStatus {
            object: format!("pod-{pod}"),
            pod: Some(pod),
            fast_burn_milli: Self::burn_milli(self.cfg, fast, self.cfg.fast_window),
            slow_burn_milli: Self::burn_milli(self.cfg, slow, self.cfg.slow_window),
            budget_nanos: budget,
            spent_nanos: spent,
            remaining_milli: remaining_milli(budget, spent),
            alerting: s.alerting,
        }
    }

    /// Assesses every pod and the campus sum as of sim time `now`.
    pub fn assess(&self, now: Nanos) -> BurnReport {
        let mut report = BurnReport::empty(&self.cfg);
        let mut fast_down = Nanos(0);
        let mut slow_down = Nanos(0);
        for (&pod, s) in &self.pods {
            if pod == CAMPUS_ALARM_SWITCH {
                continue; // the reserved campus-latch slot, not a pod
            }
            fast_down += Self::windowed_downtime(s, now, self.cfg.fast_window);
            slow_down += Self::windowed_downtime(s, now, self.cfg.slow_window);
            report.pods.push(self.status(pod, s, now));
        }
        let n = report.pods.len().max(1) as u64;
        let campus_budget: u64 = report.pods.iter().map(|p| p.budget_nanos).sum();
        let campus_spent: u64 = report.pods.iter().map(|p| p.spent_nanos).sum();
        // Campus burn is pod-count-normalized: the campus window is
        // n pods × the wall window, so one pod down at exactly budget
        // pace reads the same burn at both levels divided by fleet size.
        report.campus = BurnStatus {
            object: "campus".to_string(),
            pod: None,
            fast_burn_milli: Self::burn_milli(
                self.cfg,
                fast_down,
                Nanos(self.cfg.fast_window.0 * n),
            ),
            slow_burn_milli: Self::burn_milli(
                self.cfg,
                slow_down,
                Nanos(self.cfg.slow_window.0 * n),
            ),
            budget_nanos: campus_budget,
            spent_nanos: campus_spent,
            remaining_milli: remaining_milli(campus_budget, campus_spent),
            alerting: report.campus.alerting,
        };
        report.campus.alerting = report.campus.fast_burn_milli >= self.cfg.page_burn_milli
            && report.campus.slow_burn_milli >= self.cfg.page_burn_milli;
        report.alerting = report.pods.iter().filter(|p| p.alerting).count();
        report
    }

    /// Evaluates the paired-window page condition for every pod and the
    /// campus, raising a Warning [`TrendSignal::ErrorBudgetBurn`] alarm
    /// through `sink` on each **rising edge** (the sticky latch clears
    /// when the condition lapses, so a sustained breach pages once).
    /// Trend-class incidents never auto-escalate ([`crate::alarms`]).
    /// Also trims interval history outside the slow window. Returns the
    /// pods that newly entered the paging condition
    /// ([`CAMPUS_ALARM_SWITCH`] stands for the campus object).
    pub fn poll(&mut self, sink: &mut FleetTelemetry, now: Nanos) -> Vec<u32> {
        let lo = now.saturating_sub(self.cfg.slow_window);
        let mut fired = Vec::new();
        let mut campus_fast = Nanos(0);
        let mut campus_slow = Nanos(0);
        let mut observed_pods = 0u64;
        for (&pod, s) in &mut self.pods {
            if pod == CAMPUS_ALARM_SWITCH {
                continue; // the reserved campus-latch slot, not a pod
            }
            observed_pods += 1;
            while s.intervals.front().is_some_and(|&(_, end)| end < lo) {
                s.intervals.pop_front();
            }
            let fast = Self::windowed_downtime(s, now, self.cfg.fast_window);
            let slow = Self::windowed_downtime(s, now, self.cfg.slow_window);
            campus_fast += fast;
            campus_slow += slow;
            let firing =
                self.cfg.page_burn_milli
                    <= Self::burn_milli(self.cfg, fast, self.cfg.fast_window)
                        .min(Self::burn_milli(self.cfg, slow, self.cfg.slow_window));
            if firing && !s.alerting {
                fired.push(pod);
                sink.ingest_alarm(AlarmRecord {
                    at: now,
                    severity: Severity::Warning,
                    switch: pod,
                    cause: AlarmCause::TrendAnomaly {
                        signal: TrendSignal::ErrorBudgetBurn,
                        port: 0,
                    },
                });
            }
            s.alerting = firing;
        }
        let n = observed_pods.max(1);
        let campus_firing = self.cfg.page_burn_milli
            <= Self::burn_milli(self.cfg, campus_fast, Nanos(self.cfg.fast_window.0 * n)).min(
                Self::burn_milli(self.cfg, campus_slow, Nanos(self.cfg.slow_window.0 * n)),
            );
        if campus_firing && !self.campus_latch() {
            fired.push(CAMPUS_ALARM_SWITCH);
            sink.ingest_alarm(AlarmRecord {
                at: now,
                severity: Severity::Warning,
                switch: CAMPUS_ALARM_SWITCH,
                cause: AlarmCause::TrendAnomaly {
                    signal: TrendSignal::ErrorBudgetBurn,
                    port: 0,
                },
            });
        }
        self.set_campus_latch(campus_firing);
        fired
    }

    // The campus latch rides on a reserved pod slot so merge stays a
    // plain map union; it is never reported as a pod.
    fn campus_latch(&self) -> bool {
        self.pods
            .get(&CAMPUS_ALARM_SWITCH)
            .map(|s| s.alerting)
            .unwrap_or(false)
    }

    fn set_campus_latch(&mut self, firing: bool) {
        if let Some(s) = self.pods.get_mut(&CAMPUS_ALARM_SWITCH) {
            s.alerting = firing;
        } else if firing {
            self.pods.insert(
                CAMPUS_ALARM_SWITCH,
                BurnState {
                    first_seen: Nanos(0),
                    up: true,
                    since: Nanos(0),
                    spent: Nanos(0),
                    intervals: VecDeque::new(),
                    alerting: true,
                },
            );
        }
    }

    /// Pushes burn-rate and budget-remaining samples for the campus and
    /// every pod into `store` — the series export
    /// [`SeriesStore::tracks`] turns into Perfetto `ph:"C"` counter
    /// tracks (`slo_burn_fast_milli`, `slo_budget_remaining_milli`).
    pub fn record_series(&self, store: &mut SeriesStore, now: Nanos) {
        let report = self.assess(now);
        let mut rows: Vec<(&BurnStatus, String)> = vec![(&report.campus, "campus".to_string())];
        for p in &report.pods {
            rows.push((p, p.object.clone()));
        }
        for (status, scope) in rows {
            let labels: &[(&str, &str)] = &[("scope", &scope)];
            let burn = store.series("slo_burn_fast_milli", labels);
            store.push_micros(burn, now, status.fast_burn_milli as i64);
            let slow = store.series("slo_burn_slow_milli", labels);
            store.push_micros(slow, now, status.slow_burn_milli as i64);
            let rem = store.series("slo_budget_remaining_milli", labels);
            store.push_micros(rem, now, status.remaining_milli as i64);
        }
    }

    /// Merges another ledger (consuming it). Exact when the pod sets
    /// are disjoint — the sharded-cell case, where each cell owns its
    /// pod ids; on overlap the interval histories concatenate and
    /// spent/first-seen fold, which is exact for sequential episodes.
    pub fn merge(&mut self, other: BurnRateLedger) {
        for (pod, s) in other.pods {
            match self.pods.get_mut(&pod) {
                None => {
                    self.pods.insert(pod, s);
                }
                Some(mine) => {
                    mine.first_seen = mine.first_seen.min(s.first_seen);
                    mine.spent += s.spent;
                    mine.intervals.extend(s.intervals);
                    if s.since > mine.since {
                        mine.up = s.up;
                        mine.since = s.since;
                    }
                    mine.alerting |= s.alerting;
                }
            }
        }
    }
}

/// Budget remaining ×1000 of the allowance, clamped to `[0, 1000]`.
fn remaining_milli(budget: u64, spent: u64) -> u64 {
    if budget == 0 {
        return if spent == 0 { 1000 } else { 0 };
    }
    (budget.saturating_sub(spent) as u128 * 1000 / budget as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: f64) -> Nanos {
        Nanos::from_secs_f64(secs)
    }

    #[test]
    fn downtime_accrues_only_while_down() {
        let mut t = SloTracker::new(0.99);
        t.observe(s(0.0), "ocs-0", true);
        t.observe(s(100.0), "ocs-0", false);
        t.observe(s(101.0), "ocs-0", true);
        let r = t.report(s(200.0));
        let o = &r.objects[0];
        assert_eq!(o.downtime, s(1.0));
        assert!((o.availability - 0.995).abs() < 1e-9);
        assert!(!o.in_violation);
        assert_eq!(o.transitions, 2);
    }

    #[test]
    fn ongoing_outage_counts_up_to_now() {
        let mut t = SloTracker::ocs_target();
        t.observe(s(0.0), "ocs-1", true);
        t.observe(s(10.0), "ocs-1", false);
        let r = t.report(s(20.0));
        assert_eq!(r.objects[0].downtime, s(10.0));
        assert!(r.objects[0].in_violation, "50% uptime misses 99.98%");
        assert_eq!(r.violating, 1);
        assert_eq!(r.objects[0].budget_remaining, 0.0);
    }

    #[test]
    fn error_budget_against_paper_target() {
        // 99.98% over a simulated day allows 0.0002 × 86400 s ≈ 17.3 s.
        let mut t = SloTracker::ocs_target();
        t.observe(s(0.0), "ocs-2", true);
        t.observe(s(1000.0), "ocs-2", false);
        t.observe(s(1008.0), "ocs-2", true); // 8 s outage
        let r = t.report(s(86_400.0));
        let o = &r.objects[0];
        assert!(!o.in_violation, "8 s of downtime fits the daily budget");
        let budget_s = o.error_budget.as_secs_f64();
        assert!((budget_s - 17.28).abs() < 0.01, "budget {budget_s} s");
        assert!(o.budget_remaining > 0.5 && o.budget_remaining < 0.6);
    }

    #[test]
    fn late_joining_objects_observe_from_first_seen() {
        let mut t = SloTracker::new(0.999);
        t.observe(s(0.0), "a", true);
        t.observe(s(500.0), "b", true); // turned up mid-simulation
        let r = t.report(s(1000.0));
        assert_eq!(r.objects.len(), 2);
        assert!((r.fleet_availability - 1.0).abs() < 1e-12);
        let b = r.objects.iter().find(|o| o.object == "b").unwrap();
        assert_eq!(b.error_budget, Nanos((500e9 * 0.001) as u64));
    }

    #[test]
    fn idempotent_same_state_observations() {
        let mut t = SloTracker::new(0.99);
        t.observe(s(0.0), "a", false);
        t.observe(s(5.0), "a", false);
        t.observe(s(10.0), "a", true);
        let r = t.report(s(20.0));
        assert_eq!(r.objects[0].downtime, s(10.0));
        assert_eq!(r.objects[0].transitions, 1);
    }

    #[test]
    fn burn_rate_is_windowed_and_integer_exact() {
        let mut l = BurnRateLedger::default();
        l.observe(s(0.0), 0, true);
        // 3 s outage well inside both windows.
        l.observe(s(100.0), 0, false);
        l.observe(s(103.0), 0, true);
        let r = l.assess(s(200.0));
        let p = &r.pods[0];
        // fast: 3 s / 300 s = 1% downtime = 50x the 200 ppm budget.
        assert_eq!(p.fast_burn_milli, 50_000);
        // slow: 3 s / 3600 s over a 200 ppm budget ≈ 4.166x pace.
        assert_eq!(p.slow_burn_milli, 4_166);
        assert_eq!(p.spent_nanos, s(3.0).0);
        // After the fast window slides past the outage, fast burn is 0
        // but the ledger still remembers the spend.
        let later = l.assess(s(500.0));
        assert_eq!(later.pods[0].fast_burn_milli, 0);
        assert_eq!(later.pods[0].spent_nanos, s(3.0).0);
        assert!(later.pods[0].slow_burn_milli > 0);
    }

    #[test]
    fn paired_windows_gate_the_page_and_latch_fires_once() {
        let mut sink = crate::fleet::FleetTelemetry::new();
        // Tight windows so a test-sized outage trips both.
        let mut l = BurnRateLedger::new(BurnConfig {
            budget_ppm: 200,
            fast_window: s(10.0),
            slow_window: s(100.0),
            page_burn_milli: 10_000,
        });
        l.observe(s(0.0), 3, true);
        assert!(l.poll(&mut sink, s(5.0)).is_empty(), "clean pod: no page");
        // 1 s outage: fast burn 1/10/200ppm = 500x, slow burn 50x — both
        // over the 10x threshold.
        l.observe(s(50.0), 3, false);
        l.observe(s(51.0), 3, true);
        let fired = l.poll(&mut sink, s(52.0));
        assert!(fired.contains(&3), "pod 3 pages");
        assert!(
            fired.contains(&CAMPUS_ALARM_SWITCH),
            "single-pod campus follows"
        );
        let pages = sink.alarms.pages();
        // Condition still holds: the latch suppresses a second page.
        assert!(l.poll(&mut sink, s(53.0)).is_empty());
        assert_eq!(sink.alarms.pages(), pages);
        // Condition lapses (fast window slides clear), then a new
        // breach pages again.
        assert!(l.poll(&mut sink, s(70.0)).is_empty());
        assert!(!l.assess(s(70.0)).pods[0].alerting);
        l.observe(s(80.0), 3, false);
        l.observe(s(81.0), 3, true);
        assert!(l.poll(&mut sink, s(82.0)).contains(&3));
    }

    #[test]
    fn slow_window_vetoes_a_transient_blip() {
        let mut sink = crate::fleet::FleetTelemetry::new();
        let mut l = BurnRateLedger::new(BurnConfig {
            budget_ppm: 200,
            fast_window: s(10.0),
            slow_window: s(10_000.0),
            page_burn_milli: 10_000,
        });
        l.observe(s(0.0), 0, true);
        // 0.5 s blip: fast burn 250x (pages on its own), slow burn
        // 0.5/10000/200ppm = 0.25x — under threshold, so no page.
        l.observe(s(5_000.0), 0, false);
        l.observe(s(5_000.5), 0, true);
        assert!(l.poll(&mut sink, s(5_001.0)).is_empty());
        assert_eq!(sink.alarms.pages(), 0);
    }

    #[test]
    fn ledger_merge_of_disjoint_pods_is_exact() {
        let outage = |l: &mut BurnRateLedger, pod: u32, from: f64, to: f64| {
            l.observe(s(0.0), pod, true);
            l.observe(s(from), pod, false);
            l.observe(s(to), pod, true);
        };
        let mut whole = BurnRateLedger::default();
        outage(&mut whole, 0, 100.0, 103.0);
        outage(&mut whole, 1, 200.0, 210.0);
        let mut a = BurnRateLedger::default();
        outage(&mut a, 0, 100.0, 103.0);
        let mut b = BurnRateLedger::default();
        outage(&mut b, 1, 200.0, 210.0);
        a.merge(b);
        assert_eq!(whole.assess(s(400.0)), a.assess(s(400.0)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn budget_ledger_sums_to_campus() {
        let mut l = BurnRateLedger::default();
        l.observe(s(0.0), 0, true);
        l.observe(s(0.0), 1, true);
        l.observe(s(10.0), 1, false);
        l.observe(s(12.0), 1, true);
        let r = l.assess(s(1_000.0));
        assert_eq!(
            r.campus.spent_nanos,
            r.pods.iter().map(|p| p.spent_nanos).sum::<u64>()
        );
        assert_eq!(
            r.campus.budget_nanos,
            r.pods.iter().map(|p| p.budget_nanos).sum::<u64>()
        );
        assert!(r.pods[0].remaining_milli == 1000);
        assert!(r.pods[1].remaining_milli < 1000);
    }

    #[test]
    fn burn_series_export_covers_campus_and_pods() {
        let mut l = BurnRateLedger::default();
        l.observe(s(0.0), 0, true);
        l.observe(s(0.0), 7, true);
        let mut store = crate::timeseries::SeriesStore::default();
        l.record_series(&mut store, s(60.0));
        let tracks = store.tracks();
        // 3 series × (campus + 2 pods).
        assert_eq!(tracks.len(), 9);
        assert!(tracks
            .iter()
            .any(|t| t.name == "slo_budget_remaining_milli{scope=campus}"));
        assert!(tracks
            .iter()
            .any(|t| t.name == "slo_burn_fast_milli{scope=pod-7}"));
    }
}
