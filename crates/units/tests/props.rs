//! Property tests for unit algebra and numerics.

use lightwave_units::{math, Availability, Ber, Db, Dbm};
use proptest::prelude::*;

proptest! {
    #[test]
    fn db_linear_roundtrip(x in 1e-6f64..1e6) {
        let db = Db::from_linear(x);
        prop_assert!((db.linear() / x - 1.0).abs() < 1e-10);
    }

    #[test]
    fn db_addition_is_linear_multiplication(a in -40.0f64..40.0, b in -40.0f64..40.0) {
        let lhs = (Db(a) + Db(b)).linear();
        let rhs = Db(a).linear() * Db(b).linear();
        prop_assert!((lhs / rhs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dbm_margin_algebra(p in -30.0f64..10.0, loss in 0.0f64..30.0) {
        let launch = Dbm(p);
        let rx = launch - Db(loss);
        prop_assert!(((launch - rx).db() - loss).abs() < 1e-12);
        // Linear power always decreases under loss.
        prop_assert!(rx.milliwatts().mw() <= launch.milliwatts().mw());
    }

    #[test]
    fn availability_series_never_exceeds_components(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let s = Availability::series([Availability::new(a), Availability::new(b)]);
        prop_assert!(s.prob() <= a.min(b) + 1e-15);
        let p = Availability::new(a).parallel(Availability::new(b));
        prop_assert!(p.prob() + 1e-15 >= a.max(b));
        prop_assert!((0.0..=1.0).contains(&p.prob()));
    }

    #[test]
    fn series_of_matches_repeated_series(a in 0.5f64..1.0, n in 1u32..100) {
        let direct = Availability::new(a).series_of(n).prob();
        let manual: f64 = (0..n).map(|_| a).product();
        prop_assert!((direct - manual).abs() < 1e-12);
    }

    #[test]
    fn ber_q_factor_is_monotone(q1 in 0.5f64..7.0, dq in 0.01f64..2.0) {
        let b1 = Ber::from_q_factor(q1);
        let b2 = Ber::from_q_factor(q1 + dq);
        prop_assert!(b2.prob() < b1.prob(), "higher Q must mean lower BER");
    }

    #[test]
    fn erfc_bounds_and_symmetry(x in -5.0f64..5.0) {
        let e = math::erfc(x);
        prop_assert!((0.0..=2.0).contains(&e));
        prop_assert!((math::erfc(-x) - (2.0 - e)).abs() < 1e-6);
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.5f64..50.0) {
        // Γ(x+1) = x·Γ(x)  ⇔  lnΓ(x+1) = ln x + lnΓ(x).
        let lhs = math::ln_gamma(x + 1.0);
        let rhs = x.ln() + math::ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn binomial_tail_complements(n in 1u64..60, p in 0.0f64..=1.0) {
        // P(X > 0) + P(X = 0) = 1.
        let tail = math::binomial_tail_gt(n, 0, p);
        let p0 = (1.0 - p).powi(n as i32);
        prop_assert!((tail + p0 - 1.0).abs() < 1e-9);
    }
}
