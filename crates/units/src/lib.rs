//! Strongly-typed engineering units for lightwave-fabric modeling.
//!
//! Optical link budgets are a minefield of logarithmic/linear unit confusion:
//! a 2 dB insertion loss is a *ratio*, a −10 dBm launch power is an *absolute
//! power*, and adding two dBm values is almost always a bug. This crate makes
//! those distinctions type errors instead of silent miscalculations.
//!
//! The core types are:
//!
//! - [`Db`] — a dimensionless power ratio in decibels (gains and losses).
//! - [`Dbm`] — an absolute optical power referenced to 1 mW.
//! - [`Milliwatts`] — the same quantity in linear units.
//! - [`Nanometers`] / [`Gigahertz`] — wavelength and bandwidth.
//! - [`Gbps`] — data rate.
//! - [`Ber`] — a bit-error ratio with Q-factor conversions.
//! - [`Availability`] — a probability of being up, with series/parallel
//!   composition.
//!
//! Arithmetic follows link-budget conventions: `Dbm + Db = Dbm` (apply a
//! gain), `Dbm - Db = Dbm` (apply a loss), `Dbm - Dbm = Db` (a margin), and
//! `Db` values add among themselves. There is deliberately no `Dbm + Dbm`.
//!
//! The [`math`] module provides the special functions (erfc, Q-function and
//! its inverse) used by the BER models in `lightwave-optics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod math;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A dimensionless power ratio expressed in decibels.
///
/// Positive values are gains, negative values are losses when used as a gain;
/// by convention this library stores *insertion loss* and *return loss* as
/// positive-loss [`Db`] quantities and documents the sign at each use site.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(pub f64);

impl Db {
    /// Zero dB — unity gain.
    pub const ZERO: Db = Db(0.0);

    /// Creates a ratio from a linear power factor (e.g. `0.5` → `-3.01 dB`).
    ///
    /// # Panics
    /// Panics if `linear` is not finite and positive.
    pub fn from_linear(linear: f64) -> Db {
        assert!(
            linear.is_finite() && linear > 0.0,
            "linear ratio must be finite and > 0, got {linear}"
        );
        Db(10.0 * linear.log10())
    }

    /// Converts to a linear power factor (e.g. `-3 dB` → `~0.5`).
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// The raw decibel value.
    pub fn db(self) -> f64 {
        self.0
    }

    /// Absolute value of the ratio in dB.
    pub fn abs(self) -> Db {
        Db(self.0.abs())
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl Div<f64> for Db {
    type Output = Db;
    fn div(self, rhs: f64) -> Db {
        Db(self.0 / rhs)
    }
}

impl Sum for Db {
    fn sum<I: Iterator<Item = Db>>(iter: I) -> Db {
        iter.fold(Db::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

/// Absolute optical power in dBm (decibels referenced to 1 mW).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(pub f64);

impl Dbm {
    /// Creates an absolute power from linear milliwatts.
    ///
    /// # Panics
    /// Panics if `mw` is not finite and positive.
    pub fn from_milliwatts(mw: Milliwatts) -> Dbm {
        assert!(
            mw.0.is_finite() && mw.0 > 0.0,
            "power must be finite and > 0 mW, got {} mW",
            mw.0
        );
        Dbm(10.0 * mw.0.log10())
    }

    /// Converts to linear milliwatts.
    pub fn milliwatts(self) -> Milliwatts {
        Milliwatts(10f64.powf(self.0 / 10.0))
    }

    /// The raw dBm value.
    pub fn dbm(self) -> f64 {
        self.0
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

/// Linear optical power in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Milliwatts(pub f64);

impl Milliwatts {
    /// The raw mW value.
    pub fn mw(self) -> f64 {
        self.0
    }
}

impl Add for Milliwatts {
    type Output = Milliwatts;
    fn add(self, rhs: Milliwatts) -> Milliwatts {
        Milliwatts(self.0 + rhs.0)
    }
}

impl Mul<f64> for Milliwatts {
    type Output = Milliwatts;
    fn mul(self, rhs: f64) -> Milliwatts {
        Milliwatts(self.0 * rhs)
    }
}

/// An optical wavelength in nanometers.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Nanometers(pub f64);

impl Nanometers {
    /// Speed of light in vacuum, m/s.
    pub const C: f64 = 299_792_458.0;

    /// The raw nm value.
    pub fn nm(self) -> f64 {
        self.0
    }

    /// The optical carrier frequency corresponding to this vacuum wavelength.
    pub fn frequency(self) -> Gigahertz {
        Gigahertz(Self::C / self.0) // c[m/s] / λ[nm] = (c/λ)·1e9 Hz = GHz
    }
}

impl Sub for Nanometers {
    type Output = Nanometers;
    fn sub(self, rhs: Nanometers) -> Nanometers {
        Nanometers(self.0 - rhs.0)
    }
}

impl fmt::Display for Nanometers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} nm", self.0)
    }
}

/// A frequency or analog bandwidth in gigahertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Gigahertz(pub f64);

impl Gigahertz {
    /// The raw GHz value.
    pub fn ghz(self) -> f64 {
        self.0
    }
}

/// A data rate in gigabits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Gbps(pub f64);

impl Gbps {
    /// The raw Gb/s value.
    pub fn gbps(self) -> f64 {
        self.0
    }

    /// Bytes per second at this rate.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 * 1e9 / 8.0
    }

    /// Time to move `bytes` at this rate, in seconds.
    ///
    /// # Panics
    /// Panics if the rate is not positive.
    pub fn transfer_secs(self, bytes: f64) -> f64 {
        assert!(self.0 > 0.0, "cannot transfer over a {} Gb/s link", self.0);
        bytes / self.bytes_per_sec()
    }
}

impl Add for Gbps {
    type Output = Gbps;
    fn add(self, rhs: Gbps) -> Gbps {
        Gbps(self.0 + rhs.0)
    }
}

impl Mul<f64> for Gbps {
    type Output = Gbps;
    fn mul(self, rhs: f64) -> Gbps {
        Gbps(self.0 * rhs)
    }
}

impl Div<f64> for Gbps {
    type Output = Gbps;
    fn div(self, rhs: f64) -> Gbps {
        Gbps(self.0 / rhs)
    }
}

impl Sum for Gbps {
    fn sum<I: Iterator<Item = Gbps>>(iter: I) -> Gbps {
        iter.fold(Gbps(0.0), |a, b| a + b)
    }
}

impl fmt::Display for Gbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} Gb/s", self.0)
    }
}

/// A bit-error ratio.
///
/// Stored as a probability in `[0, 0.5]`; helpers convert to and from the
/// Gaussian Q-factor used by receiver-sensitivity models.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Ber(pub f64);

impl Ber {
    /// The KP4 (RS(544,514)) pre-FEC threshold of 2×10⁻⁴ used throughout the
    /// paper as the correctable operating point.
    pub const KP4_THRESHOLD: Ber = Ber(2.0e-4);

    /// Creates a BER, clamping into the meaningful `[0, 0.5]` range.
    pub fn new(p: f64) -> Ber {
        assert!(
            p.is_finite() && p >= 0.0,
            "BER must be finite and >= 0, got {p}"
        );
        Ber(p.min(0.5))
    }

    /// The raw error probability.
    pub fn prob(self) -> f64 {
        self.0
    }

    /// `-log10(BER)`, the "orders of magnitude" scale used in BER plots.
    ///
    /// Returns `f64::INFINITY` for a zero BER.
    pub fn neg_log10(self) -> f64 {
        if self.0 == 0.0 {
            f64::INFINITY
        } else {
            -self.0.log10()
        }
    }

    /// BER corresponding to a Gaussian Q-factor: `BER = Q(q) = erfc(q/√2)/2`.
    pub fn from_q_factor(q: f64) -> Ber {
        Ber(math::q_function(q))
    }

    /// The Gaussian Q-factor corresponding to this BER.
    pub fn q_factor(self) -> f64 {
        math::q_inverse(self.0)
    }

    /// True if this BER is at or below the given FEC threshold.
    pub fn meets(self, threshold: Ber) -> bool {
        self.0 <= threshold.0
    }

    /// Margin in orders of magnitude below `threshold` (positive = better).
    pub fn margin_orders(self, threshold: Ber) -> f64 {
        self.neg_log10() - threshold.neg_log10()
    }
}

impl fmt::Display for Ber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2e}", self.0)
    }
}

/// A steady-state availability: the long-run probability of being up.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Availability(f64);

impl Availability {
    /// Always up.
    pub const ONE: Availability = Availability(1.0);

    /// Creates an availability.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Availability {
        assert!(
            (0.0..=1.0).contains(&p),
            "availability must be in [0,1], got {p}"
        );
        Availability(p)
    }

    /// From "number of nines": `nines(3)` = 99.9%.
    pub fn from_nines(nines: f64) -> Availability {
        Availability::new(1.0 - 10f64.powf(-nines))
    }

    /// The probability of being up.
    pub fn prob(self) -> f64 {
        self.0
    }

    /// The probability of being down.
    pub fn unavailability(self) -> f64 {
        1.0 - self.0
    }

    /// Availability of a series system: up only if *all* components are up.
    pub fn series(components: impl IntoIterator<Item = Availability>) -> Availability {
        Availability(components.into_iter().map(|a| a.0).product())
    }

    /// Availability of this component replicated `n` times in series.
    pub fn series_of(self, n: u32) -> Availability {
        Availability(self.0.powi(n as i32))
    }

    /// Availability of a parallel (redundant) pair: down only if *both* down.
    pub fn parallel(self, other: Availability) -> Availability {
        Availability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// Expected downtime per year, in minutes.
    pub fn downtime_minutes_per_year(self) -> f64 {
        self.unavailability() * 365.25 * 24.0 * 60.0
    }
}

impl fmt::Display for Availability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}%", self.0 * 100.0)
    }
}

/// A duration in nanoseconds, the native tick of link- and switch-level models.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// From microseconds.
    pub fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// From seconds (fractional allowed; rounds to nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Nanos {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and >= 0"
        );
        Nanos((s * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos(0), |a, b| a + b)
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn db_linear_roundtrip() {
        for &x in &[0.01, 0.5, 1.0, 2.0, 100.0] {
            let db = Db::from_linear(x);
            assert!(close(db.linear(), x, 1e-12 * x.max(1.0)));
        }
    }

    #[test]
    fn db_3db_is_half_power() {
        assert!(close(Db(-3.0103).linear(), 0.5, 1e-4));
        assert!(close(Db::from_linear(2.0).db(), 3.0103, 1e-3));
    }

    #[test]
    fn dbm_arithmetic_follows_link_budget_rules() {
        let launch = Dbm(1.0);
        let after_loss = launch - Db(2.5);
        assert!(close(after_loss.dbm(), -1.5, 1e-12));
        let margin = launch - after_loss;
        assert!(close(margin.db(), 2.5, 1e-12));
        let amplified = after_loss + Db(4.0);
        assert!(close(amplified.dbm(), 2.5, 1e-12));
    }

    #[test]
    fn dbm_mw_roundtrip() {
        let p = Dbm(-7.3);
        let back = Dbm::from_milliwatts(p.milliwatts());
        assert!(close(back.dbm(), -7.3, 1e-12));
        assert!(close(Dbm(0.0).milliwatts().mw(), 1.0, 1e-12));
        assert!(close(Dbm(10.0).milliwatts().mw(), 10.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "must be finite and > 0")]
    fn db_from_linear_rejects_zero() {
        let _ = Db::from_linear(0.0);
    }

    #[test]
    fn wavelength_frequency_1310nm() {
        // 1310 nm is ~228.8 THz.
        let f = Nanometers(1310.0).frequency();
        assert!(close(f.ghz(), 228_849.0, 100.0), "got {} GHz", f.ghz());
    }

    #[test]
    fn gbps_transfer_time() {
        // 1 GiB at 100 Gb/s ≈ 85.9 ms.
        let t = Gbps(100.0).transfer_secs(1024.0 * 1024.0 * 1024.0);
        assert!(close(t, 0.0859, 1e-3), "got {t}");
    }

    #[test]
    fn ber_q_factor_known_points() {
        // Q = 7.03 → BER ≈ 1e-12 (textbook value).
        let ber = Ber::from_q_factor(7.034);
        assert!(close(ber.neg_log10(), 12.0, 0.05), "Q=7.034 gave BER {ber}");
        // Q ≈ 3.54 → BER ≈ 2e-4 (the KP4 threshold).
        let q = Ber::KP4_THRESHOLD.q_factor();
        assert!(close(q, 3.54, 0.01), "got q = {q}");
    }

    #[test]
    fn ber_q_roundtrip() {
        for &q in &[1.0, 2.0, 3.0, 4.5, 6.0, 7.5] {
            let ber = Ber::from_q_factor(q);
            assert!(close(ber.q_factor(), q, 1e-6), "roundtrip failed at q={q}");
        }
    }

    #[test]
    fn ber_margin_orders() {
        let b = Ber::new(2.0e-6);
        assert!(close(b.margin_orders(Ber::KP4_THRESHOLD), 2.0, 1e-9));
        assert!(b.meets(Ber::KP4_THRESHOLD));
        assert!(!Ber::new(1e-3).meets(Ber::KP4_THRESHOLD));
    }

    #[test]
    fn availability_composition() {
        let a = Availability::new(0.999);
        // 48 OCSes in series: 0.999^48 ≈ 0.9531.
        let fabric = a.series_of(48);
        assert!(close(fabric.prob(), 0.9531, 1e-3), "got {}", fabric.prob());
        // Redundant pair of 99% components → 99.99%.
        let pair = Availability::new(0.99).parallel(Availability::new(0.99));
        assert!(close(pair.prob(), 0.9999, 1e-12));
    }

    #[test]
    fn availability_nines() {
        assert!(close(Availability::from_nines(3.0).prob(), 0.999, 1e-12));
        let dt = Availability::from_nines(4.0).downtime_minutes_per_year();
        assert!(close(dt, 52.6, 0.5), "got {dt}");
    }

    #[test]
    #[should_panic(expected = "availability must be in [0,1]")]
    fn availability_rejects_out_of_range() {
        let _ = Availability::new(1.5);
    }

    #[test]
    fn nanos_display_scales() {
        assert_eq!(Nanos(12).to_string(), "12 ns");
        assert_eq!(Nanos::from_micros(3).to_string(), "3.000 µs");
        assert_eq!(Nanos::from_millis(25).to_string(), "25.000 ms");
        assert_eq!(Nanos::from_secs_f64(1.5).to_string(), "1.500 s");
    }

    #[test]
    fn nanos_roundtrip_and_arith() {
        let t = Nanos::from_secs_f64(0.25);
        assert!(close(t.as_secs_f64(), 0.25, 1e-12));
        assert_eq!(Nanos(5) + Nanos(7), Nanos(12));
        assert_eq!(Nanos(5).saturating_sub(Nanos(7)), Nanos(0));
        assert_eq!(Nanos(5) * 3, Nanos(15));
    }
}
