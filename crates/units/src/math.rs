//! Special functions for BER and reliability modeling.
//!
//! Rust's `std` has no error function, so we provide an `erfc` accurate to
//! ~1.2e-7 relative error (Numerical Recipes' Chebyshev fit), a Gaussian
//! Q-function built on it, and a Newton-refined inverse Q-function. That
//! accuracy comfortably exceeds what link-budget models need (BER curves are
//! plotted on log axes spanning ten decades).

/// Complementary error function, `erfc(x) = 1 - erf(x)`.
///
/// Uses the Chebyshev-fitted approximation from Numerical Recipes §6.2 with
/// relative error ≤ 1.2×10⁻⁷ everywhere.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function, `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The Gaussian tail probability `Q(x) = P(N(0,1) > x) = erfc(x/√2) / 2`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of [`q_function`]: given a tail probability `p ∈ (0, 0.5]`,
/// returns `x` such that `Q(x) = p`.
///
/// Uses the Acklam-style rational initial guess for the normal quantile
/// followed by two Newton steps on `Q`, giving ~1e-12 relative accuracy over
/// the BER range of interest (1e-15 .. 0.5).
///
/// # Panics
/// Panics if `p` is not in `(0, 1)`.
pub fn q_inverse(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "tail probability must be in (0,1), got {p}"
    );
    // Q(x) = p  ⇔  x = Φ⁻¹(1 - p) = -Φ⁻¹(p).
    let mut x = -norm_quantile(p);
    // Newton refinement: Q'(x) = -φ(x).
    for _ in 0..3 {
        let q = q_function(x);
        let pdf = (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        if pdf == 0.0 {
            break;
        }
        x -= (p - q) / pdf;
    }
    x
}

/// Peter Acklam's rational approximation to the standard normal quantile
/// function Φ⁻¹(p); relative error < 1.15e-9 before refinement.
#[allow(clippy::excessive_precision)] // coefficients kept verbatim from Acklam
fn norm_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Natural-log of the binomial coefficient `C(n, k)`, via `ln Γ`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "k={k} > n={n} in binomial");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0` (~1e-13 accuracy).
#[allow(clippy::excessive_precision)] // g=7, n=9 coefficients kept verbatim
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Probability that a Binomial(n, p) exceeds `k` successes, `P(X > k)`.
///
/// Computed by direct summation in log space; fine for the block lengths
/// (n ≤ a few thousand) used by FEC threshold models.
pub fn binomial_tail_gt(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return if k < n { 1.0 } else { 0.0 };
    }
    let ln_p = p.ln();
    let ln_1mp = (-p).ln_1p(); // ln(1 − p), accurate for small p
    let mut sum = 0.0;
    for i in (k + 1)..=n {
        let ln_term = ln_binomial(n, i) + (i as f64) * ln_p + ((n - i) as f64) * ln_1mp;
        sum += ln_term.exp();
    }
    sum.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn erfc_known_values() {
        assert!(close(erfc(0.0), 1.0, 1e-7));
        assert!(close(erfc(1.0), 0.157_299_2, 1e-6));
        assert!(close(erfc(2.0), 0.004_677_73, 1e-7));
        assert!(close(erfc(-1.0), 2.0 - 0.157_299_2, 1e-6));
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!(close(erf(x), -erf(-x), 1e-12));
        }
    }

    #[test]
    fn q_function_known_values() {
        assert!(close(q_function(0.0), 0.5, 1e-7));
        assert!(close(q_function(1.0), 0.158_655, 1e-5));
        assert!(close(q_function(3.0), 1.349_9e-3, 1e-6));
        // Q(7.034) ≈ 1e-12
        assert!(close(q_function(7.034).log10(), -12.0, 0.02));
    }

    #[test]
    fn q_inverse_roundtrip() {
        for &p in &[0.4, 1e-2, 1e-4, 1e-8, 1e-12] {
            let x = q_inverse(p);
            assert!(
                close(q_function(x).log10(), p.log10(), 1e-9),
                "roundtrip failed at p={p}: x={x}, Q(x)={}",
                q_function(x)
            );
        }
    }

    #[test]
    #[should_panic(expected = "tail probability")]
    fn q_inverse_rejects_zero() {
        let _ = q_inverse(0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!(close(ln_gamma(5.0), (24.0f64).ln(), 1e-10));
        assert!(close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-9));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
    }

    #[test]
    fn binomial_tail_sanity() {
        // Fair coin, 10 flips, P[X > 5] = P[6..10] = 386/1024.
        assert!(close(binomial_tail_gt(10, 5, 0.5), 386.0 / 1024.0, 1e-10));
        // Certain failure probability edge cases.
        assert_eq!(binomial_tail_gt(10, 5, 0.0), 0.0);
        assert_eq!(binomial_tail_gt(10, 5, 1.0), 1.0);
        assert_eq!(binomial_tail_gt(10, 10, 1.0), 0.0);
    }

    #[test]
    fn binomial_tail_asymmetric_p_regression() {
        // Regression for a sign slip where ln(1−p) was computed as ln(p):
        // only symmetric p = 0.5 cases could pass. Cross-checked value:
        // P[Binomial(544, 0.019821) > 15] ≈ 0.0794.
        let t = binomial_tail_gt(544, 15, 0.019_820_956_648);
        assert!((t - 0.0794).abs() < 1e-3, "got {t}");
        // And a small-p tail: P[Binomial(100, 1e-3) > 2] ≈ 1.504e-4.
        let s = binomial_tail_gt(100, 2, 1e-3);
        assert!((s / 1.504e-4 - 1.0).abs() < 0.01, "got {s}");
    }

    #[test]
    fn binomial_tail_is_monotone_in_p() {
        let mut prev = 0.0;
        for i in 1..=9 {
            let p = i as f64 / 10.0;
            let tail = binomial_tail_gt(100, 30, p);
            assert!(tail >= prev, "tail not monotone at p={p}");
            prev = tail;
        }
    }
}
