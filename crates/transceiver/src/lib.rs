//! Bidirectional WDM transceiver models (§3.3 of the paper).
//!
//! The paper's transceivers are where most of the custom engineering lives:
//! CWDM4/CWDM8 wavelength plans, integrated circulators for bidirectional
//! operation over a single fiber strand, EML sources, and a DSP ASIC with
//! OIM interference mitigation and concatenated FEC. This crate models the
//! *module* level:
//!
//! - [`module`] — the three module families and their fabric-facing
//!   consequences: fibers per module, OCS ports consumed, bandwidth per
//!   fiber (the CWDM4-duplex → CWDM4-bidi → CWDM8-bidi progression that
//!   cuts the superpod's OCS count 96 → 48 → 24, Fig. 15a).
//! - [`dsp`] — the DSP block configuration: OIM on/off, FEC chain,
//!   equalizer, and the resulting pre-FEC BER the link must deliver.
//! - [`bringup`] — the link bring-up state machine, including multi-rate
//!   negotiation for backward compatibility (§3.3.1).
//! - [`bidilink`] — an end-to-end evaluated bidirectional link: budget +
//!   MPI + receiver → per-lane BER and margin.
//! - [`fleet`] — pod-scale per-lane BER sampling, the Fig. 13 census.
//! - [`instrument`] — feeds census distributions and rate-fallback
//!   alarms into the fleet observability subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bidilink;
pub mod bringup;
pub mod dsp;
pub mod fleet;
pub mod instrument;
pub mod module;

pub use bidilink::{BidiLink, LaneReport};
pub use bringup::{BringupEvent, BringupState, LinkBringup};
pub use dsp::{DspConfig, FecMode};
pub use module::{ModuleFamily, Transceiver};
