//! OSFP module families and their fabric-level consequences.
//!
//! Three families matter to the paper's story (Fig. 9, §4.2.2):
//!
//! | family        | λ plan      | fibers | bidi | Gb/s per fiber | OCS ports/module |
//! |---------------|-------------|--------|------|----------------|------------------|
//! | CWDM4 duplex  | 4 × 20 nm   | 4      | no   | 200 (one way)  | 4                |
//! | CWDM4 bidi    | 4 × 20 nm   | 2      | yes  | 400 (both ways)| 2                |
//! | CWDM8 bidi    | 8 × 10 nm   | 1      | yes  | 800 (both ways)| 1                |
//!
//! Halving fibers halves OCS ports, which halves the number of OCSes a
//! 4096-TPU superpod needs (96 → 48 → 24) — which is what moves fabric
//! availability from 90% to 95% to 98% in Fig. 15a.

use lightwave_optics::modulation::LaneRate;
use lightwave_optics::wdm::WdmGrid;
use lightwave_units::{Dbm, Gbps};
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// The three transceiver families of the superpod evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleFamily {
    /// Standard CWDM4 duplex: one Tx fiber + one Rx fiber per 200G engine.
    Cwdm4Duplex,
    /// Custom CWDM4 bidi: 2 engines, 2 integrated circulators, one
    /// bidirectional fiber per engine (2×400G module of Fig. 9 top).
    Cwdm4Bidi,
    /// Custom CWDM8 bidi: 8 λ at 10 nm spacing, one circulator, a single
    /// bidirectional fiber (800G module of Fig. 9 bottom).
    Cwdm8Bidi,
}

impl ModuleFamily {
    /// All families, oldest first.
    pub const ALL: [ModuleFamily; 3] = [
        ModuleFamily::Cwdm4Duplex,
        ModuleFamily::Cwdm4Bidi,
        ModuleFamily::Cwdm8Bidi,
    ];

    /// The wavelength grid.
    pub fn grid(self) -> WdmGrid {
        match self {
            ModuleFamily::Cwdm4Duplex | ModuleFamily::Cwdm4Bidi => WdmGrid::Cwdm4,
            ModuleFamily::Cwdm8Bidi => WdmGrid::Cwdm8,
        }
    }

    /// Whether the module carries both directions on one strand.
    pub fn is_bidi(self) -> bool {
        !matches!(self, ModuleFamily::Cwdm4Duplex)
    }

    /// Per-lane rate used in the superpod deployments.
    pub fn lane_rate(self) -> LaneRate {
        match self {
            ModuleFamily::Cwdm4Duplex | ModuleFamily::Cwdm4Bidi => LaneRate::Pam4_50,
            ModuleFamily::Cwdm8Bidi => LaneRate::Pam4_100,
        }
    }

    /// Number of optical engines (Tx/Rx WDM groups) in the module.
    pub fn engines(self) -> usize {
        match self {
            ModuleFamily::Cwdm4Duplex | ModuleFamily::Cwdm4Bidi => 2,
            ModuleFamily::Cwdm8Bidi => 1,
        }
    }

    /// Fiber strands leaving the module.
    pub fn fibers(self) -> usize {
        match self {
            ModuleFamily::Cwdm4Duplex => 4, // 2 engines × (Tx + Rx)
            ModuleFamily::Cwdm4Bidi => 2,   // 2 engines × 1 bidi strand
            ModuleFamily::Cwdm8Bidi => 1,
        }
    }

    /// One-way bandwidth carried per fiber strand. Each engine is a full
    /// WDM group on its own strand(s): a duplex engine needs two strands
    /// for this bandwidth, a bidi engine carries it *both ways* on one.
    pub fn bandwidth_per_fiber(self) -> Gbps {
        self.lane_rate().bit_rate() * self.grid().lane_count() as f64
    }

    /// Total module bandwidth (sum over engines, one direction).
    pub fn module_bandwidth(self) -> Gbps {
        self.bandwidth_per_fiber() * self.engines() as f64
    }

    /// Total optical lanes in the module (8 for every family — the OSFP
    /// electrical interface is 8 lanes wide).
    pub fn total_lanes(self) -> usize {
        self.engines() * self.grid().lane_count()
    }

    /// OCS ports consumed per module — the number that drives fabric cost
    /// and availability. A duplex engine needs two ports (Tx path and Rx
    /// path); a bidi engine needs one.
    pub fn ocs_ports_per_module(self) -> usize {
        match self {
            ModuleFamily::Cwdm4Duplex => 4,
            ModuleFamily::Cwdm4Bidi => 2,
            ModuleFamily::Cwdm8Bidi => 1,
        }
    }

    /// OCSes required for a full 4096-TPU superpod using this family
    /// (Appendix A wiring: 64 cubes × 96 optical link-fibers per cube,
    /// opposing faces paired, 128 usable ports per OCS).
    pub fn superpod_ocs_count(self) -> usize {
        match self {
            ModuleFamily::Cwdm4Duplex => 96,
            ModuleFamily::Cwdm4Bidi => 48,
            ModuleFamily::Cwdm8Bidi => 24,
        }
    }

    /// Typical per-lane launch power.
    pub fn nominal_launch(self) -> Dbm {
        match self {
            ModuleFamily::Cwdm4Duplex => Dbm(0.5),
            ModuleFamily::Cwdm4Bidi => Dbm(1.0),
            ModuleFamily::Cwdm8Bidi => Dbm(1.5),
        }
    }

    /// Module electrical power draw, watts (OSFP class).
    pub fn power_w(self) -> f64 {
        match self {
            ModuleFamily::Cwdm4Duplex => 10.0,
            ModuleFamily::Cwdm4Bidi => 12.0,
            ModuleFamily::Cwdm8Bidi => 16.0,
        }
    }
}

/// A manufactured transceiver instance with sampled per-unit variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transceiver {
    /// Family.
    pub family: ModuleFamily,
    /// Actual per-lane launch power (unit-to-unit variation).
    pub launch: Dbm,
    /// Receiver sensitivity offset from nominal, dB (positive = worse).
    pub sensitivity_offset_db: f64,
    /// Residual BER floor of this unit with all DSP mitigation on —
    /// jitter, skew, and reflections the notch cannot capture. This is the
    /// quantity whose population spread is visible in Fig. 13.
    pub residual_floor: f64,
}

impl Transceiver {
    /// Samples a manufactured unit.
    pub fn sample(family: ModuleFamily, rng: &mut StdRng) -> Transceiver {
        let launch = Normal::<f64>::new(family.nominal_launch().dbm(), 0.5)
            .expect("valid sigma")
            .sample(rng);
        let sens = Normal::<f64>::new(0.0, 0.4)
            .expect("valid sigma")
            .sample(rng)
            .clamp(-1.0, 1.5);
        // Log-normal residual floor centered near 1e-6 — approximately two
        // orders of magnitude below the KP4 threshold, matching the
        // Fig. 13 fleet ("approximately two orders of magnitude of BER
        // margin").
        let log_floor = Normal::<f64>::new(-6.0, 0.45)
            .expect("valid sigma")
            .sample(rng)
            .clamp(-8.5, -4.6);
        Transceiver {
            family,
            launch: Dbm(launch),
            sensitivity_offset_db: sens,
            residual_floor: 10f64.powf(log_floor),
        }
    }

    /// A nominal (golden-sample) unit.
    pub fn nominal(family: ModuleFamily) -> Transceiver {
        Transceiver {
            family,
            launch: family.nominal_launch(),
            sensitivity_offset_db: 0.0,
            residual_floor: 1e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bidi_halves_ocs_ports() {
        assert_eq!(ModuleFamily::Cwdm4Duplex.ocs_ports_per_module(), 4);
        assert_eq!(ModuleFamily::Cwdm4Bidi.ocs_ports_per_module(), 2);
        assert_eq!(ModuleFamily::Cwdm8Bidi.ocs_ports_per_module(), 1);
    }

    #[test]
    fn superpod_ocs_counts_match_paper() {
        // §4.2.2: 96 with standard CWDM4 duplex, 48 with CWDM4 bidi,
        // 24 with CWDM8 bidi.
        assert_eq!(ModuleFamily::Cwdm4Duplex.superpod_ocs_count(), 96);
        assert_eq!(ModuleFamily::Cwdm4Bidi.superpod_ocs_count(), 48);
        assert_eq!(ModuleFamily::Cwdm8Bidi.superpod_ocs_count(), 24);
    }

    #[test]
    fn bandwidth_per_fiber_progression() {
        // CWDM4 engines: 4 λ × 53.125 G ≈ 212.5 G one-way per strand; the
        // bidi variant carries that both ways on ONE strand where duplex
        // needs two. CWDM8: 8 λ × 106.25 G ≈ 850 G on one strand.
        let d = ModuleFamily::Cwdm4Duplex.bandwidth_per_fiber().gbps();
        let b4 = ModuleFamily::Cwdm4Bidi.bandwidth_per_fiber().gbps();
        let b8 = ModuleFamily::Cwdm8Bidi.bandwidth_per_fiber().gbps();
        assert!((d - 212.5).abs() < 0.5);
        assert!((b4 - d).abs() < 0.5, "same one-way rate per strand");
        assert!((b8 / b4 - 4.0).abs() < 0.01, "2× lanes × 2× rate");
    }

    #[test]
    fn module_bandwidths_and_lanes() {
        // Every OSFP family is 8 electrical lanes wide.
        for f in ModuleFamily::ALL {
            assert_eq!(f.total_lanes(), 8, "{f:?}");
        }
        // 2 × 200G CWDM4 engines ≈ 425 G gross; 800G CWDM8 ≈ 850 G gross.
        assert!((ModuleFamily::Cwdm4Bidi.module_bandwidth().gbps() - 425.0).abs() < 1.0);
        assert!((ModuleFamily::Cwdm8Bidi.module_bandwidth().gbps() - 850.0).abs() < 1.0);
    }

    #[test]
    fn sampled_units_vary_but_stay_physical() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut floors = Vec::new();
        for _ in 0..500 {
            let t = Transceiver::sample(ModuleFamily::Cwdm4Bidi, &mut rng);
            assert!(
                (-1.0..=3.5).contains(&t.launch.dbm()),
                "launch {}",
                t.launch
            );
            assert!(t.residual_floor > 0.0 && t.residual_floor < 1e-4);
            floors.push(t.residual_floor);
        }
        let mean_log = floors.iter().map(|f| f.log10()).sum::<f64>() / floors.len() as f64;
        assert!(
            (-6.5..=-5.5).contains(&mean_log),
            "floor population center {mean_log}"
        );
    }

    #[test]
    fn grid_assignment() {
        assert_eq!(ModuleFamily::Cwdm4Bidi.grid(), WdmGrid::Cwdm4);
        assert_eq!(ModuleFamily::Cwdm8Bidi.grid(), WdmGrid::Cwdm8);
        assert!(ModuleFamily::Cwdm8Bidi.is_bidi());
        assert!(!ModuleFamily::Cwdm4Duplex.is_bidi());
    }
}
