//! Bridges transceiver-fleet measurements into the fleet observability
//! subsystem (`lightwave-telemetry`).
//!
//! Two production signals from the paper feed in here:
//!
//! - the Fig. 13 per-lane BER census (§4.1.2) — the distribution, KP4
//!   violations, and the ~2-orders-of-magnitude median margin;
//! - rate negotiation (§3.3.1): a link that cannot negotiate its top
//!   lane rate is quietly eating margin, so each fallback is surfaced as
//!   an event and a fleet alarm before the link goes dark.

use crate::dsp::DspConfig;
use crate::fleet::FleetCensus;
use lightwave_optics::modulation::LaneRate;
use lightwave_telemetry::{
    AlarmCause, AlarmRecord, CounterId, EventKind, FleetTelemetry, GaugeId, HistogramId,
    RateWindow, Severity,
};
use lightwave_units::Nanos;

/// Fleet-metric handles for one transceiver family, labeled
/// `{family=<name>}`.
#[derive(Debug, Clone)]
pub struct XcvrInstruments {
    lane_ber: HistogramId,
    lanes_sampled: CounterId,
    kp4_violations: CounterId,
    median_margin_orders: GaugeId,
    rate_fallbacks: CounterId,
    fallback_rate: RateWindow,
}

impl XcvrInstruments {
    /// Registers the per-family instruments in `sink`'s metrics registry.
    pub fn register(sink: &mut FleetTelemetry, family: &str) -> XcvrInstruments {
        let labels: &[(&str, &str)] = &[("family", family)];
        let m = &mut sink.metrics;
        let rate_fallbacks = m.counter("xcvr_rate_fallbacks_total", labels);
        XcvrInstruments {
            lane_ber: m.histogram("xcvr_lane_ber", labels),
            lanes_sampled: m.counter("xcvr_lanes_sampled_total", labels),
            kp4_violations: m.counter("xcvr_kp4_violations_total", labels),
            median_margin_orders: m.gauge("xcvr_median_margin_orders", labels),
            rate_fallbacks,
            fallback_rate: m.rate_window(
                rate_fallbacks,
                "xcvr_rate_fallbacks_per_sec",
                labels,
                Nanos::from_secs_f64(1.0),
            ),
        }
    }

    /// Records a BER census: every lane feeds the log-scale BER
    /// histogram (the Fig. 13 distribution), plus violation and margin
    /// aggregates.
    pub fn record_census(&mut self, sink: &mut FleetTelemetry, at: Nanos, census: &FleetCensus) {
        for s in &census.samples {
            sink.metrics.observe(self.lane_ber, at, s.ber.prob());
        }
        sink.metrics
            .inc(self.lanes_sampled, at, census.samples.len() as u64);
        sink.metrics
            .inc(self.kp4_violations, at, census.violations as u64);
        sink.metrics
            .set(self.median_margin_orders, at, census.median_margin_orders);
    }

    /// Runs rate negotiation for the link on `port` and records the
    /// outcome.
    ///
    /// Negotiating below the best rate the local DSP supports emits a
    /// [`EventKind::RateFallback`] event and a Warning fleet alarm;
    /// failing outright (no common rate — the link is dead) alarms
    /// Critical with `to_gbps = 0`. Returns the negotiated rate.
    pub fn record_negotiation(
        &mut self,
        sink: &mut FleetTelemetry,
        at: Nanos,
        port: u32,
        local: &DspConfig,
        peer: &DspConfig,
    ) -> Option<LaneRate> {
        let negotiated = local.negotiate_rate(peer);
        let best_local = LaneRate::ALL.into_iter().find(|&r| local.supports(r));
        let fell_back = match (negotiated, best_local) {
            (None, _) => true,
            (Some(got), Some(best)) => got != best,
            (Some(_), None) => false,
        };
        if fell_back {
            let to_gbps = negotiated.map_or(0, |r| r.bit_rate().gbps().round() as u32);
            sink.metrics.inc(self.rate_fallbacks, at, 1);
            sink.events
                .emit(at, "xcvr", EventKind::RateFallback { port, to_gbps });
            sink.ingest_alarm(AlarmRecord {
                at,
                severity: if negotiated.is_some() {
                    Severity::Warning
                } else {
                    Severity::Critical
                },
                // The census port index stands in for a switch id here:
                // link-scoped alarms correlate per endpoint.
                switch: port,
                cause: AlarmCause::RateFallback { port },
            });
        }
        self.fallback_rate.observe(&mut sink.metrics, at);
        negotiated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::fleet_census;
    use crate::module::ModuleFamily;

    #[test]
    fn census_populates_ber_distribution() {
        let mut sink = FleetTelemetry::new();
        let mut inst = XcvrInstruments::register(&mut sink, "cwdm4");
        let census = fleet_census(50, ModuleFamily::Cwdm4Bidi, 42);
        inst.record_census(&mut sink, Nanos(0), &census);
        let h = sink.metrics.histogram_value(inst.lane_ber);
        assert_eq!(h.count(), 200, "4 lanes × 50 ports");
        assert!(h.max().unwrap() < 2e-4, "all lanes inside KP4 spec");
        assert!(h.quantile(0.5).unwrap() < h.max().unwrap());
        assert_eq!(sink.metrics.counter_value(inst.kp4_violations), 0);
    }

    #[test]
    fn healthy_negotiation_is_silent() {
        let mut sink = FleetTelemetry::new();
        let mut inst = XcvrInstruments::register(&mut sink, "cwdm4");
        let dsp = DspConfig::ml_production();
        let rate = inst.record_negotiation(&mut sink, Nanos(1), 9, &dsp, &dsp);
        assert_eq!(rate, Some(LaneRate::Pam4_100));
        assert_eq!(sink.metrics.counter_value(inst.rate_fallbacks), 0);
        assert_eq!(sink.events.published(), 0);
    }

    #[test]
    fn fallback_emits_event_and_alarm() {
        let mut sink = FleetTelemetry::new();
        let mut inst = XcvrInstruments::register(&mut sink, "cwdm4");
        let new = DspConfig::ml_production();
        let old = DspConfig::standards_based();
        let rate = inst.record_negotiation(&mut sink, Nanos(1), 12, &new, &old);
        assert_eq!(rate, Some(LaneRate::Pam4_50));
        assert_eq!(sink.metrics.counter_value(inst.rate_fallbacks), 1);
        assert!(sink.events.recent().any(|e| matches!(
            e.kind,
            EventKind::RateFallback {
                port: 12,
                to_gbps: 53
            }
        )));
        assert_eq!(sink.alarms.pages(), 1);
    }

    #[test]
    fn fallback_rate_gauge_publishes_per_window() {
        let mut sink = FleetTelemetry::new();
        let mut inst = XcvrInstruments::register(&mut sink, "cwdm4");
        let new = DspConfig::ml_production();
        let old = DspConfig::standards_based();
        for port in 0..3 {
            inst.record_negotiation(&mut sink, Nanos::from_millis(port as u64), port, &new, &old);
        }
        // A negotiation after the 1 s window rolls publishes the rate of
        // the completed window (3 fallbacks / 1 s).
        inst.record_negotiation(&mut sink, Nanos::from_secs_f64(1.2), 9, &new, &new);
        assert_eq!(sink.metrics.gauge_value(inst.fallback_rate.gauge()), 3.0);
    }

    #[test]
    fn dead_link_alarms_critical() {
        let mut sink = FleetTelemetry::new();
        let mut inst = XcvrInstruments::register(&mut sink, "cwdm4");
        let only100 = DspConfig {
            supported_rates: [false, false, true],
            ..DspConfig::ml_production()
        };
        let only25 = DspConfig {
            supported_rates: [true, false, false],
            ..DspConfig::standards_based()
        };
        let rate = inst.record_negotiation(&mut sink, Nanos(1), 3, &only100, &only25);
        assert_eq!(rate, None);
        let inc = sink.alarms.open_incidents().next().unwrap();
        assert_eq!(inc.severity, Severity::Critical);
        assert!(sink.events.recent().any(|e| matches!(
            e.kind,
            EventKind::RateFallback {
                port: 3,
                to_gbps: 0
            }
        )));
    }
}
