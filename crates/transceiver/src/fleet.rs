//! Pod-scale per-lane BER census — the Fig. 13 experiment.
//!
//! §4.1.2: Fig. 13 samples per-lane BER across "about 6144 (16 ports per
//! cube face × 6 cube faces × 64 cubes) individual receiving ports", each
//! potentially paired with 64 partner cubes. "All of the values meet the
//! KP4 error-correcting code specification of 2×10⁻⁴ with approximately two
//! orders of magnitude of BER margin."
//!
//! The census samples a manufactured transceiver per port, a sampled fiber
//! plant per link, evaluates every lane through the full link model (OIM +
//! SFEC DSP), and reports the distribution.

use crate::bidilink::BidiLink;
use crate::dsp::DspConfig;
use crate::module::{ModuleFamily, Transceiver};
use lightwave_optics::components::{Component, ComponentKind};
use lightwave_optics::link::LinkBudget;
use lightwave_par::Pool;
use lightwave_units::Ber;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Receiving ports in a full 4096-TPU pod: 16 per face × 6 faces × 64 cubes.
pub const POD_RX_PORTS: usize = 16 * 6 * 64;

/// Ports per census shard: one cube face's worth of receiving ports. The
/// full pod census makes 384 shards — plenty of load-balancing granularity,
/// and each shard is heavy enough (16 full link evaluations) to amortize
/// dispatch.
pub const CENSUS_SHARD_PORTS: u64 = 16;

/// One sampled lane observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneSample {
    /// Receiving port index (0..6144).
    pub port: u32,
    /// Lane within the engine.
    pub lane: u8,
    /// Measured (modeled) BER with OIM and SFEC active.
    pub ber: Ber,
}

/// Census results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCensus {
    /// Every sampled lane.
    pub samples: Vec<LaneSample>,
    /// Ports whose worst lane violates the KP4 threshold.
    pub violations: usize,
    /// Median margin below threshold, in orders of magnitude.
    pub median_margin_orders: f64,
}

/// Samples and evaluates one receiving port's link, appending its lanes.
fn census_port(
    port: u32,
    family: ModuleFamily,
    dsp: DspConfig,
    rng: &mut StdRng,
    samples: &mut Vec<LaneSample>,
) -> bool {
    let tx = Transceiver::sample(family, rng);
    let rx = Transceiver::sample(family, rng);
    // Sample the fiber plant: intra-building runs of 20..150 m plus
    // component manufacturing variation.
    let fiber_km = rng.random_range(0.02..0.15);
    let components = vec![
        Component::sampled(ComponentKind::WdmMux, rng),
        Component::sampled(ComponentKind::CirculatorPass, rng),
        Component::sampled(ComponentKind::Connector, rng),
        Component::fiber_span(fiber_km / 2.0),
        Component::sampled(ComponentKind::OcsPass, rng),
        Component::fiber_span(fiber_km / 2.0),
        Component::sampled(ComponentKind::Connector, rng),
        Component::sampled(ComponentKind::CirculatorPass, rng),
        Component::sampled(ComponentKind::WdmDemux, rng),
    ];
    let budget = LinkBudget::new(tx.launch, components).expect("non-empty chain");
    let link = BidiLink {
        tx_unit: tx,
        rx_unit: rx,
        budget,
        dsp,
        fiber_km,
    };
    let lanes = link.evaluate();
    let violated = lanes.iter().any(|l| !l.raw_ber.meets(Ber::KP4_THRESHOLD));
    samples.extend(lanes.into_iter().map(|l| LaneSample {
        port,
        lane: l.lane,
        ber: l.raw_ber,
    }));
    violated
}

/// Runs the Fig. 13 census on the ambient [`Pool`] (honouring
/// `LIGHTWAVE_THREADS`).
///
/// * `ports` — number of receiving ports to sample (use [`POD_RX_PORTS`]
///   for the full pod; tests use fewer).
/// * `family` — transceiver family in service.
///
/// Ports shard in [`CENSUS_SHARD_PORTS`]-sized groups, each group sampling
/// its transceivers and fiber plant from a `(seed, shard_index)`-derived
/// stream; shard results concatenate in shard order, so the census —
/// sample order included — is identical at any thread count.
pub fn fleet_census(ports: usize, family: ModuleFamily, seed: u64) -> FleetCensus {
    fleet_census_with_pool(&Pool::from_env(), ports, family, seed)
}

/// [`fleet_census`] on an explicit pool.
pub fn fleet_census_with_pool(
    pool: &Pool,
    ports: usize,
    family: ModuleFamily,
    seed: u64,
) -> FleetCensus {
    assert!(ports > 0, "census needs at least one port");
    let dsp = DspConfig::ml_production();

    let ((samples, violations), _stats) = pool.run_shards(
        seed,
        ports as u64,
        CENSUS_SHARD_PORTS,
        |rng, shard| {
            let mut samples = Vec::new();
            let mut violations = 0usize;
            for port in shard.start..shard.start + shard.len {
                if census_port(port as u32, family, dsp, rng, &mut samples) {
                    violations += 1;
                }
            }
            (samples, violations)
        },
        |(mut samples, violations), (mut more, extra)| {
            samples.append(&mut more);
            (samples, violations + extra)
        },
    );

    let mut margins: Vec<f64> = samples
        .iter()
        .map(|s| s.ber.margin_orders(Ber::KP4_THRESHOLD))
        .collect();
    margins.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_margin_orders = margins[margins.len() / 2];
    FleetCensus {
        samples,
        violations,
        median_margin_orders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_port_count_matches_paper() {
        assert_eq!(POD_RX_PORTS, 6144);
    }

    #[test]
    fn census_meets_kp4_with_two_orders_margin() {
        // The headline Fig. 13 claim, on a 500-port sample.
        let census = fleet_census(500, ModuleFamily::Cwdm4Bidi, 42);
        assert_eq!(
            census.violations, 0,
            "all production lanes meet the KP4 spec"
        );
        assert!(
            (1.4..3.2).contains(&census.median_margin_orders),
            "median margin {:.2} orders; paper says ~2",
            census.median_margin_orders
        );
    }

    #[test]
    fn census_has_population_spread() {
        // Fig. 13 shows a band, not a line: per-unit floors differ.
        let census = fleet_census(300, ModuleFamily::Cwdm4Bidi, 7);
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for s in &census.samples {
            lo = lo.min(s.ber.prob());
            hi = hi.max(s.ber.prob());
        }
        assert!(
            hi / lo > 30.0,
            "expected >1.5 orders of population spread, got {lo:.2e}..{hi:.2e}"
        );
    }

    #[test]
    fn sample_counts() {
        let census = fleet_census(100, ModuleFamily::Cwdm4Bidi, 1);
        assert_eq!(census.samples.len(), 400, "4 lanes per CWDM4 engine");
        let c8 = fleet_census(50, ModuleFamily::Cwdm8Bidi, 1);
        assert_eq!(c8.samples.len(), 400, "8 lanes per CWDM8 engine");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fleet_census(50, ModuleFamily::Cwdm4Bidi, 5);
        let b = fleet_census(50, ModuleFamily::Cwdm4Bidi, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn census_thread_count_invariant() {
        // 130 ports: not divisible by the shard size, so the remainder
        // shard is exercised too.
        let run =
            |threads| fleet_census_with_pool(&Pool::new(threads), 130, ModuleFamily::Cwdm4Bidi, 42);
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
        assert_eq!(one.samples.len(), 130 * 4);
    }

    #[test]
    fn census_samples_stay_in_port_order() {
        let census = fleet_census(80, ModuleFamily::Cwdm4Bidi, 3);
        let ports: Vec<u32> = census.samples.iter().map(|s| s.port).collect();
        let mut sorted = ports.clone();
        sorted.sort_unstable();
        assert_eq!(ports, sorted, "shard-ordered merge keeps sample order");
    }
}
