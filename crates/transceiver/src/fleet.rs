//! Pod-scale per-lane BER census — the Fig. 13 experiment.
//!
//! §4.1.2: Fig. 13 samples per-lane BER across "about 6144 (16 ports per
//! cube face × 6 cube faces × 64 cubes) individual receiving ports", each
//! potentially paired with 64 partner cubes. "All of the values meet the
//! KP4 error-correcting code specification of 2×10⁻⁴ with approximately two
//! orders of magnitude of BER margin."
//!
//! The census samples a manufactured transceiver per port, a sampled fiber
//! plant per link, evaluates every lane through the full link model (OIM +
//! SFEC DSP), and reports the distribution.

use crate::bidilink::BidiLink;
use crate::dsp::DspConfig;
use crate::module::{ModuleFamily, Transceiver};
use lightwave_optics::components::{Component, ComponentKind};
use lightwave_optics::link::LinkBudget;
use lightwave_units::Ber;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Receiving ports in a full 4096-TPU pod: 16 per face × 6 faces × 64 cubes.
pub const POD_RX_PORTS: usize = 16 * 6 * 64;

/// One sampled lane observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneSample {
    /// Receiving port index (0..6144).
    pub port: u32,
    /// Lane within the engine.
    pub lane: u8,
    /// Measured (modeled) BER with OIM and SFEC active.
    pub ber: Ber,
}

/// Census results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCensus {
    /// Every sampled lane.
    pub samples: Vec<LaneSample>,
    /// Ports whose worst lane violates the KP4 threshold.
    pub violations: usize,
    /// Median margin below threshold, in orders of magnitude.
    pub median_margin_orders: f64,
}

/// Runs the Fig. 13 census.
///
/// * `ports` — number of receiving ports to sample (use [`POD_RX_PORTS`]
///   for the full pod; tests use fewer).
/// * `family` — transceiver family in service.
pub fn fleet_census(ports: usize, family: ModuleFamily, seed: u64) -> FleetCensus {
    assert!(ports > 0, "census needs at least one port");
    let mut rng = StdRng::seed_from_u64(seed);
    let dsp = DspConfig::ml_production();
    let mut samples = Vec::new();
    let mut violations = 0usize;

    for port in 0..ports {
        let tx = Transceiver::sample(family, &mut rng);
        let rx = Transceiver::sample(family, &mut rng);
        // Sample the fiber plant: intra-building runs of 20..150 m plus
        // component manufacturing variation.
        let fiber_km = rng.random_range(0.02..0.15);
        let components = vec![
            Component::sampled(ComponentKind::WdmMux, &mut rng),
            Component::sampled(ComponentKind::CirculatorPass, &mut rng),
            Component::sampled(ComponentKind::Connector, &mut rng),
            Component::fiber_span(fiber_km / 2.0),
            Component::sampled(ComponentKind::OcsPass, &mut rng),
            Component::fiber_span(fiber_km / 2.0),
            Component::sampled(ComponentKind::Connector, &mut rng),
            Component::sampled(ComponentKind::CirculatorPass, &mut rng),
            Component::sampled(ComponentKind::WdmDemux, &mut rng),
        ];
        let budget = LinkBudget::new(tx.launch, components).expect("non-empty chain");
        let link = BidiLink {
            tx_unit: tx,
            rx_unit: rx,
            budget,
            dsp,
            fiber_km,
        };
        let lanes = link.evaluate();
        if lanes.iter().any(|l| !l.raw_ber.meets(Ber::KP4_THRESHOLD)) {
            violations += 1;
        }
        for l in lanes {
            samples.push(LaneSample {
                port: port as u32,
                lane: l.lane,
                ber: l.raw_ber,
            });
        }
    }

    let mut margins: Vec<f64> = samples
        .iter()
        .map(|s| s.ber.margin_orders(Ber::KP4_THRESHOLD))
        .collect();
    margins.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_margin_orders = margins[margins.len() / 2];
    FleetCensus {
        samples,
        violations,
        median_margin_orders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_port_count_matches_paper() {
        assert_eq!(POD_RX_PORTS, 6144);
    }

    #[test]
    fn census_meets_kp4_with_two_orders_margin() {
        // The headline Fig. 13 claim, on a 500-port sample.
        let census = fleet_census(500, ModuleFamily::Cwdm4Bidi, 42);
        assert_eq!(
            census.violations, 0,
            "all production lanes meet the KP4 spec"
        );
        assert!(
            (1.4..3.2).contains(&census.median_margin_orders),
            "median margin {:.2} orders; paper says ~2",
            census.median_margin_orders
        );
    }

    #[test]
    fn census_has_population_spread() {
        // Fig. 13 shows a band, not a line: per-unit floors differ.
        let census = fleet_census(300, ModuleFamily::Cwdm4Bidi, 7);
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for s in &census.samples {
            lo = lo.min(s.ber.prob());
            hi = hi.max(s.ber.prob());
        }
        assert!(
            hi / lo > 30.0,
            "expected >1.5 orders of population spread, got {lo:.2e}..{hi:.2e}"
        );
    }

    #[test]
    fn sample_counts() {
        let census = fleet_census(100, ModuleFamily::Cwdm4Bidi, 1);
        assert_eq!(census.samples.len(), 400, "4 lanes per CWDM4 engine");
        let c8 = fleet_census(50, ModuleFamily::Cwdm8Bidi, 1);
        assert_eq!(c8.samples.len(), 400, "8 lanes per CWDM8 engine");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fleet_census(50, ModuleFamily::Cwdm4Bidi, 5);
        let b = fleet_census(50, ModuleFamily::Cwdm4Bidi, 5);
        assert_eq!(a, b);
    }
}
