//! Link bring-up state machine.
//!
//! When an OCS circuit is (re)configured, the transceivers at both ends
//! must re-acquire: the receiver CDR locks to the incoming signal, the DSP
//! adapts its equalizer, the FEC framer locks, and only then does the link
//! carry traffic. The paper's future-work section (§6) points out that
//! fast-switching fabrics are gated on "transceivers with fast
//! initialization times" — this module makes that cost explicit.

use crate::bidilink::BidiLink;
use crate::dsp::DspConfig;
use lightwave_optics::modulation::LaneRate;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};

/// Bring-up states, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BringupState {
    /// No light or circuit not yet configured.
    Down,
    /// Light present; clock-and-data recovery acquiring.
    CdrAcquire,
    /// CDR locked; equalizer adapting and rate negotiation settling.
    EqAdapt,
    /// FEC framer searching for codeword alignment.
    FecLock,
    /// Carrying traffic.
    Up,
    /// Light present but BER above threshold: stays out of service.
    Faulted,
}

/// Events produced during bring-up (for telemetry/debugging).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BringupEvent {
    /// When (relative to bring-up start).
    pub at: Nanos,
    /// The state entered.
    pub entered: BringupState,
}

/// The bring-up process for one link direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkBringup {
    /// State machine position.
    pub state: BringupState,
    /// Negotiated lane rate (after EqAdapt).
    pub negotiated_rate: Option<LaneRate>,
    /// Event log.
    pub events: Vec<BringupEvent>,
    elapsed: Nanos,
}

/// Time constants for each acquisition phase (typical DSP datasheet
/// values; dominated by equalizer adaptation).
const CDR_LOCK: Nanos = Nanos(200_000); // 200 µs
const EQ_ADAPT: Nanos = Nanos(5_000_000); // 5 ms
const FEC_LOCK: Nanos = Nanos(100_000); // 100 µs

impl Default for LinkBringup {
    fn default() -> Self {
        LinkBringup::new()
    }
}

impl LinkBringup {
    /// A fresh (down) bring-up machine.
    pub fn new() -> LinkBringup {
        LinkBringup {
            state: BringupState::Down,
            negotiated_rate: None,
            events: vec![],
            elapsed: Nanos(0),
        }
    }

    fn enter(&mut self, s: BringupState) {
        self.state = s;
        self.events.push(BringupEvent {
            at: self.elapsed,
            entered: s,
        });
    }

    /// Runs bring-up to completion over an evaluated link, negotiating the
    /// rate between the two end DSPs. Returns the total time to `Up`, or
    /// the time spent before landing in `Faulted`.
    pub fn run(&mut self, link: &BidiLink, local: &DspConfig, remote: &DspConfig) -> Nanos {
        self.elapsed = Nanos(0);
        self.enter(BringupState::CdrAcquire);
        self.elapsed += CDR_LOCK;

        self.enter(BringupState::EqAdapt);
        self.elapsed += EQ_ADAPT;
        match local.negotiate_rate(remote) {
            Some(rate) => self.negotiated_rate = Some(rate),
            None => {
                self.enter(BringupState::Faulted);
                return self.elapsed;
            }
        }

        self.enter(BringupState::FecLock);
        self.elapsed += FEC_LOCK;

        if link.is_healthy() {
            self.enter(BringupState::Up);
        } else {
            self.enter(BringupState::Faulted);
        }
        self.elapsed
    }

    /// Total bring-up time for a healthy link with these time constants —
    /// used by fabric planners to budget reconfiguration.
    pub fn nominal_duration() -> Nanos {
        CDR_LOCK + EQ_ADAPT + FEC_LOCK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{ModuleFamily, Transceiver};

    fn healthy_link() -> BidiLink {
        BidiLink::superpod(
            Transceiver::nominal(ModuleFamily::Cwdm4Bidi),
            Transceiver::nominal(ModuleFamily::Cwdm4Bidi),
            DspConfig::ml_production(),
            0.2,
        )
    }

    #[test]
    fn healthy_link_comes_up() {
        let link = healthy_link();
        let mut b = LinkBringup::new();
        let t = b.run(
            &link,
            &DspConfig::ml_production(),
            &DspConfig::ml_production(),
        );
        assert_eq!(b.state, BringupState::Up);
        assert_eq!(b.negotiated_rate, Some(LaneRate::Pam4_100));
        // Bring-up is ms-class — comparable to the OCS switch time, which
        // is why the two are pipelined in fabric reconfiguration.
        let ms = t.as_millis_f64();
        assert!((1.0..20.0).contains(&ms), "bring-up took {ms} ms");
    }

    #[test]
    fn event_log_orders_states() {
        let link = healthy_link();
        let mut b = LinkBringup::new();
        b.run(
            &link,
            &DspConfig::ml_production(),
            &DspConfig::ml_production(),
        );
        let states: Vec<_> = b.events.iter().map(|e| e.entered).collect();
        assert_eq!(
            states,
            vec![
                BringupState::CdrAcquire,
                BringupState::EqAdapt,
                BringupState::FecLock,
                BringupState::Up
            ]
        );
        // Timestamps are non-decreasing.
        assert!(b.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn incompatible_rates_fault_at_negotiation() {
        let link = healthy_link();
        let only100 = DspConfig {
            supported_rates: [false, false, true],
            ..DspConfig::ml_production()
        };
        let only25 = DspConfig {
            supported_rates: [true, false, false],
            ..DspConfig::standards_based()
        };
        let mut b = LinkBringup::new();
        b.run(&link, &only100, &only25);
        assert_eq!(b.state, BringupState::Faulted);
        assert_eq!(b.negotiated_rate, None);
    }

    #[test]
    fn unhealthy_link_faults_after_fec_lock() {
        let mut bad_rx = Transceiver::nominal(ModuleFamily::Cwdm4Bidi);
        bad_rx.residual_floor = 1e-2;
        let link = BidiLink::superpod(
            Transceiver::nominal(ModuleFamily::Cwdm4Bidi),
            bad_rx,
            DspConfig::ml_production(),
            0.2,
        );
        let mut b = LinkBringup::new();
        b.run(
            &link,
            &DspConfig::ml_production(),
            &DspConfig::ml_production(),
        );
        assert_eq!(b.state, BringupState::Faulted);
        assert!(
            b.negotiated_rate.is_some(),
            "negotiation succeeded before fault"
        );
    }

    #[test]
    fn cross_generation_bringup_negotiates_down() {
        let link = healthy_link();
        let mut b = LinkBringup::new();
        b.run(
            &link,
            &DspConfig::ml_production(),
            &DspConfig::standards_based(),
        );
        assert_eq!(b.state, BringupState::Up);
        assert_eq!(b.negotiated_rate, Some(LaneRate::Pam4_50));
    }
}
