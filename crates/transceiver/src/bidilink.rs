//! An end-to-end evaluated bidirectional link: two transceivers, a fiber
//! path through an OCS, and the DSP — producing per-lane BER and margin.

use crate::dsp::DspConfig;
use crate::module::Transceiver;
use lightwave_optics::ber::Pam4Receiver;
use lightwave_optics::dispersion::{dispersion_penalty, FiberDispersion};
use lightwave_optics::link::LinkBudget;
use lightwave_optics::modulation::LaneRate;
use lightwave_optics::mpi::MpiBudget;
use lightwave_units::{Ber, Db, Dbm};
use serde::{Deserialize, Serialize};

/// Evaluation of one wavelength lane of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneReport {
    /// Lane index.
    pub lane: u8,
    /// Received power at the detector.
    pub received: Dbm,
    /// Dispersion penalty applied for this lane.
    pub dispersion_penalty: Db,
    /// Pre-FEC BER including the unit's residual floor.
    pub raw_ber: Ber,
    /// Whether the lane meets the DSP's raw-BER threshold.
    pub healthy: bool,
    /// Margin in orders of magnitude below the threshold (positive =
    /// healthy).
    pub margin_orders: f64,
}

/// One direction of a bidirectional link, fully characterized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidiLink {
    /// Transmitting-end unit.
    pub tx_unit: Transceiver,
    /// Receiving-end unit.
    pub rx_unit: Transceiver,
    /// Optical path from Tx flange to Rx flange.
    pub budget: LinkBudget,
    /// DSP configuration at the receiver.
    pub dsp: DspConfig,
    /// Fiber length, km (for dispersion).
    pub fiber_km: f64,
}

impl BidiLink {
    /// A nominal superpod link at the given fiber length.
    pub fn superpod(tx: Transceiver, rx: Transceiver, dsp: DspConfig, fiber_km: f64) -> BidiLink {
        let budget = LinkBudget::superpod_nominal(tx.launch, fiber_km);
        BidiLink {
            tx_unit: tx,
            rx_unit: rx,
            budget,
            dsp,
            fiber_km,
        }
    }

    /// The MPI operating point of this link (bidi reflections).
    pub fn mpi_ratio(&self) -> f64 {
        if self.tx_unit.family.is_bidi() {
            MpiBudget::from_bidi_link(&self.budget).total_ratio
        } else {
            // Duplex links only see (much weaker) double-bounce MPI; fold
            // it in at a fixed low level.
            1e-5 * MpiBudget::from_bidi_link(&self.budget).total_ratio / 1e-3
        }
    }

    fn receiver(&self) -> Pam4Receiver {
        let mut rx = match self.rx_unit.family.lane_rate() {
            LaneRate::Pam4_100 => Pam4Receiver::cwdm8_100g(),
            _ => Pam4Receiver::cwdm4_50g(),
        };
        rx.implementation_penalty += Db(self.rx_unit.sensitivity_offset_db.max(0.0));
        rx
    }

    /// Evaluates every wavelength lane of one engine.
    pub fn evaluate(&self) -> Vec<LaneReport> {
        let rx = self.receiver();
        let grid = self.rx_unit.family.grid();
        let rate = self.rx_unit.family.lane_rate();
        let fiber = FiberDispersion::default();
        let mpi = self.mpi_ratio();
        let threshold = self.dsp.fec.raw_ber_threshold();
        grid.lanes()
            .iter()
            .map(|lane| {
                let disp =
                    dispersion_penalty(&fiber, lane, rate, self.fiber_km, self.dsp.equalizer);
                let received = self.budget.received_power() - disp;
                let gaussian = rx.ber(received, mpi, self.dsp.oim);
                // The unit's residual floor adds on top of Gaussian noise.
                let raw = Ber::new(gaussian.prob() + self.rx_unit.residual_floor);
                LaneReport {
                    lane: lane.index,
                    received,
                    dispersion_penalty: disp,
                    raw_ber: raw,
                    healthy: raw.meets(threshold),
                    margin_orders: raw.margin_orders(threshold),
                }
            })
            .collect()
    }

    /// The worst lane of the link.
    pub fn worst_lane(&self) -> LaneReport {
        self.evaluate()
            .into_iter()
            .max_by(|a, b| {
                a.raw_ber
                    .prob()
                    .partial_cmp(&b.raw_ber.prob())
                    .expect("BERs are finite")
            })
            .expect("grids have lanes")
    }

    /// Whether every lane is healthy.
    pub fn is_healthy(&self) -> bool {
        self.evaluate().iter().all(|l| l.healthy)
    }

    /// Evaluates the link at an explicit lane rate (overriding the module
    /// family's default). Lower rates halve the receiver's noise
    /// bandwidth and shrink dispersion penalties — the physical reason
    /// rate fallback rescues marginal links.
    pub fn evaluate_at_rate(&self, rate: LaneRate) -> Vec<LaneReport> {
        let mut rx = self.receiver();
        rx.rate = rate;
        let grid = self.rx_unit.family.grid();
        let fiber = FiberDispersion::default();
        let mpi = self.mpi_ratio();
        let threshold = self.dsp.fec.raw_ber_threshold();
        grid.lanes()
            .iter()
            .map(|lane| {
                let disp =
                    dispersion_penalty(&fiber, lane, rate, self.fiber_km, self.dsp.equalizer);
                let received = self.budget.received_power() - disp;
                let gaussian = rx.ber(received, mpi, self.dsp.oim);
                let raw = Ber::new(gaussian.prob() + self.rx_unit.residual_floor);
                LaneReport {
                    lane: lane.index,
                    received,
                    dispersion_penalty: disp,
                    raw_ber: raw,
                    healthy: raw.meets(threshold),
                    margin_orders: raw.margin_orders(threshold),
                }
            })
            .collect()
    }

    /// Rate fallback (§3.3.1 backward compatibility as resilience): finds
    /// the *fastest* rate both DSPs support at which every lane is
    /// healthy. A link too marginal for 100G PAM4 may be perfectly solid
    /// at 50G PAM4 (half the noise bandwidth) or 25G NRZ (half again,
    /// plus full-swing eyes) — degraded beats down.
    pub fn best_rate(&self, local: &DspConfig, remote: &DspConfig) -> Option<LaneRate> {
        LaneRate::ALL.into_iter().find(|&rate| {
            local.supports(rate)
                && remote.supports(rate)
                && self.evaluate_at_rate(rate).iter().all(|l| l.healthy)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleFamily;

    fn nominal_link(family: ModuleFamily, km: f64) -> BidiLink {
        BidiLink::superpod(
            Transceiver::nominal(family),
            Transceiver::nominal(family),
            DspConfig::ml_production(),
            km,
        )
    }

    #[test]
    fn nominal_superpod_link_is_healthy() {
        let link = nominal_link(ModuleFamily::Cwdm4Bidi, 0.2);
        assert!(link.is_healthy(), "worst lane: {:?}", link.worst_lane());
        // ~2 orders of margin, like the Fig. 13 fleet.
        let w = link.worst_lane();
        assert!(
            w.margin_orders > 1.0,
            "margin {:.2} orders too thin",
            w.margin_orders
        );
    }

    #[test]
    fn all_lanes_reported() {
        assert_eq!(
            nominal_link(ModuleFamily::Cwdm4Bidi, 0.2).evaluate().len(),
            4
        );
        assert_eq!(
            nominal_link(ModuleFamily::Cwdm8Bidi, 0.2).evaluate().len(),
            8
        );
    }

    #[test]
    fn outer_lanes_pay_dispersion() {
        let link = nominal_link(ModuleFamily::Cwdm8Bidi, 2.0);
        let lanes = link.evaluate();
        let inner = lanes[3].dispersion_penalty.db(); // 1301 nm, near λ0
        let outer = lanes[7].dispersion_penalty.db(); // 1341 nm
        assert!(outer > inner, "outer lane must pay more dispersion");
    }

    #[test]
    fn long_fiber_degrades_margin() {
        let short = nominal_link(ModuleFamily::Cwdm4Bidi, 0.2).worst_lane();
        let long = nominal_link(ModuleFamily::Cwdm4Bidi, 6.0).worst_lane();
        assert!(long.margin_orders < short.margin_orders);
    }

    #[test]
    fn weak_unit_can_fail_the_link() {
        let mut bad = Transceiver::nominal(ModuleFamily::Cwdm4Bidi);
        bad.residual_floor = 2e-2; // a lemon unit above even the SFEC threshold
        let link = BidiLink::superpod(
            Transceiver::nominal(ModuleFamily::Cwdm4Bidi),
            bad,
            DspConfig::ml_production(),
            0.2,
        );
        assert!(!link.is_healthy());
    }

    #[test]
    fn sfec_rescues_marginal_links() {
        // A lossy path that fails with KP4-only but passes with the
        // concatenated FEC — the Fig. 12 story at link level.
        let mut tx = Transceiver::nominal(ModuleFamily::Cwdm4Bidi);
        tx.launch = Dbm(tx.launch.dbm() - 7.2); // erode the margin
        let mk = |dsp: DspConfig| {
            BidiLink::superpod(tx, Transceiver::nominal(ModuleFamily::Cwdm4Bidi), dsp, 0.2)
        };
        let kp4_only = mk(DspConfig {
            fec: crate::dsp::FecMode::Kp4Only,
            ..DspConfig::ml_production()
        });
        let concat = mk(DspConfig::ml_production());
        assert!(
            !kp4_only.is_healthy() && concat.is_healthy(),
            "expected SFEC to rescue: kp4 worst {:?}, concat worst {:?}",
            kp4_only.worst_lane(),
            concat.worst_lane()
        );
    }

    #[test]
    fn rate_fallback_rescues_marginal_links() {
        // A link too lossy for 100G PAM4 falls back to 50G PAM4 (half the
        // noise bandwidth); a truly awful one drops to 25G NRZ.
        let dsp = DspConfig::ml_production();
        let mut weak = Transceiver::nominal(ModuleFamily::Cwdm8Bidi);
        weak.launch = lightwave_units::Dbm(weak.launch.dbm() - 9.5);
        let link = BidiLink::superpod(
            weak,
            Transceiver::nominal(ModuleFamily::Cwdm8Bidi),
            dsp,
            0.2,
        );
        assert!(
            !link.is_healthy(),
            "the 100G link must be marginal for this test"
        );
        let rate = link.best_rate(&dsp, &dsp);
        assert!(
            matches!(rate, Some(LaneRate::Pam4_50) | Some(LaneRate::Nrz25)),
            "fallback should find a workable slower rate: {rate:?}"
        );
    }

    #[test]
    fn healthy_links_stay_at_full_rate() {
        let dsp = DspConfig::ml_production();
        let link = nominal_link(ModuleFamily::Cwdm8Bidi, 0.2);
        assert_eq!(link.best_rate(&dsp, &dsp), Some(LaneRate::Pam4_100));
    }

    #[test]
    fn dead_links_have_no_rate() {
        let dsp = DspConfig::ml_production();
        let mut dead = Transceiver::nominal(ModuleFamily::Cwdm4Bidi);
        dead.residual_floor = 0.1; // beyond any FEC
        let link = BidiLink::superpod(
            Transceiver::nominal(ModuleFamily::Cwdm4Bidi),
            dead,
            dsp,
            0.2,
        );
        assert_eq!(link.best_rate(&dsp, &dsp), None);
    }

    #[test]
    fn lower_rates_have_more_margin() {
        let link = nominal_link(ModuleFamily::Cwdm8Bidi, 1.0);
        let m100 = link.evaluate_at_rate(LaneRate::Pam4_100)[7].margin_orders;
        let m50 = link.evaluate_at_rate(LaneRate::Pam4_50)[7].margin_orders;
        assert!(
            m50 >= m100,
            "half the baud cannot have less margin: {m50:.2} vs {m100:.2}"
        );
    }

    #[test]
    fn duplex_sees_less_mpi_than_bidi() {
        let bidi = nominal_link(ModuleFamily::Cwdm4Bidi, 0.2);
        let duplex = nominal_link(ModuleFamily::Cwdm4Duplex, 0.2);
        assert!(duplex.mpi_ratio() < bidi.mpi_ratio() / 10.0);
    }
}
