//! DSP ASIC configuration: OIM, FEC chain, equalizer, multi-rate support.
//!
//! §3.3.2: the DSP "not only provided a more robust, scalable solution by
//! relaxing the requirements on the optical and analog electrical
//! components, it also enabled new digital capabilities": the OIM notch
//! filter and the concatenated FEC. This module bundles those choices and
//! computes the *pre-FEC BER the optical link must deliver* — the single
//! number that connects the DSP to the link budget.

use lightwave_fec::concat::ConcatenatedCode;
use lightwave_optics::ber::OimConfig;
use lightwave_optics::dispersion::Equalizer;
use lightwave_optics::modulation::LaneRate;
use lightwave_units::{Ber, Nanos};
use serde::{Deserialize, Serialize};

/// FEC operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FecMode {
    /// Outer KP4 only — the standards-based configuration.
    Kp4Only,
    /// Concatenated: soft-decision inner code + KP4 (§3.3.2), evaluated
    /// with our open inner code's measured threshold.
    ConcatSfec {
        /// Raw-BER threshold the inner code cleans to the KP4 threshold.
        /// Obtain from `ConcatenatedCode::inner_threshold` (measured) or
        /// `analysis::paper_equivalent_inner_threshold` (production 1.6 dB
        /// calibration).
        inner_threshold: Ber,
    },
}

impl FecMode {
    /// Concatenated mode at the paper's production operating point.
    pub fn concat_paper_calibrated() -> FecMode {
        FecMode::ConcatSfec {
            inner_threshold: lightwave_fec::analysis::paper_equivalent_inner_threshold(),
        }
    }

    /// The pre-FEC (raw link) BER threshold this mode tolerates.
    pub fn raw_ber_threshold(self) -> Ber {
        match self {
            FecMode::Kp4Only => Ber::KP4_THRESHOLD,
            FecMode::ConcatSfec { inner_threshold } => inner_threshold,
        }
    }
}

/// Full DSP configuration of one transceiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DspConfig {
    /// Optical interference mitigation (notch filter), if enabled.
    pub oim: Option<OimConfig>,
    /// FEC chain.
    pub fec: FecMode,
    /// Receive equalizer.
    pub equalizer: Equalizer,
    /// Line rates this DSP can run (backward compatibility set).
    pub supported_rates: [bool; 3],
}

impl DspConfig {
    /// The production ML-superpod configuration: OIM on, concatenated FEC
    /// at the paper-calibrated operating point, MLSE.
    pub fn ml_production() -> DspConfig {
        DspConfig {
            oim: Some(OimConfig::default()),
            fec: FecMode::concat_paper_calibrated(),
            equalizer: Equalizer::Mlse,
            supported_rates: [true, true, true],
        }
    }

    /// A standards-based datacom configuration: no OIM, KP4 only, FFE.
    pub fn standards_based() -> DspConfig {
        DspConfig {
            oim: None,
            fec: FecMode::Kp4Only,
            equalizer: Equalizer::Ffe,
            supported_rates: [true, true, false],
        }
    }

    /// Whether a lane rate is supported.
    pub fn supports(&self, rate: LaneRate) -> bool {
        self.supported_rates[rate.generation() as usize]
    }

    /// Highest mutually-supported rate with a peer, if any — the §3.3.1
    /// backward-compatibility negotiation ("the mode of operation is
    /// software programmable").
    pub fn negotiate_rate(&self, peer: &DspConfig) -> Option<LaneRate> {
        LaneRate::ALL
            .into_iter()
            .find(|&r| self.supports(r) && peer.supports(r))
    }

    /// Added receive-path latency of the FEC chain at a line rate.
    pub fn fec_latency(&self, rate_gbps: f64) -> Nanos {
        let code = ConcatenatedCode::default();
        match self.fec {
            FecMode::Kp4Only => code.outer_latency(rate_gbps),
            FecMode::ConcatSfec { .. } => {
                code.outer_latency(rate_gbps) + code.inner_latency(rate_gbps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_config_tolerates_dirtier_links() {
        let ml = DspConfig::ml_production();
        let std = DspConfig::standards_based();
        assert!(
            ml.fec.raw_ber_threshold().prob() > std.fec.raw_ber_threshold().prob(),
            "concatenated FEC must raise the tolerable raw BER"
        );
        assert_eq!(std.fec.raw_ber_threshold(), Ber::KP4_THRESHOLD);
    }

    #[test]
    fn rate_negotiation_backward_compat() {
        let new = DspConfig::ml_production(); // supports all three rates
        let old = DspConfig::standards_based(); // only NRZ25 + PAM4-50
        assert_eq!(new.negotiate_rate(&old), Some(LaneRate::Pam4_50));
        assert_eq!(new.negotiate_rate(&new), Some(LaneRate::Pam4_100));
        // A module supporting nothing in common fails negotiation.
        let only100 = DspConfig {
            supported_rates: [false, false, true],
            ..DspConfig::ml_production()
        };
        let only25 = DspConfig {
            supported_rates: [true, false, false],
            ..DspConfig::standards_based()
        };
        assert_eq!(only100.negotiate_rate(&only25), None);
    }

    #[test]
    fn concat_adds_little_latency() {
        let ml = DspConfig::ml_production();
        let std = DspConfig::standards_based();
        let added = ml.fec_latency(200.0).saturating_sub(std.fec_latency(200.0));
        assert!(
            added.0 < 20,
            "inner code adds {added} — must stay under the 20 ns budget"
        );
    }

    #[test]
    fn paper_calibrated_threshold_value() {
        if let FecMode::ConcatSfec { inner_threshold } = FecMode::concat_paper_calibrated() {
            assert!((4e-3..1.2e-2).contains(&inner_threshold.prob()));
        } else {
            panic!("expected concat mode");
        }
    }
}
