//! Property tests for transceiver modules and bring-up.

use lightwave_optics::modulation::LaneRate;
use lightwave_transceiver::bidilink::BidiLink;
use lightwave_transceiver::bringup::{BringupState, LinkBringup};
use lightwave_transceiver::dsp::DspConfig;
use lightwave_transceiver::module::{ModuleFamily, Transceiver};
use proptest::prelude::*;
use rand::SeedableRng;

fn any_family() -> impl Strategy<Value = ModuleFamily> {
    prop_oneof![
        Just(ModuleFamily::Cwdm4Duplex),
        Just(ModuleFamily::Cwdm4Bidi),
        Just(ModuleFamily::Cwdm8Bidi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sampled_units_always_physical(family in any_family(), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Transceiver::sample(family, &mut rng);
        prop_assert!(t.launch.dbm() > -2.0 && t.launch.dbm() < 4.0);
        prop_assert!(t.residual_floor > 0.0 && t.residual_floor < 1e-4);
        prop_assert!(t.sensitivity_offset_db.abs() <= 1.5);
    }

    #[test]
    fn lane_reports_cover_the_grid(family in any_family(), km in 0.02f64..2.0) {
        let link = BidiLink::superpod(
            Transceiver::nominal(family),
            Transceiver::nominal(family),
            DspConfig::ml_production(),
            km,
        );
        let lanes = link.evaluate();
        prop_assert_eq!(lanes.len(), family.grid().lane_count());
        for l in &lanes {
            prop_assert!(l.raw_ber.prob() >= 0.0 && l.raw_ber.prob() <= 0.5);
            prop_assert!(l.dispersion_penalty.db() >= 0.0);
        }
    }

    #[test]
    fn longer_fiber_never_improves_the_worst_lane(
        family in any_family(),
        km in 0.05f64..3.0,
        extra in 0.1f64..4.0,
    ) {
        let mk = |k| {
            BidiLink::superpod(
                Transceiver::nominal(family),
                Transceiver::nominal(family),
                DspConfig::ml_production(),
                k,
            )
            .worst_lane()
        };
        prop_assert!(mk(km + extra).margin_orders <= mk(km).margin_orders + 1e-9);
    }

    #[test]
    fn negotiation_is_commutative_and_never_invents_rates(
        a0 in any::<bool>(), a1 in any::<bool>(), a2 in any::<bool>(),
        b0 in any::<bool>(), b1 in any::<bool>(), b2 in any::<bool>(),
    ) {
        let a = DspConfig {
            supported_rates: [a0, a1, a2],
            ..DspConfig::ml_production()
        };
        let b = DspConfig {
            supported_rates: [b0, b1, b2],
            ..DspConfig::ml_production()
        };
        let ab = a.negotiate_rate(&b);
        prop_assert_eq!(ab, b.negotiate_rate(&a), "negotiation must commute");
        if let Some(rate) = ab {
            prop_assert!(a.supports(rate) && b.supports(rate));
            // And it is the *highest* common rate.
            for r in LaneRate::ALL {
                if a.supports(r) && b.supports(r) {
                    prop_assert!(r.generation() <= rate.generation());
                }
            }
        } else {
            for r in LaneRate::ALL {
                prop_assert!(!(a.supports(r) && b.supports(r)));
            }
        }
    }

    #[test]
    fn bringup_terminates_in_up_or_faulted(km in 0.05f64..30.0, floor_exp in -8.0f64..-1.5) {
        let mut rx = Transceiver::nominal(ModuleFamily::Cwdm4Bidi);
        rx.residual_floor = 10f64.powf(floor_exp);
        let link = BidiLink::superpod(
            Transceiver::nominal(ModuleFamily::Cwdm4Bidi),
            rx,
            DspConfig::ml_production(),
            km,
        );
        let mut b = LinkBringup::new();
        let t = b.run(&link, &DspConfig::ml_production(), &DspConfig::ml_production());
        prop_assert!(matches!(b.state, BringupState::Up | BringupState::Faulted));
        prop_assert!(t.0 > 0);
        prop_assert_eq!(
            b.state == BringupState::Up,
            link.is_healthy(),
            "bring-up outcome must agree with link health"
        );
    }
}
