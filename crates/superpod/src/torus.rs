//! The chip-level 3D torus of a slice.
//!
//! A slice of shape `a×b×c` chips is a full 3D torus: chips within a cube
//! connect electrically (copper inside the rack, Appendix A), chips at
//! cube boundaries connect optically through the lightwave fabric, and the
//! wraparound of each dimension rides the same OCSes (opposing faces on
//! one switch). Routing is dimension-ordered, the standard deterministic
//! torus scheme ("the routing is deterministic and set by the slice
//! configuration", §4.2.1).

use crate::geometry::CUBE_EDGE;
use crate::slice::SliceShape;
use serde::{Deserialize, Serialize};

/// A chip coordinate in the slice torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Chip {
    /// Coordinates, each within the shape's chips per dimension.
    pub coords: [usize; 3],
}

/// Classification of a torus link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Copper within a rack (intra-cube).
    Electrical,
    /// Through the lightwave fabric (inter-cube or wraparound).
    Optical,
}

/// The torus of one slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    /// The slice shape.
    pub shape: SliceShape,
}

impl Torus {
    /// Wraps a shape.
    pub fn new(shape: SliceShape) -> Torus {
        Torus { shape }
    }

    /// Chip count.
    pub fn chips(&self) -> usize {
        self.shape.chip_count()
    }

    /// Validates a chip coordinate.
    pub fn contains(&self, chip: Chip) -> bool {
        chip.coords
            .iter()
            .zip(self.shape.chips.iter())
            .all(|(&c, &d)| c < d)
    }

    /// The neighbor of `chip` in direction `+1`/`-1` along `dim`, with
    /// torus wraparound.
    pub fn neighbor(&self, chip: Chip, dim: usize, forward: bool) -> Chip {
        assert!(dim < 3, "dimension out of range");
        assert!(self.contains(chip), "chip outside torus");
        let len = self.shape.chips[dim];
        let mut out = chip;
        out.coords[dim] = if forward {
            (chip.coords[dim] + 1) % len
        } else {
            (chip.coords[dim] + len - 1) % len
        };
        out
    }

    /// Whether the hop from `chip` forward along `dim` is electrical
    /// (stays within a cube) or optical (crosses a cube face, including
    /// the wraparound).
    pub fn link_kind(&self, chip: Chip, dim: usize) -> LinkKind {
        assert!(self.contains(chip), "chip outside torus");
        let len = self.shape.chips[dim];
        let next = (chip.coords[dim] + 1) % len;
        if chip.coords[dim] / CUBE_EDGE == next / CUBE_EDGE && next != 0 {
            LinkKind::Electrical
        } else if len <= CUBE_EDGE {
            // A 4-chip dimension lives inside one cube; its "wrap" hop
            // still needs the optical loopback circuit... unless the ICI
            // wiring closes it in copper. TPU v4 racks close 4-long rings
            // electrically, so a single-cube dimension is all-electrical.
            LinkKind::Electrical
        } else {
            LinkKind::Optical
        }
    }

    /// Torus (shortest-path) distance between two chips.
    pub fn distance(&self, a: Chip, b: Chip) -> usize {
        assert!(self.contains(a) && self.contains(b), "chips outside torus");
        (0..3)
            .map(|d| {
                let len = self.shape.chips[d];
                let diff = a.coords[d].abs_diff(b.coords[d]);
                diff.min(len - diff)
            })
            .sum()
    }

    /// Dimension-ordered route from `a` to `b`: the sequence of chips
    /// visited (excluding `a`, including `b`), taking the shorter way
    /// around each ring, X first, then Y, then Z.
    pub fn route(&self, a: Chip, b: Chip) -> Vec<Chip> {
        assert!(self.contains(a) && self.contains(b), "chips outside torus");
        let mut path = Vec::new();
        let mut cur = a;
        for d in 0..3 {
            let len = self.shape.chips[d];
            while cur.coords[d] != b.coords[d] {
                let fwd_dist = (b.coords[d] + len - cur.coords[d]) % len;
                let forward = fwd_dist <= len - fwd_dist;
                cur = self.neighbor(cur, d, forward);
                path.push(cur);
            }
        }
        path
    }

    /// Average hop distance over a deterministic sample of chip pairs —
    /// the latency proxy used when comparing slice shapes.
    pub fn mean_distance(&self) -> f64 {
        // Exact expected distance of a torus: per dimension, mean ring
        // distance of a ring of length L is L/4 (even L).
        self.shape
            .chips
            .iter()
            .map(|&l| {
                if l % 2 == 0 {
                    l as f64 / 4.0
                } else {
                    (l * l - 1) as f64 / (4.0 * l as f64)
                }
            })
            .sum()
    }

    /// The diameter (max shortest-path distance).
    pub fn diameter(&self) -> usize {
        self.shape.chips.iter().map(|&l| l / 2).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn torus(a: usize, b: usize, c: usize) -> Torus {
        Torus::new(SliceShape::new(a, b, c).expect("valid shape"))
    }

    #[test]
    fn neighbors_wrap() {
        let t = torus(8, 4, 4);
        let chip = Chip { coords: [7, 0, 0] };
        assert_eq!(t.neighbor(chip, 0, true).coords, [0, 0, 0]);
        assert_eq!(t.neighbor(chip, 0, false).coords, [6, 0, 0]);
        let origin = Chip { coords: [0, 0, 0] };
        assert_eq!(t.neighbor(origin, 1, false).coords, [0, 3, 0]);
    }

    #[test]
    fn intra_cube_links_are_electrical() {
        let t = torus(8, 8, 8);
        // 0→1 within a cube: electrical. 3→4 crosses the cube boundary.
        assert_eq!(
            t.link_kind(Chip { coords: [0, 0, 0] }, 0),
            LinkKind::Electrical
        );
        assert_eq!(
            t.link_kind(Chip { coords: [3, 0, 0] }, 0),
            LinkKind::Optical
        );
        // 7→0 is the wraparound: optical.
        assert_eq!(
            t.link_kind(Chip { coords: [7, 0, 0] }, 0),
            LinkKind::Optical
        );
    }

    #[test]
    fn single_cube_dimension_is_all_electrical() {
        let t = torus(4, 4, 16);
        for x in 0..4 {
            assert_eq!(
                t.link_kind(Chip { coords: [x, 0, 0] }, 0),
                LinkKind::Electrical
            );
        }
    }

    #[test]
    fn distance_uses_wraparound() {
        let t = torus(16, 16, 16);
        let a = Chip { coords: [0, 0, 0] };
        let b = Chip { coords: [15, 0, 0] };
        assert_eq!(t.distance(a, b), 1, "wrap is shorter than 15 hops");
        let c = Chip { coords: [8, 8, 8] };
        assert_eq!(t.distance(a, c), 24, "diameter-ish corner");
        assert_eq!(t.distance(a, a), 0);
    }

    #[test]
    fn route_is_shortest_and_dimension_ordered() {
        let t = torus(8, 8, 8);
        let a = Chip { coords: [1, 2, 3] };
        let b = Chip { coords: [6, 0, 3] };
        let path = t.route(a, b);
        assert_eq!(path.len(), t.distance(a, b));
        assert_eq!(*path.last().unwrap(), b);
        // X settles before Y moves.
        let first_y_move = path.iter().position(|c| c.coords[1] != a.coords[1]);
        if let Some(i) = first_y_move {
            assert!(path[i..].iter().all(|c| c.coords[0] == b.coords[0]));
        }
    }

    #[test]
    fn route_wraps_when_shorter() {
        let t = torus(16, 4, 4);
        let a = Chip { coords: [1, 0, 0] };
        let b = Chip { coords: [14, 0, 0] };
        let path = t.route(a, b);
        assert_eq!(path.len(), 3, "1→0→15→14 via wrap");
        assert_eq!(path[0].coords, [0, 0, 0]);
    }

    #[test]
    fn mean_distance_and_diameter() {
        let sym = torus(16, 16, 16);
        let skew = torus(4, 4, 256);
        assert_eq!(sym.diameter(), 24);
        assert_eq!(skew.diameter(), 132);
        assert!(sym.mean_distance() < skew.mean_distance());
        assert!((sym.mean_distance() - 12.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside torus")]
    fn out_of_range_chip_panics() {
        let t = torus(4, 4, 4);
        let _ = t.distance(Chip { coords: [4, 0, 0] }, Chip { coords: [0, 0, 0] });
    }
}
