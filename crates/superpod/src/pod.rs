//! The [`Superpod`] facade: slices composed and released on a live fabric.
//!
//! The pod owns the 48-OCS lightwave fabric and the cube inventory. Every
//! slice composition is a fabric *transaction*, committed incrementally:
//! the pod keeps a persistent desired state — each slice's circuit pairs
//! (computed once at compose) plus a per-dimension aggregate mapping
//! maintained by delta — so a transaction touches only the switches whose
//! mapping actually changes, and carries only the added/removed pairs.
//! Running slices never blink (§4.2.4: "slices for new model placements
//! ... can be dynamically scheduled without interfering with existing
//! models running on a different slice"), and compose/release cost is
//! O(slice), not O(pod).

use crate::geometry::{CubeId, Dim, LINKS_PER_FACE, POD_CUBES};
use crate::slice::Slice;
use crate::wiring::{ocs_for, ocs_role, SUPERPOD_OCS_COUNT};
use lightwave_fabric::{
    CommitError, CommitReport, FabricController, FabricDelta, FabricTarget, OcsFleet, OcsId,
};
use lightwave_ocs::{PortId, PortMapping, ReconfigReport};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of an active slice within the pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SliceHandle(pub u64);

/// Pod-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PodError {
    /// A requested cube is already part of an active slice.
    CubeBusy(CubeId),
    /// A requested cube is marked failed.
    CubeFailed(CubeId),
    /// No such slice.
    UnknownSlice(SliceHandle),
    /// The fabric rejected the transaction.
    Fabric(CommitError),
}

impl From<CommitError> for PodError {
    fn from(e: CommitError) -> Self {
        PodError::Fabric(e)
    }
}

impl std::fmt::Display for PodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PodError::CubeBusy(c) => write!(f, "cube {c} already in a slice"),
            PodError::CubeFailed(c) => write!(f, "cube {c} is failed"),
            PodError::UnknownSlice(h) => write!(f, "unknown slice {h:?}"),
            PodError::Fabric(e) => write!(f, "fabric: {e}"),
        }
    }
}

impl std::error::Error for PodError {}

/// The circuit pairs a slice pins per torus dimension. The wiring plan
/// puts identical mappings on all 16 switches of one dimension, so one
/// pair list per dimension fully describes a slice's optical footprint.
type DimPairs = [Vec<(PortId, PortId)>; 3];

/// A TPU v4 superpod: 64 cubes + 48 OCSes.
#[derive(Debug)]
pub struct Superpod {
    fabric: FabricController,
    slices: BTreeMap<SliceHandle, Slice>,
    /// Each slice's circuit pairs per dimension, computed once at compose
    /// from `required_hops()` and reused for release and shadow checks.
    slice_pairs: BTreeMap<SliceHandle, DimPairs>,
    /// The aggregate desired mapping per dimension (all 16 switches of a
    /// dimension carry the same mapping), maintained by delta — the
    /// persistent state that makes compose/release O(slice) and resync a
    /// cheap lookup.
    desired: [BTreeMap<PortId, PortId>; 3],
    /// Which slice owns each busy cube (O(log) busy checks and lookups).
    cube_owner: BTreeMap<CubeId, SliceHandle>,
    failed_cubes: BTreeSet<CubeId>,
    /// Switches that missed a committed transaction (down at the time)
    /// and still carry a stale mapping. Excluded from new transactions
    /// until [`Superpod::resync`] reconciles them — a down switch must
    /// degrade slices (§4.2.2), never block compose/release pod-wide.
    desynced: BTreeSet<OcsId>,
    next_handle: u64,
    /// When set, every successful transaction is cross-checked against a
    /// full rebuild of the desired state from the slice set (the
    /// pre-incremental algorithm) — see [`Superpod::set_shadow_check`].
    shadow_check: bool,
}

impl Superpod {
    /// Builds a pod with a deterministic fabric seed.
    pub fn new(seed: u64) -> Superpod {
        Superpod {
            fabric: FabricController::new(OcsFleet::build(SUPERPOD_OCS_COUNT, seed)),
            slices: BTreeMap::new(),
            slice_pairs: BTreeMap::new(),
            desired: Default::default(),
            cube_owner: BTreeMap::new(),
            failed_cubes: BTreeSet::new(),
            desynced: BTreeSet::new(),
            next_handle: 1,
            shadow_check: false,
        }
    }

    /// Enables (or disables) shadow cross-checking: after every successful
    /// compose/release/resync the incremental desired state is compared
    /// against a full rebuild from the slice set, and every up, in-sync
    /// switch's live mapping against the desired aggregate — panicking on
    /// any divergence. This deliberately re-pays the old O(pod) cost per
    /// transaction; it is the behavioral-equivalence oracle for the chaos
    /// corpus and the in-run baseline for the perf gate.
    pub fn set_shadow_check(&mut self, on: bool) {
        self.shadow_check = on;
    }

    /// Whether shadow cross-checking is enabled.
    pub fn shadow_check(&self) -> bool {
        self.shadow_check
    }

    /// The fabric controller (telemetry, health, time).
    pub fn fabric(&self) -> &FabricController {
        &self.fabric
    }

    /// Mutable fabric access (failure injection in tests/experiments).
    pub fn fabric_mut(&mut self) -> &mut FabricController {
        &mut self.fabric
    }

    /// Cubes not in any slice and not failed.
    pub fn idle_cubes(&self) -> Vec<CubeId> {
        (0..POD_CUBES as CubeId)
            .filter(|c| !self.cube_owner.contains_key(c) && !self.failed_cubes.contains(c))
            .collect()
    }

    /// Active slices.
    pub fn slices(&self) -> impl Iterator<Item = (SliceHandle, &Slice)> {
        self.slices.iter().map(|(&h, s)| (h, s))
    }

    /// Looks up a slice.
    pub fn slice(&self, h: SliceHandle) -> Option<&Slice> {
        self.slices.get(&h)
    }

    /// Marks a cube failed (host/server failure). Idle cubes simply leave
    /// the pool; cubes inside slices degrade their slice (the caller —
    /// scheduler or availability model — decides what to do about it).
    pub fn mark_cube_failed(&mut self, cube: CubeId) {
        self.failed_cubes.insert(cube);
    }

    /// Returns a repaired cube to service.
    pub fn mark_cube_repaired(&mut self, cube: CubeId) {
        self.failed_cubes.remove(&cube);
    }

    /// Whether a cube is failed.
    pub fn is_cube_failed(&self, cube: CubeId) -> bool {
        self.failed_cubes.contains(&cube)
    }

    /// The slice (if any) containing a cube.
    pub fn slice_of_cube(&self, cube: CubeId) -> Option<SliceHandle> {
        self.cube_owner.get(&cube).copied()
    }

    /// The circuit pairs a slice pins per dimension, sorted by north port
    /// for deterministic delta ordering. Single-cube dimensions contribute
    /// nothing (their rings are electrical).
    fn pairs_for(slice: &Slice) -> DimPairs {
        let mut pairs: DimPairs = Default::default();
        for hop in slice.required_hops() {
            if let Some(p) = hop.pair() {
                pairs[hop.dim.index()].push(p);
            }
        }
        for list in &mut pairs {
            list.sort_unstable();
        }
        pairs
    }

    /// The incremental transaction establishing (`add = true`) or tearing
    /// down (`add = false`) one slice's pairs: only switches of dimensions
    /// the slice actually spans are touched, and each carries only the
    /// slice's own pairs. Down and desynced switches are skipped (returned
    /// separately) so one failed chassis cannot veto pod-wide transactions.
    fn delta_for(&self, pairs: &DimPairs, add: bool) -> (FabricDelta, BTreeSet<OcsId>) {
        let mut delta = FabricDelta::new();
        let mut skipped = BTreeSet::new();
        for dim in Dim::ALL {
            let list = &pairs[dim.index()];
            if list.is_empty() {
                continue;
            }
            for k in 0..LINKS_PER_FACE {
                let ocs = ocs_for(dim, k);
                let up = self
                    .fabric
                    .fleet
                    .get(ocs)
                    .map(|s| s.is_up())
                    .unwrap_or(false);
                if !up || self.desynced.contains(&ocs) {
                    skipped.insert(ocs);
                    continue;
                }
                let d = delta.entry(ocs);
                if add {
                    d.add.extend_from_slice(list);
                } else {
                    d.remove.extend(list.iter().map(|&(n, _)| n));
                }
            }
        }
        (delta, skipped)
    }

    /// Shadow cross-check (see [`Superpod::set_shadow_check`]): runs the
    /// pre-incremental algorithm for real. The desired state is rebuilt
    /// from scratch from the slice set and checked against the
    /// delta-maintained aggregate; then the full per-switch target is
    /// committed through the fabric exactly the way the old control plane
    /// committed every transaction — and that commit must be a no-op,
    /// proving every up, in-sync switch already carries byte-identically
    /// what a full rebuild would have programmed.
    fn shadow_verify(&mut self) {
        if !self.shadow_check {
            return;
        }
        let mut reference: [BTreeMap<PortId, PortId>; 3] = Default::default();
        for slice in self.slices.values() {
            for hop in slice.required_hops() {
                if let Some((n, s)) = hop.pair() {
                    let prev = reference[hop.dim.index()].insert(n, s);
                    assert!(prev.is_none(), "disjoint slices produce disjoint ports");
                }
            }
        }
        assert_eq!(
            reference, self.desired,
            "incremental desired state diverged from full rebuild"
        );
        // The old full-target path: one complete mapping per up, in-sync
        // switch (down/desynced switches were skipped there too).
        let mut target = FabricTarget::new();
        for ocs in 0..SUPERPOD_OCS_COUNT as OcsId {
            let Some(sw) = self.fabric.fleet.get(ocs) else {
                continue;
            };
            if !sw.is_up() || self.desynced.contains(&ocs) {
                continue;
            }
            let (dim, _) = ocs_role(ocs);
            let mapping =
                PortMapping::from_pairs(reference[dim.index()].iter().map(|(&n, &s)| (n, s)))
                    .expect("desired state is bijective by construction");
            target.set(ocs, mapping);
        }
        let report = self
            .fabric
            .commit(&target)
            .expect("full-rebuild commit of the live desired state succeeds");
        assert_eq!(
            (report.added, report.removed),
            (0, 0),
            "live mappings diverged from the full-rebuild desired state"
        );
    }

    /// Switches carrying a stale mapping (they were down during one or
    /// more committed transactions). [`Superpod::resync`] reconciles.
    pub fn desynced(&self) -> &BTreeSet<OcsId> {
        &self.desynced
    }

    /// Anti-entropy: re-applies the desired state to every desynced
    /// switch that is back up, one single-switch transaction each so a
    /// still-broken switch cannot hold the others hostage. Successfully
    /// reconciled switches rejoin future transactions; failures stay
    /// desynced and are reported.
    pub fn resync(&mut self) -> Vec<(OcsId, Result<ReconfigReport, CommitError>)> {
        let mut out = Vec::new();
        if self.desynced.is_empty() {
            return out;
        }
        // Collect only the revived switches (no clone of the whole set).
        let ready: Vec<OcsId> = self
            .desynced
            .iter()
            .copied()
            .filter(|&ocs| {
                self.fabric
                    .fleet
                    .get(ocs)
                    .map(|s| s.is_up())
                    .unwrap_or(false)
            })
            .collect();
        for ocs in ready {
            // The full desired mapping is a cheap lookup in the persistent
            // per-dimension aggregate — no rebuild from the slice set.
            let (dim, _) = ocs_role(ocs);
            let mapping =
                PortMapping::from_pairs(self.desired[dim.index()].iter().map(|(&n, &s)| (n, s)))
                    .expect("desired state is bijective by construction");
            let mut target = FabricTarget::new();
            target.set(ocs, mapping);
            match self.fabric.commit(&target) {
                Ok(mut report) => {
                    self.desynced.remove(&ocs);
                    let per = report
                        .per_switch
                        .remove(&ocs)
                        .expect("single-switch commit reports its switch");
                    out.push((ocs, Ok(per)));
                }
                Err(e) => out.push((ocs, Err(e))),
            }
        }
        self.shadow_verify();
        out
    }

    /// Composes a slice: validates cube availability, commits the
    /// incremental fabric transaction (only the switches whose mapping
    /// changes, only this slice's pairs), and returns the handle plus the
    /// commit report. The fabric validates the whole delta before applying
    /// and the pod mutates nothing until the commit succeeds, so on error
    /// nothing has been applied anywhere.
    pub fn compose(&mut self, slice: Slice) -> Result<(SliceHandle, CommitReport), PodError> {
        for &c in &slice.cubes {
            if self.cube_owner.contains_key(&c) {
                return Err(PodError::CubeBusy(c));
            }
            if self.failed_cubes.contains(&c) {
                return Err(PodError::CubeFailed(c));
            }
        }
        let pairs = Self::pairs_for(&slice);
        let (delta, skipped) = self.delta_for(&pairs, true);
        let report = self.fabric.commit_delta(&delta)?;
        // Success: mutate the persistent state in place.
        let handle = SliceHandle(self.next_handle);
        self.next_handle += 1;
        for &c in &slice.cubes {
            self.cube_owner.insert(c, handle);
        }
        for (dim, list) in self.desired.iter_mut().zip(&pairs) {
            for &(n, s) in list {
                let prev = dim.insert(n, s);
                debug_assert!(prev.is_none(), "disjoint slices produce disjoint ports");
            }
        }
        self.slices.insert(handle, slice);
        self.slice_pairs.insert(handle, pairs);
        self.desynced.extend(skipped);
        self.shadow_verify();
        Ok((handle, report))
    }

    /// Releases a slice, freeing its cubes and tearing down its circuits —
    /// an incremental transaction carrying only this slice's pairs as
    /// removals. On error nothing has been applied.
    pub fn release(&mut self, h: SliceHandle) -> Result<CommitReport, PodError> {
        if !self.slices.contains_key(&h) {
            return Err(PodError::UnknownSlice(h));
        }
        let pairs = self.slice_pairs.get(&h).expect("every slice has pairs");
        let (delta, skipped) = self.delta_for(pairs, false);
        let report = self.fabric.commit_delta(&delta)?;
        let slice = self.slices.remove(&h).expect("checked");
        let pairs = self.slice_pairs.remove(&h).expect("checked");
        for &c in &slice.cubes {
            self.cube_owner.remove(&c);
        }
        for (dim, list) in self.desired.iter_mut().zip(&pairs) {
            for &(n, _) in list {
                dim.remove(&n);
            }
        }
        self.desynced.extend(skipped);
        self.shadow_verify();
        Ok(report)
    }

    /// Advances fabric time.
    pub fn advance(&mut self, dt: Nanos) {
        self.fabric.advance(dt);
    }

    /// True when every circuit in the fabric is aligned and carrying.
    pub fn settled(&self) -> bool {
        self.fabric.settled()
    }

    /// Per-slice impact of OCS outages (§4.2.2: "a single failure in the
    /// set of OCSes that provide full connectivity between the elemental
    /// cubes will degrade the performance of any slice composed of more
    /// than one elemental cube").
    ///
    /// Each inter-cube hop is 16 parallel circuits, one per OCS of its
    /// dimension; a down switch removes 1/16 of the optical bandwidth of
    /// every hop in its dimension. Single-cube-dimension rings are
    /// electrical and immune.
    pub fn degradation_report(&self) -> Vec<SliceDegradation> {
        use crate::geometry::LINKS_PER_FACE;
        let down: Vec<OcsId> = self
            .fabric
            .fleet
            .iter()
            .filter(|(_, ocs)| !ocs.is_up())
            .map(|(&id, _)| id)
            .collect();
        self.slices
            .iter()
            .map(|(&handle, slice)| {
                let [p, q, r] = slice.shape.cube_grid();
                let grid = [p, q, r];
                // Fraction of each dimension's inter-cube circuits lost.
                let mut lost_per_dim = [0.0f64; 3];
                for &ocs in &down {
                    let (dim, _) = crate::wiring::ocs_role(ocs);
                    if grid[dim.index()] > 1 {
                        lost_per_dim[dim.index()] += 1.0 / LINKS_PER_FACE as f64;
                    }
                }
                let worst = lost_per_dim.iter().fold(0.0f64, |a, &b| a.max(b));
                SliceDegradation {
                    handle,
                    optical_loss_per_dim: lost_per_dim,
                    worst_dim_loss: worst,
                    affected: worst > 0.0,
                }
            })
            .collect()
    }
}

/// Impact of OCS outages on one slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceDegradation {
    /// The slice.
    pub handle: SliceHandle,
    /// Fraction of inter-cube optical bandwidth lost per torus dimension.
    pub optical_loss_per_dim: [f64; 3],
    /// The worst dimension's loss — the collective slowdown bound, since
    /// synchronous rings run at the speed of their thinnest hop.
    pub worst_dim_loss: f64,
    /// Whether the slice is affected at all.
    pub affected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::SliceShape;

    fn slice_of(cubes: Vec<CubeId>, a: usize, b: usize, c: usize) -> Slice {
        Slice::new(SliceShape::new(a, b, c).unwrap(), cubes).unwrap()
    }

    #[test]
    fn compose_full_pod() {
        let mut pod = Superpod::new(1);
        let slice = slice_of((0..64).collect(), 16, 16, 16);
        let (h, report) = pod.compose(slice).unwrap();
        // 64 cubes × 3 dims × 16 circuits/hop = 3072 circuits.
        assert_eq!(report.added, 3072);
        pod.advance(Nanos::from_millis(300));
        assert!(pod.settled());
        assert!(pod.idle_cubes().is_empty());
        assert_eq!(pod.slice(h).unwrap().chip_count(), 4096);
    }

    #[test]
    fn concurrent_slices_are_isolated() {
        let mut pod = Superpod::new(2);
        let (h1, _) = pod.compose(slice_of(vec![0, 1], 8, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        // Composing a second slice must not disturb the first: every
        // circuit of slice 1 shows up as "untouched" in the commit.
        let (h2, report) = pod
            .compose(slice_of(vec![10, 20, 30, 40], 16, 4, 4))
            .unwrap();
        // Slice 1 spans only X (8×4×4 = a 2-cube X ring; Y and Z rings are
        // electrical): 2 pairs × 16 X switches = 32 circuits, all preserved
        // on the switches slice 2 touches.
        assert_eq!(report.untouched, 32);
        assert_eq!(report.removed, 0);
        assert_ne!(h1, h2);
        assert_eq!(pod.idle_cubes().len(), 64 - 6);
    }

    #[test]
    fn cube_conflicts_rejected() {
        let mut pod = Superpod::new(3);
        pod.compose(slice_of(vec![5, 6], 8, 4, 4)).unwrap();
        assert_eq!(
            pod.compose(slice_of(vec![6, 7], 8, 4, 4)).unwrap_err(),
            PodError::CubeBusy(6)
        );
        pod.mark_cube_failed(9);
        assert_eq!(
            pod.compose(slice_of(vec![9], 4, 4, 4)).unwrap_err(),
            PodError::CubeFailed(9)
        );
    }

    #[test]
    fn release_frees_cubes_without_touching_others() {
        let mut pod = Superpod::new(4);
        let (h1, _) = pod.compose(slice_of(vec![0, 1], 8, 4, 4)).unwrap();
        let (h2, _) = pod.compose(slice_of(vec![2, 3], 8, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        let report = pod.release(h1).unwrap();
        // Each 8×4×4 slice pins 2 pairs × 16 X switches = 32 circuits.
        assert_eq!(report.removed, 32);
        assert_eq!(report.untouched, 32, "slice 2 untouched");
        assert_eq!(report.added, 0);
        assert!(pod.idle_cubes().contains(&0));
        assert!(pod.slice(h2).is_some());
        assert_eq!(pod.release(h1).unwrap_err(), PodError::UnknownSlice(h1));
    }

    #[test]
    fn swap_failed_cube_reconfigures_around_it() {
        // The §4.2.2 availability story: a reconfigurable fabric swaps a
        // bad cube for a spare; the slice is re-composed on good cubes.
        let mut pod = Superpod::new(5);
        let (h, _) = pod.compose(slice_of(vec![0, 1, 2, 3], 16, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        // Cube 2 dies.
        pod.mark_cube_failed(2);
        let old = pod.slice(h).unwrap().clone();
        pod.release(h).unwrap();
        let mut cubes = old.cubes.clone();
        let spare = pod
            .idle_cubes()
            .into_iter()
            .find(|c| !cubes.contains(c))
            .unwrap();
        for c in &mut cubes {
            if *c == 2 {
                *c = spare;
            }
        }
        let (h2, _) = pod.compose(Slice::new(old.shape, cubes).unwrap()).unwrap();
        pod.advance(Nanos::from_millis(300));
        assert!(pod.settled());
        assert_eq!(pod.slice(h2).unwrap().chip_count(), 256);
    }

    #[test]
    fn slice_of_cube_lookup() {
        let mut pod = Superpod::new(6);
        let (h, _) = pod.compose(slice_of(vec![11, 13], 8, 4, 4)).unwrap();
        assert_eq!(pod.slice_of_cube(11), Some(h));
        assert_eq!(pod.slice_of_cube(12), None);
    }

    #[test]
    fn ocs_failure_degrades_multi_cube_slices_only() {
        // §4.2.2 verbatim: single-cube slices are immune; everything else
        // loses 1/16 of the failed dimension's optical bandwidth.
        let mut pod = Superpod::new(8);
        let (h_multi, _) = pod.compose(slice_of(vec![0, 1, 2, 3], 16, 4, 4)).unwrap();
        let (h_single, _) = pod.compose(slice_of(vec![9], 4, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(400));
        // Healthy fabric: nobody degraded.
        assert!(pod.degradation_report().iter().all(|d| !d.affected));
        // Kill OCS 0 (dimension X, link 0).
        {
            let ocs = pod.fabric_mut().fleet.get_mut(0).unwrap();
            ocs.fail_fru(0);
            ocs.fail_fru(1);
        }
        let report = pod.degradation_report();
        let multi = report.iter().find(|d| d.handle == h_multi).unwrap();
        let single = report.iter().find(|d| d.handle == h_single).unwrap();
        assert!(multi.affected);
        assert!((multi.worst_dim_loss - 1.0 / 16.0).abs() < 1e-12);
        assert_eq!(multi.optical_loss_per_dim[1], 0.0, "Y dimension untouched");
        assert!(!single.affected, "single-cube slices ride electrical rings");
        // A second X-dimension OCS failure compounds.
        {
            let ocs = pod.fabric_mut().fleet.get_mut(1).unwrap();
            ocs.fail_fru(0);
            ocs.fail_fru(1);
        }
        let report = pod.degradation_report();
        let multi = report.iter().find(|d| d.handle == h_multi).unwrap();
        assert!((multi.worst_dim_loss - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn down_switch_never_blocks_transactions_and_resyncs() {
        let mut pod = Superpod::new(9);
        let (h1, _) = pod.compose(slice_of(vec![0, 1], 8, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        // OCS 5 loses its control CPU: chassis down.
        pod.fabric_mut().fleet.get_mut(5).unwrap().fail_fru(14);
        // Transactions proceed around the dark switch: compose a second
        // slice and release the first (the pre-fix control plane rejected
        // both with ChassisDown, leaking the released slice's capacity).
        let (h2, report) = pod.compose(slice_of(vec![2, 3], 8, 4, 4)).unwrap();
        assert!(!report.per_switch.contains_key(&5), "down switch skipped");
        pod.release(h1).unwrap();
        assert!(pod.desynced().contains(&5), "missed transactions recorded");
        // Repair + anti-entropy: switch 5 converges on the live state.
        pod.fabric_mut().fleet.get_mut(5).unwrap().replace_fru(14);
        let reports = pod.resync();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].1.is_ok());
        assert!(pod.desynced().is_empty());
        pod.advance(Nanos::from_millis(300));
        // Switch 5 (dimension X) now carries exactly slice 2's X-ring.
        let mapping = pod.fabric().fleet.get(5).unwrap().mapping();
        let pairs: Vec<_> = mapping.pairs().collect();
        assert_eq!(pairs, vec![(2, 3), (3, 2)]);
        assert!(pod.slice(h2).is_some());
    }

    #[test]
    fn single_cube_compose_touches_zero_switches() {
        // All three rings of a single-cube slice are electrical: composing
        // one on a loaded pod is a zero-switch transaction, and so is
        // releasing it.
        let mut pod = Superpod::new(11);
        pod.set_shadow_check(true);
        pod.compose(slice_of(vec![0, 1, 2, 3], 16, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        let before = pod.fabric().fleet.health().circuits;
        let (h, report) = pod.compose(slice_of(vec![9], 4, 4, 4)).unwrap();
        assert!(report.per_switch.is_empty(), "no switch touched");
        assert_eq!(report.added + report.removed + report.untouched, 0);
        assert_eq!(report.traffic_ready_at, pod.fabric().now(), "instant");
        assert_eq!(pod.fabric().fleet.health().circuits, before);
        let report = pod.release(h).unwrap();
        assert!(report.per_switch.is_empty());
        assert_eq!(pod.fabric().fleet.health().circuits, before);
    }

    #[test]
    fn failed_compose_applies_nothing() {
        // The in-place transaction keeps the on-error-nothing-applied
        // guarantee the old clone-the-world pattern provided.
        let mut pod = Superpod::new(12);
        pod.set_shadow_check(true);
        let (h1, _) = pod.compose(slice_of(vec![0, 1], 8, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        let circuits_before = pod.fabric().fleet.health().circuits;
        // HV driver 0 on X-switch 3 degrades ports 0..34 — the new slice's
        // pairs (2,3)/(3,2) land on degraded ports there, so validation
        // rejects the whole transaction.
        pod.fabric_mut().fleet.get_mut(3).unwrap().fail_fru(6);
        let err = pod.compose(slice_of(vec![2, 3], 8, 4, 4)).unwrap_err();
        assert!(
            matches!(err, PodError::Fabric(_)),
            "fabric rejected: {err:?}"
        );
        // Nothing changed anywhere: no cubes claimed, no circuits touched,
        // no desired-state drift (shadow check would catch it), handle not
        // burned on other switches.
        assert!(pod.idle_cubes().contains(&2) && pod.idle_cubes().contains(&3));
        assert_eq!(pod.slices().count(), 1);
        assert_eq!(pod.fabric().fleet.health().circuits, circuits_before);
        assert!(pod.desynced().is_empty());
        assert_eq!(pod.slice_of_cube(2), None);
        // Slice 1 still fully alive.
        assert!(pod.slice(h1).is_some());
        pod.release(h1).unwrap();
    }

    #[test]
    fn fabric_power_scales_with_circuits() {
        let mut pod = Superpod::new(7);
        let idle_power = pod.fabric().fleet.health().power_w;
        pod.compose(slice_of((0..64).collect(), 16, 16, 16))
            .unwrap();
        let loaded = pod.fabric().fleet.health().power_w;
        assert!(loaded > idle_power);
        // 48 chassis stay within rating: < 48 × 108 W.
        assert!(loaded < 48.0 * 108.0);
    }
}
