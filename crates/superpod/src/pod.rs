//! The [`Superpod`] facade: slices composed and released on a live fabric.
//!
//! The pod owns the 48-OCS lightwave fabric and the cube inventory. Every
//! slice composition is a fabric *transaction*: the pod recomputes the
//! desired port mapping of all 48 switches from the union of active
//! slices and commits it — the controller's minimal-delta application
//! guarantees running slices never blink (§4.2.4: "slices for new model
//! placements ... can be dynamically scheduled without interfering with
//! existing models running on a different slice").

use crate::geometry::{CubeId, POD_CUBES};
use crate::slice::Slice;
use crate::wiring::{CubeHop, SUPERPOD_OCS_COUNT};
use lightwave_fabric::{
    CommitError, CommitReport, FabricController, FabricTarget, OcsFleet, OcsId,
};
use lightwave_ocs::{PortMapping, ReconfigReport};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of an active slice within the pod.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SliceHandle(pub u64);

/// Pod-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PodError {
    /// A requested cube is already part of an active slice.
    CubeBusy(CubeId),
    /// A requested cube is marked failed.
    CubeFailed(CubeId),
    /// No such slice.
    UnknownSlice(SliceHandle),
    /// The fabric rejected the transaction.
    Fabric(CommitError),
}

impl From<CommitError> for PodError {
    fn from(e: CommitError) -> Self {
        PodError::Fabric(e)
    }
}

impl std::fmt::Display for PodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PodError::CubeBusy(c) => write!(f, "cube {c} already in a slice"),
            PodError::CubeFailed(c) => write!(f, "cube {c} is failed"),
            PodError::UnknownSlice(h) => write!(f, "unknown slice {h:?}"),
            PodError::Fabric(e) => write!(f, "fabric: {e}"),
        }
    }
}

impl std::error::Error for PodError {}

/// A TPU v4 superpod: 64 cubes + 48 OCSes.
#[derive(Debug)]
pub struct Superpod {
    fabric: FabricController,
    slices: BTreeMap<SliceHandle, Slice>,
    failed_cubes: BTreeSet<CubeId>,
    /// Switches that missed a committed transaction (down at the time)
    /// and still carry a stale mapping. Excluded from new transactions
    /// until [`Superpod::resync`] reconciles them — a down switch must
    /// degrade slices (§4.2.2), never block compose/release pod-wide.
    desynced: BTreeSet<OcsId>,
    next_handle: u64,
}

impl Superpod {
    /// Builds a pod with a deterministic fabric seed.
    pub fn new(seed: u64) -> Superpod {
        Superpod {
            fabric: FabricController::new(OcsFleet::build(SUPERPOD_OCS_COUNT, seed)),
            slices: BTreeMap::new(),
            failed_cubes: BTreeSet::new(),
            desynced: BTreeSet::new(),
            next_handle: 1,
        }
    }

    /// The fabric controller (telemetry, health, time).
    pub fn fabric(&self) -> &FabricController {
        &self.fabric
    }

    /// Mutable fabric access (failure injection in tests/experiments).
    pub fn fabric_mut(&mut self) -> &mut FabricController {
        &mut self.fabric
    }

    /// Cubes not in any slice and not failed.
    pub fn idle_cubes(&self) -> Vec<CubeId> {
        let busy: BTreeSet<CubeId> = self
            .slices
            .values()
            .flat_map(|s| s.cubes.iter().copied())
            .collect();
        (0..POD_CUBES as CubeId)
            .filter(|c| !busy.contains(c) && !self.failed_cubes.contains(c))
            .collect()
    }

    /// Active slices.
    pub fn slices(&self) -> impl Iterator<Item = (SliceHandle, &Slice)> {
        self.slices.iter().map(|(&h, s)| (h, s))
    }

    /// Looks up a slice.
    pub fn slice(&self, h: SliceHandle) -> Option<&Slice> {
        self.slices.get(&h)
    }

    /// Marks a cube failed (host/server failure). Idle cubes simply leave
    /// the pool; cubes inside slices degrade their slice (the caller —
    /// scheduler or availability model — decides what to do about it).
    pub fn mark_cube_failed(&mut self, cube: CubeId) {
        self.failed_cubes.insert(cube);
    }

    /// Returns a repaired cube to service.
    pub fn mark_cube_repaired(&mut self, cube: CubeId) {
        self.failed_cubes.remove(&cube);
    }

    /// Whether a cube is failed.
    pub fn is_cube_failed(&self, cube: CubeId) -> bool {
        self.failed_cubes.contains(&cube)
    }

    /// The slice (if any) containing a cube.
    pub fn slice_of_cube(&self, cube: CubeId) -> Option<SliceHandle> {
        self.slices
            .iter()
            .find(|(_, s)| s.cubes.contains(&cube))
            .map(|(&h, _)| h)
    }

    /// The desired mapping of one switch under the slice set `slices`.
    fn desired_mapping(slices: &BTreeMap<SliceHandle, Slice>, ocs: OcsId) -> PortMapping {
        let mut pairs: Vec<(u16, u16)> = Vec::new();
        for slice in slices.values() {
            for hop in slice.required_hops() {
                let CubeHop { .. } = hop;
                for c in hop.circuits() {
                    if c.ocs == ocs {
                        pairs.push((c.north, c.south));
                    }
                }
            }
        }
        PortMapping::from_pairs(pairs).expect("disjoint slices produce disjoint port sets")
    }

    /// The fabric target realizing all slices in `slices`, restricted to
    /// switches that can take it: down and desynced switches are skipped
    /// (returned separately) so one failed chassis cannot veto pod-wide
    /// transactions.
    fn target_for(&self, slices: &BTreeMap<SliceHandle, Slice>) -> (FabricTarget, BTreeSet<OcsId>) {
        let mut target = FabricTarget::new();
        let mut skipped = BTreeSet::new();
        for ocs in 0..SUPERPOD_OCS_COUNT as OcsId {
            let up = self
                .fabric
                .fleet
                .get(ocs)
                .map(|s| s.is_up())
                .unwrap_or(false);
            if !up || self.desynced.contains(&ocs) {
                skipped.insert(ocs);
                continue;
            }
            target.set(ocs, Self::desired_mapping(slices, ocs));
        }
        (target, skipped)
    }

    /// Switches carrying a stale mapping (they were down during one or
    /// more committed transactions). [`Superpod::resync`] reconciles.
    pub fn desynced(&self) -> &BTreeSet<OcsId> {
        &self.desynced
    }

    /// Anti-entropy: re-applies the desired state to every desynced
    /// switch that is back up, one single-switch transaction each so a
    /// still-broken switch cannot hold the others hostage. Successfully
    /// reconciled switches rejoin future transactions; failures stay
    /// desynced and are reported.
    pub fn resync(&mut self) -> Vec<(OcsId, Result<ReconfigReport, CommitError>)> {
        let mut out = Vec::new();
        for ocs in self.desynced.clone() {
            let up = self
                .fabric
                .fleet
                .get(ocs)
                .map(|s| s.is_up())
                .unwrap_or(false);
            if !up {
                continue;
            }
            let mut target = FabricTarget::new();
            target.set(ocs, Self::desired_mapping(&self.slices, ocs));
            match self.fabric.commit(&target) {
                Ok(mut report) => {
                    self.desynced.remove(&ocs);
                    let per = report
                        .per_switch
                        .remove(&ocs)
                        .expect("single-switch commit reports its switch");
                    out.push((ocs, Ok(per)));
                }
                Err(e) => out.push((ocs, Err(e))),
            }
        }
        out
    }

    /// Composes a slice: validates cube availability, commits the fabric
    /// transaction, and returns the handle plus the commit report.
    pub fn compose(&mut self, slice: Slice) -> Result<(SliceHandle, CommitReport), PodError> {
        let busy: BTreeSet<CubeId> = self
            .slices
            .values()
            .flat_map(|s| s.cubes.iter().copied())
            .collect();
        for &c in &slice.cubes {
            if busy.contains(&c) {
                return Err(PodError::CubeBusy(c));
            }
            if self.failed_cubes.contains(&c) {
                return Err(PodError::CubeFailed(c));
            }
        }
        let handle = SliceHandle(self.next_handle);
        let mut proposed = self.slices.clone();
        proposed.insert(handle, slice);
        let (target, skipped) = self.target_for(&proposed);
        let report = self.fabric.commit(&target)?;
        self.next_handle += 1;
        self.slices = proposed;
        self.desynced.extend(skipped);
        Ok((handle, report))
    }

    /// Releases a slice, freeing its cubes and tearing down its circuits.
    pub fn release(&mut self, h: SliceHandle) -> Result<CommitReport, PodError> {
        if !self.slices.contains_key(&h) {
            return Err(PodError::UnknownSlice(h));
        }
        let mut proposed = self.slices.clone();
        proposed.remove(&h);
        let (target, skipped) = self.target_for(&proposed);
        let report = self.fabric.commit(&target)?;
        self.slices = proposed;
        self.desynced.extend(skipped);
        Ok(report)
    }

    /// Advances fabric time.
    pub fn advance(&mut self, dt: Nanos) {
        self.fabric.advance(dt);
    }

    /// True when every circuit in the fabric is aligned and carrying.
    pub fn settled(&self) -> bool {
        self.fabric.settled()
    }

    /// Per-slice impact of OCS outages (§4.2.2: "a single failure in the
    /// set of OCSes that provide full connectivity between the elemental
    /// cubes will degrade the performance of any slice composed of more
    /// than one elemental cube").
    ///
    /// Each inter-cube hop is 16 parallel circuits, one per OCS of its
    /// dimension; a down switch removes 1/16 of the optical bandwidth of
    /// every hop in its dimension. Single-cube-dimension rings are
    /// electrical and immune.
    pub fn degradation_report(&self) -> Vec<SliceDegradation> {
        use crate::geometry::LINKS_PER_FACE;
        let down: Vec<OcsId> = self
            .fabric
            .fleet
            .iter()
            .filter(|(_, ocs)| !ocs.is_up())
            .map(|(&id, _)| id)
            .collect();
        self.slices
            .iter()
            .map(|(&handle, slice)| {
                let [p, q, r] = slice.shape.cube_grid();
                let grid = [p, q, r];
                // Fraction of each dimension's inter-cube circuits lost.
                let mut lost_per_dim = [0.0f64; 3];
                for &ocs in &down {
                    let (dim, _) = crate::wiring::ocs_role(ocs);
                    if grid[dim.index()] > 1 {
                        lost_per_dim[dim.index()] += 1.0 / LINKS_PER_FACE as f64;
                    }
                }
                let worst = lost_per_dim.iter().fold(0.0f64, |a, &b| a.max(b));
                SliceDegradation {
                    handle,
                    optical_loss_per_dim: lost_per_dim,
                    worst_dim_loss: worst,
                    affected: worst > 0.0,
                }
            })
            .collect()
    }
}

/// Impact of OCS outages on one slice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SliceDegradation {
    /// The slice.
    pub handle: SliceHandle,
    /// Fraction of inter-cube optical bandwidth lost per torus dimension.
    pub optical_loss_per_dim: [f64; 3],
    /// The worst dimension's loss — the collective slowdown bound, since
    /// synchronous rings run at the speed of their thinnest hop.
    pub worst_dim_loss: f64,
    /// Whether the slice is affected at all.
    pub affected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::SliceShape;

    fn slice_of(cubes: Vec<CubeId>, a: usize, b: usize, c: usize) -> Slice {
        Slice::new(SliceShape::new(a, b, c).unwrap(), cubes).unwrap()
    }

    #[test]
    fn compose_full_pod() {
        let mut pod = Superpod::new(1);
        let slice = slice_of((0..64).collect(), 16, 16, 16);
        let (h, report) = pod.compose(slice).unwrap();
        // 64 cubes × 3 dims × 16 circuits/hop = 3072 circuits.
        assert_eq!(report.added, 3072);
        pod.advance(Nanos::from_millis(300));
        assert!(pod.settled());
        assert!(pod.idle_cubes().is_empty());
        assert_eq!(pod.slice(h).unwrap().chip_count(), 4096);
    }

    #[test]
    fn concurrent_slices_are_isolated() {
        let mut pod = Superpod::new(2);
        let (h1, _) = pod.compose(slice_of(vec![0, 1], 8, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        // Composing a second slice must not disturb the first: every
        // circuit of slice 1 shows up as "untouched" in the commit.
        let (h2, report) = pod
            .compose(slice_of(vec![10, 20, 30, 40], 16, 4, 4))
            .unwrap();
        // Slice 1: 2 cubes × 3 dims × 16 = 96 circuits, all preserved.
        assert_eq!(report.untouched, 96);
        assert_eq!(report.removed, 0);
        assert_ne!(h1, h2);
        assert_eq!(pod.idle_cubes().len(), 64 - 6);
    }

    #[test]
    fn cube_conflicts_rejected() {
        let mut pod = Superpod::new(3);
        pod.compose(slice_of(vec![5, 6], 8, 4, 4)).unwrap();
        assert_eq!(
            pod.compose(slice_of(vec![6, 7], 8, 4, 4)).unwrap_err(),
            PodError::CubeBusy(6)
        );
        pod.mark_cube_failed(9);
        assert_eq!(
            pod.compose(slice_of(vec![9], 4, 4, 4)).unwrap_err(),
            PodError::CubeFailed(9)
        );
    }

    #[test]
    fn release_frees_cubes_without_touching_others() {
        let mut pod = Superpod::new(4);
        let (h1, _) = pod.compose(slice_of(vec![0, 1], 8, 4, 4)).unwrap();
        let (h2, _) = pod.compose(slice_of(vec![2, 3], 8, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        let report = pod.release(h1).unwrap();
        assert_eq!(report.removed, 96);
        assert_eq!(report.untouched, 96, "slice 2 untouched");
        assert_eq!(report.added, 0);
        assert!(pod.idle_cubes().contains(&0));
        assert!(pod.slice(h2).is_some());
        assert_eq!(pod.release(h1).unwrap_err(), PodError::UnknownSlice(h1));
    }

    #[test]
    fn swap_failed_cube_reconfigures_around_it() {
        // The §4.2.2 availability story: a reconfigurable fabric swaps a
        // bad cube for a spare; the slice is re-composed on good cubes.
        let mut pod = Superpod::new(5);
        let (h, _) = pod.compose(slice_of(vec![0, 1, 2, 3], 16, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        // Cube 2 dies.
        pod.mark_cube_failed(2);
        let old = pod.slice(h).unwrap().clone();
        pod.release(h).unwrap();
        let mut cubes = old.cubes.clone();
        let spare = pod
            .idle_cubes()
            .into_iter()
            .find(|c| !cubes.contains(c))
            .unwrap();
        for c in &mut cubes {
            if *c == 2 {
                *c = spare;
            }
        }
        let (h2, _) = pod.compose(Slice::new(old.shape, cubes).unwrap()).unwrap();
        pod.advance(Nanos::from_millis(300));
        assert!(pod.settled());
        assert_eq!(pod.slice(h2).unwrap().chip_count(), 256);
    }

    #[test]
    fn slice_of_cube_lookup() {
        let mut pod = Superpod::new(6);
        let (h, _) = pod.compose(slice_of(vec![11, 13], 8, 4, 4)).unwrap();
        assert_eq!(pod.slice_of_cube(11), Some(h));
        assert_eq!(pod.slice_of_cube(12), None);
    }

    #[test]
    fn ocs_failure_degrades_multi_cube_slices_only() {
        // §4.2.2 verbatim: single-cube slices are immune; everything else
        // loses 1/16 of the failed dimension's optical bandwidth.
        let mut pod = Superpod::new(8);
        let (h_multi, _) = pod.compose(slice_of(vec![0, 1, 2, 3], 16, 4, 4)).unwrap();
        let (h_single, _) = pod.compose(slice_of(vec![9], 4, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(400));
        // Healthy fabric: nobody degraded.
        assert!(pod.degradation_report().iter().all(|d| !d.affected));
        // Kill OCS 0 (dimension X, link 0).
        {
            let ocs = pod.fabric_mut().fleet.get_mut(0).unwrap();
            ocs.fail_fru(0);
            ocs.fail_fru(1);
        }
        let report = pod.degradation_report();
        let multi = report.iter().find(|d| d.handle == h_multi).unwrap();
        let single = report.iter().find(|d| d.handle == h_single).unwrap();
        assert!(multi.affected);
        assert!((multi.worst_dim_loss - 1.0 / 16.0).abs() < 1e-12);
        assert_eq!(multi.optical_loss_per_dim[1], 0.0, "Y dimension untouched");
        assert!(!single.affected, "single-cube slices ride electrical rings");
        // A second X-dimension OCS failure compounds.
        {
            let ocs = pod.fabric_mut().fleet.get_mut(1).unwrap();
            ocs.fail_fru(0);
            ocs.fail_fru(1);
        }
        let report = pod.degradation_report();
        let multi = report.iter().find(|d| d.handle == h_multi).unwrap();
        assert!((multi.worst_dim_loss - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn down_switch_never_blocks_transactions_and_resyncs() {
        let mut pod = Superpod::new(9);
        let (h1, _) = pod.compose(slice_of(vec![0, 1], 8, 4, 4)).unwrap();
        pod.advance(Nanos::from_millis(300));
        // OCS 5 loses its control CPU: chassis down.
        pod.fabric_mut().fleet.get_mut(5).unwrap().fail_fru(14);
        // Transactions proceed around the dark switch: compose a second
        // slice and release the first (the pre-fix control plane rejected
        // both with ChassisDown, leaking the released slice's capacity).
        let (h2, report) = pod.compose(slice_of(vec![2, 3], 8, 4, 4)).unwrap();
        assert!(!report.per_switch.contains_key(&5), "down switch skipped");
        pod.release(h1).unwrap();
        assert!(pod.desynced().contains(&5), "missed transactions recorded");
        // Repair + anti-entropy: switch 5 converges on the live state.
        pod.fabric_mut().fleet.get_mut(5).unwrap().replace_fru(14);
        let reports = pod.resync();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].1.is_ok());
        assert!(pod.desynced().is_empty());
        pod.advance(Nanos::from_millis(300));
        // Switch 5 (dimension X) now carries exactly slice 2's X-ring.
        let mapping = pod.fabric().fleet.get(5).unwrap().mapping();
        let pairs: Vec<_> = mapping.pairs().collect();
        assert_eq!(pairs, vec![(2, 3), (3, 2)]);
        assert!(pod.slice(h2).is_some());
    }

    #[test]
    fn fabric_power_scales_with_circuits() {
        let mut pod = Superpod::new(7);
        let idle_power = pod.fabric().fleet.health().power_w;
        pod.compose(slice_of((0..64).collect(), 16, 16, 16))
            .unwrap();
        let loaded = pod.fabric().fleet.health().power_w;
        assert!(loaded > idle_power);
        // 48 chassis stay within rating: < 48 × 108 W.
        assert!(loaded < 48.0 * 108.0);
    }
}
