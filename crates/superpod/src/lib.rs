//! The TPU v4 superpod: 64 racks × 64 chips on a reconfigurable 3D torus.
//!
//! Appendix A of the paper: 64 chips form a 4×4×4 *cube* wired electrically
//! inside one rack; the 6 faces of each cube expose 16 optical links each;
//! opposing faces of a dimension land on the *same* OCS so that any chain
//! of cubes can close into a torus ring. 48 OCSes (3 dimensions × 16
//! face-link indices) interconnect up to 64 cubes into slices of any shape
//! `a×b×c` (chips, multiples of 4), from 4×4×256 to 16×16×16 for the full
//! 4096-chip pod (§4.2.1).
//!
//! - [`geometry`] — cubes, coordinates, dimensions, faces.
//! - [`wiring`] — the Appendix-A OCS wiring plan.
//! - [`mod@slice`] — slice shapes, cube assignment, required circuits.
//! - [`torus`] — the chip-level 3D torus of a slice: neighbors, routing,
//!   link classification (electrical vs optical), bisection bandwidth.
//! - [`collective`] — α-β cost models for ring/torus collectives on ICI.
//! - [`collective_sim`] — step-level collective execution against a
//!   per-link bandwidth map (straggler analysis).
//! - [`instrument`] — straggler detection feeding the fleet
//!   observability subsystem (`lightwave-telemetry`).
//! - [`hybrid`] — hybrid ICI-DCN collectives across multiple pods
//!   (§2.2.2, Fig. 2).
//! - [`torus_nd`] — the §6 future-work 4D/6D torus trade study.
//! - [`pod`] — the [`pod::Superpod`] facade: compose and release slices on
//!   a live OCS fabric with isolation guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod collective_sim;
pub mod geometry;
pub mod hybrid;
pub mod instrument;
pub mod pod;
pub mod slice;
pub mod torus;
pub mod torus_nd;
pub mod wiring;

pub use geometry::{CubeId, Dim, CHIPS_PER_CUBE, CUBE_EDGE, POD_CHIPS, POD_CUBES};
pub use pod::{PodError, SliceHandle, Superpod};
pub use slice::{Slice, SliceShape};
pub use torus::Torus;
