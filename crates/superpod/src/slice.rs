//! Slice shapes and cube assignments.
//!
//! A *slice* is a set of cubes composed into a 3D torus of shape
//! `a×b×c` chips (§4.2.1): "slice topologies ranging from 4×4×256 to
//! 16×16×16 can be configured with the minimum increment of four set by
//! the size of the elemental 4×4×4 cube" — and beyond the full-pod
//! examples, any product of multiples of 4 that fits the pod.
//!
//! Cubes need **not** be physically contiguous (§4.2.4): the OCS wiring
//! lets any set of idle cubes take any logical position in the slice grid.

use crate::geometry::{CubeId, Dim, CUBE_EDGE, POD_CUBES};
use crate::wiring::CubeHop;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A slice shape in chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SliceShape {
    /// Chips along each dimension; each a positive multiple of 4.
    pub chips: [usize; 3],
}

/// Shape validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShapeError {
    /// A dimension is zero or not a multiple of the cube edge.
    BadDimension(usize),
    /// The shape needs more cubes than a pod holds.
    TooLarge {
        /// Cubes required.
        cubes: usize,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::BadDimension(d) => {
                write!(
                    f,
                    "dimension {d} must be a positive multiple of {CUBE_EDGE}"
                )
            }
            ShapeError::TooLarge { cubes } => {
                write!(f, "shape needs {cubes} cubes; a pod has {POD_CUBES}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

impl SliceShape {
    /// Validates and constructs a shape.
    pub fn new(a: usize, b: usize, c: usize) -> Result<SliceShape, ShapeError> {
        for &d in &[a, b, c] {
            if d == 0 || d % CUBE_EDGE != 0 {
                return Err(ShapeError::BadDimension(d));
            }
        }
        let shape = SliceShape { chips: [a, b, c] };
        if shape.cube_count() > POD_CUBES {
            return Err(ShapeError::TooLarge {
                cubes: shape.cube_count(),
            });
        }
        Ok(shape)
    }

    /// The full-pod symmetric shape, 16×16×16.
    pub fn full_pod_symmetric() -> SliceShape {
        SliceShape::new(16, 16, 16).expect("valid")
    }

    /// Total chips.
    pub fn chip_count(&self) -> usize {
        self.chips.iter().product()
    }

    /// Cube-grid dimensions (chips / 4 per dimension).
    pub fn cube_grid(&self) -> [usize; 3] {
        [
            self.chips[0] / CUBE_EDGE,
            self.chips[1] / CUBE_EDGE,
            self.chips[2] / CUBE_EDGE,
        ]
    }

    /// Cubes required.
    pub fn cube_count(&self) -> usize {
        self.cube_grid().iter().product()
    }

    /// Chip-level bisection width: the number of chip-links crossing the
    /// narrowest bisecting cut of the torus (wrap links double it).
    pub fn bisection_links(&self) -> usize {
        let [a, b, c] = self.chips;
        // Cutting dimension X severs 2·b·c links (forward + wrap), etc.
        // For a 2-chip dimension forward and wrap coincide; ignore that
        // corner (all real slices have ≥ 4 chips per dimension).
        2 * [b * c, a * c, a * b].into_iter().min().expect("non-empty")
    }

    /// All valid shapes with exactly `chips` chips (e.g. 4096 for the
    /// full pod), in lexicographic order. Useful for shape search.
    pub fn enumerate_with_chips(chips: usize) -> Vec<SliceShape> {
        let mut out = Vec::new();
        let max = chips / (CUBE_EDGE * CUBE_EDGE);
        let mut a = CUBE_EDGE;
        while a <= max.max(CUBE_EDGE) && a <= chips {
            if chips.is_multiple_of(a) {
                let rest = chips / a;
                let mut b = CUBE_EDGE;
                while b <= rest {
                    if rest.is_multiple_of(b) {
                        let c = rest / b;
                        if let Ok(shape) = SliceShape::new(a, b, c) {
                            out.push(shape);
                        }
                    }
                    b += CUBE_EDGE;
                }
            }
            a += CUBE_EDGE;
        }
        out
    }
}

/// A slice: a shape plus the physical cubes filling its logical grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slice {
    /// The shape.
    pub shape: SliceShape,
    /// Physical cube at each logical grid position, row-major with the
    /// first dimension fastest.
    pub cubes: Vec<CubeId>,
}

/// Slice construction failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SliceError {
    /// Wrong number of cubes for the shape.
    WrongCubeCount {
        /// Cubes provided.
        got: usize,
        /// Cubes needed.
        need: usize,
    },
    /// A cube appears twice.
    DuplicateCube(CubeId),
    /// A cube id is out of pod range.
    BadCube(CubeId),
}

impl std::fmt::Display for SliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SliceError::WrongCubeCount { got, need } => {
                write!(f, "shape needs {need} cubes, got {got}")
            }
            SliceError::DuplicateCube(c) => write!(f, "cube {c} assigned twice"),
            SliceError::BadCube(c) => write!(f, "cube {c} outside the pod"),
        }
    }
}

impl std::error::Error for SliceError {}

impl Slice {
    /// Builds a slice from a shape and cube assignment.
    pub fn new(shape: SliceShape, cubes: Vec<CubeId>) -> Result<Slice, SliceError> {
        if cubes.len() != shape.cube_count() {
            return Err(SliceError::WrongCubeCount {
                got: cubes.len(),
                need: shape.cube_count(),
            });
        }
        let mut seen = BTreeSet::new();
        for &c in &cubes {
            if c as usize >= POD_CUBES {
                return Err(SliceError::BadCube(c));
            }
            if !seen.insert(c) {
                return Err(SliceError::DuplicateCube(c));
            }
        }
        Ok(Slice { shape, cubes })
    }

    /// The cube at logical grid position `(i, j, k)`.
    pub fn cube_at(&self, i: usize, j: usize, k: usize) -> CubeId {
        let [p, q, _] = self.shape.cube_grid();
        self.cubes[i + p * (j + q * k)]
    }

    /// Total chips.
    pub fn chip_count(&self) -> usize {
        self.shape.chip_count()
    }

    /// The inter-cube hops (torus rings) this slice requires. Every cube
    /// contributes exactly one +d hop per dimension — to the next cube in
    /// its ring, wrapping at the edge (a single-cube dimension yields a
    /// self-hop, closing the torus locally).
    pub fn required_hops(&self) -> Vec<CubeHop> {
        let [p, q, r] = self.shape.cube_grid();
        let mut hops = Vec::new();
        for k in 0..r {
            for j in 0..q {
                for i in 0..p {
                    let from = self.cube_at(i, j, k);
                    hops.push(CubeHop {
                        dim: Dim::X,
                        from,
                        to: self.cube_at((i + 1) % p, j, k),
                    });
                    hops.push(CubeHop {
                        dim: Dim::Y,
                        from,
                        to: self.cube_at(i, (j + 1) % q, k),
                    });
                    hops.push(CubeHop {
                        dim: Dim::Z,
                        from,
                        to: self.cube_at(i, j, (k + 1) % r),
                    });
                }
            }
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(SliceShape::new(4, 4, 4).is_ok());
        assert!(SliceShape::new(16, 16, 16).is_ok());
        assert!(SliceShape::new(4, 4, 256).is_ok());
        assert_eq!(
            SliceShape::new(5, 4, 4).unwrap_err(),
            ShapeError::BadDimension(5)
        );
        assert_eq!(
            SliceShape::new(0, 4, 4).unwrap_err(),
            ShapeError::BadDimension(0)
        );
        assert_eq!(
            SliceShape::new(16, 16, 32).unwrap_err(),
            ShapeError::TooLarge { cubes: 128 }
        );
    }

    #[test]
    fn full_pod_shapes_from_the_paper() {
        // 16×16×16 and 4×4×256 both use all 64 cubes (§4.2.1).
        for shape in [
            SliceShape::new(16, 16, 16).unwrap(),
            SliceShape::new(4, 4, 256).unwrap(),
        ] {
            assert_eq!(shape.chip_count(), 4096);
            assert_eq!(shape.cube_count(), 64);
        }
        assert_eq!(SliceShape::new(8, 16, 32).unwrap().cube_count(), 64);
    }

    #[test]
    fn symmetric_shape_has_max_bisection() {
        // §4.2.1: "the symmetric 16×16×16 static configuration is chosen as
        // the baseline because it has the highest bisection bandwidth".
        let all = SliceShape::enumerate_with_chips(4096);
        assert!(all.len() > 5, "many 4096-chip shapes exist: {}", all.len());
        let best = all.iter().max_by_key(|s| s.bisection_links()).unwrap();
        let mut sorted = best.chips;
        sorted.sort_unstable();
        assert_eq!(sorted, [16, 16, 16]);
    }

    #[test]
    fn enumerate_includes_paper_extremes() {
        let all = SliceShape::enumerate_with_chips(4096);
        let has = |a: usize, b: usize, c: usize| {
            all.iter().any(|s| {
                let mut x = s.chips;
                x.sort_unstable();
                let mut y = [a, b, c];
                y.sort_unstable();
                x == y
            })
        };
        assert!(has(16, 16, 16));
        assert!(has(4, 4, 256));
        assert!(has(8, 16, 32));
    }

    #[test]
    fn slice_validation() {
        let shape = SliceShape::new(8, 4, 4).unwrap(); // 2 cubes
        assert!(Slice::new(shape, vec![0, 1]).is_ok());
        assert_eq!(
            Slice::new(shape, vec![0]).unwrap_err(),
            SliceError::WrongCubeCount { got: 1, need: 2 }
        );
        assert_eq!(
            Slice::new(shape, vec![0, 0]).unwrap_err(),
            SliceError::DuplicateCube(0)
        );
        assert_eq!(
            Slice::new(shape, vec![0, 99]).unwrap_err(),
            SliceError::BadCube(99)
        );
    }

    #[test]
    fn non_contiguous_cubes_are_fine() {
        // §4.2.4: "four idle, not-necessarily-contiguous 4×4×4 elemental
        // cubes" compose a 256-chip slice.
        let shape = SliceShape::new(16, 4, 4).unwrap(); // 4 cubes in a row
        let slice = Slice::new(shape, vec![3, 17, 42, 60]).unwrap();
        assert_eq!(slice.chip_count(), 256);
        let hops = slice.required_hops();
        // 4 cubes × 3 dims = 12 hops.
        assert_eq!(hops.len(), 12);
        // The X ring visits the cubes in order and wraps 60 → 3.
        let x_hops: Vec<_> = hops.iter().filter(|h| h.dim == Dim::X).collect();
        assert!(
            x_hops.iter().any(|h| h.from == 60 && h.to == 3),
            "wraparound hop present"
        );
    }

    #[test]
    fn single_cube_slice_self_hops() {
        let shape = SliceShape::new(4, 4, 4).unwrap();
        let slice = Slice::new(shape, vec![7]).unwrap();
        let hops = slice.required_hops();
        assert_eq!(hops.len(), 3);
        assert!(hops.iter().all(|h| h.from == 7 && h.to == 7));
    }

    #[test]
    fn hop_count_scales_with_cubes() {
        let shape = SliceShape::new(16, 16, 16).unwrap();
        let slice = Slice::new(shape, (0..64).collect()).unwrap();
        // 64 cubes × 3 dims.
        assert_eq!(slice.required_hops().len(), 192);
    }

    #[test]
    fn bisection_links_prefers_balance() {
        let sym = SliceShape::new(16, 16, 16).unwrap();
        let skew = SliceShape::new(4, 4, 256).unwrap();
        assert!(sym.bisection_links() > skew.bisection_links());
        assert_eq!(sym.bisection_links(), 2 * 16 * 16);
        assert_eq!(skew.bisection_links(), 2 * 4 * 4);
    }
}
