//! Bridges collective-simulation results into the fleet observability
//! subsystem (`lightwave-telemetry`) — in particular straggler
//! detection.
//!
//! Ring collectives are synchronous, so one derated link stalls every
//! chip in its dimension at every step ([`crate::collective_sim`]). The
//! detector compares an observed run against its healthy baseline
//! phase-by-phase and raises per-dimension straggler alarms, closing the
//! §4.2.2 loop: detect the slow cube, then reconfigure the slice off it.

use crate::collective_sim::SimOutcome;
use lightwave_fabric::{CommitError, CommitReport, OcsId};
use lightwave_ocs::ReconfigReport;
use lightwave_telemetry::rollup::{PortPath, RollupTree};
use lightwave_telemetry::{
    AlarmCause, AlarmRecord, CounterId, EventKind, FleetTelemetry, HistogramId, Severity,
};
use lightwave_trace::{reconfig_phase_spans, Lane, SpanId, SpanKind, Tracer};
use lightwave_units::Nanos;

/// A phase-time slowdown past this ratio over baseline flags a straggler.
pub const STRAGGLER_THRESHOLD: f64 = 1.2;

/// One detected straggler dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Straggler {
    /// Torus dimension whose phases slowed.
    pub dim: u8,
    /// Worst phase slowdown over baseline, percent (e.g. 300 = 4×).
    pub slowdown_pct: u32,
}

/// Fleet-metric handles for one pod's collectives, labeled `{pod=<id>}`.
#[derive(Debug, Clone)]
pub struct CollectiveInstruments {
    pod: u32,
    collective_s: HistogramId,
    phase_s: HistogramId,
    steps: CounterId,
    stragglers: CounterId,
}

impl CollectiveInstruments {
    /// Registers the per-pod instruments in `sink`'s metrics registry.
    pub fn register(sink: &mut FleetTelemetry, pod: u32) -> CollectiveInstruments {
        let id = pod.to_string();
        let labels: &[(&str, &str)] = &[("pod", &id)];
        let m = &mut sink.metrics;
        CollectiveInstruments {
            pod,
            collective_s: m.histogram("pod_collective_s", labels),
            phase_s: m.histogram("pod_collective_phase_s", labels),
            steps: m.counter("pod_collective_steps_total", labels),
            stragglers: m.counter("pod_stragglers_detected_total", labels),
        }
    }

    /// Records one simulated collective's timings.
    pub fn record_collective(&mut self, sink: &mut FleetTelemetry, at: Nanos, run: &SimOutcome) {
        sink.metrics.observe(self.collective_s, at, run.total);
        for &p in &run.phase_times {
            if p > 0.0 {
                sink.metrics.observe(self.phase_s, at, p);
            }
        }
        sink.metrics.inc(self.steps, at, run.steps as u64);
    }

    /// Compares an observed collective against its healthy baseline
    /// phase-by-phase and alarms every dimension whose worst phase ran
    /// more than [`STRAGGLER_THRESHOLD`]× slower.
    ///
    /// `dims` must be the dimension order both runs were simulated with
    /// (phases are `dims` forward for reduce-scatter, then reversed for
    /// all-gather). Slowdowns past 2× alarm Critical — the job is losing
    /// more time than a slice reconfiguration costs.
    pub fn detect_stragglers(
        &mut self,
        sink: &mut FleetTelemetry,
        at: Nanos,
        dims: &[usize],
        healthy: &SimOutcome,
        observed: &SimOutcome,
    ) -> Vec<Straggler> {
        assert_eq!(
            healthy.phase_times.len(),
            observed.phase_times.len(),
            "baseline and observation must have the same phase structure"
        );
        assert_eq!(healthy.phase_times.len(), 2 * dims.len());
        // Phase i covers dims[i] on the way out, dims[2d-1-i] on the way
        // back; fold both into a per-dimension worst slowdown.
        let mut worst_pct = vec![0u32; dims.len()];
        for (i, (&h, &o)) in healthy
            .phase_times
            .iter()
            .zip(&observed.phase_times)
            .enumerate()
        {
            if h <= 0.0 {
                continue;
            }
            let ratio = o / h;
            if ratio > STRAGGLER_THRESHOLD {
                let di = if i < dims.len() {
                    i
                } else {
                    2 * dims.len() - 1 - i
                };
                let pct = ((ratio - 1.0) * 100.0).round() as u32;
                worst_pct[di] = worst_pct[di].max(pct);
            }
        }
        let mut found = Vec::new();
        for (di, &pct) in worst_pct.iter().enumerate() {
            if pct == 0 {
                continue;
            }
            let dim = dims[di] as u8;
            found.push(Straggler {
                dim,
                slowdown_pct: pct,
            });
            sink.metrics.inc(self.stragglers, at, 1);
            sink.events.emit(
                at,
                "superpod",
                EventKind::StragglerDetected {
                    dim,
                    slowdown_pct: pct,
                },
            );
            sink.ingest_alarm(AlarmRecord {
                at,
                severity: if pct >= 100 {
                    Severity::Critical
                } else {
                    Severity::Warning
                },
                switch: self.pod,
                cause: AlarmCause::Straggler { dim },
            });
        }
        found
    }

    /// Folds one simulated collective into the campus rollup tree: the
    /// total time (seconds) on this pod's pseudo-switch leaf
    /// `u32::MAX`, and detected stragglers as `pod_stragglers` samples.
    pub fn roll_collective(
        &self,
        tree: &mut RollupTree,
        at: Nanos,
        run: &SimOutcome,
        stragglers: &[Straggler],
    ) {
        let path = PortPath::new(self.pod, u32::MAX, 0);
        tree.record("pod_collective_s", path, at, run.total);
        for s in stragglers {
            tree.record("pod_stragglers", path, at, s.slowdown_pct as f64 / 100.0);
        }
    }

    /// [`Self::detect_stragglers`] plus an instant mark per flagged
    /// dimension on the pod's timeline lane, so the detection moment is
    /// visible in the Perfetto timeline next to the recovery spans.
    pub fn detect_stragglers_traced(
        &mut self,
        sink: &mut FleetTelemetry,
        tracer: &mut Tracer,
        at: Nanos,
        dims: &[usize],
        healthy: &SimOutcome,
        observed: &SimOutcome,
    ) -> Vec<Straggler> {
        let found = self.detect_stragglers(sink, at, dims, healthy, observed);
        for s in &found {
            tracer.instant(
                Lane::Pod(self.pod),
                at,
                &format!("straggler dim={} +{}%", s.dim, s.slowdown_pct),
            );
        }
        found
    }
}

/// Renders a slice composition as a span tree: a
/// [`SpanKind::SliceCompose`] on the pod's lane covering
/// `at..traffic_ready_at`, with each touched switch's
/// [`SpanKind::ReconfigCommit`] — and its drain → settle → verify →
/// undrain phase chain — as children. Commits are incremental
/// (DESIGN §6.6), so "touched" means exactly the switches of the
/// slice's optical dimensions: an all-electrical single-cube compose
/// renders as a childless instant-width span. Returns the compose span.
pub fn trace_compose(
    tracer: &mut Tracer,
    parent: Option<SpanId>,
    pod: u32,
    at: Nanos,
    cubes: u32,
    report: &CommitReport,
) -> SpanId {
    let kind = SpanKind::SliceCompose {
        cubes,
        circuits: report.added as u32,
    };
    trace_topology_change(tracer, parent, pod, at, kind, report)
}

/// Renders a slice release the same way ([`trace_compose`]), as a
/// [`SpanKind::SliceRelease`] span tree. Returns the release span.
pub fn trace_release(
    tracer: &mut Tracer,
    parent: Option<SpanId>,
    pod: u32,
    at: Nanos,
    cubes: u32,
    report: &CommitReport,
) -> SpanId {
    let kind = SpanKind::SliceRelease {
        cubes,
        circuits: report.removed as u32,
    };
    trace_topology_change(tracer, parent, pod, at, kind, report)
}

fn trace_topology_change(
    tracer: &mut Tracer,
    parent: Option<SpanId>,
    pod: u32,
    at: Nanos,
    kind: SpanKind,
    report: &CommitReport,
) -> SpanId {
    let span = tracer.begin(Lane::Pod(pod), parent, at, kind);
    for (&switch, sw) in &report.per_switch {
        let commit = tracer.span(
            Lane::Switch(switch),
            Some(span),
            at,
            sw.ready_at.max(at),
            SpanKind::ReconfigCommit {
                switch,
                added: sw.added.len() as u32,
                removed: sw.removed.len() as u32,
                untouched: sw.untouched as u32,
            },
        );
        if !sw.added.is_empty() {
            reconfig_phase_spans(tracer, commit, switch, at, sw.ready_at);
        }
    }
    tracer.end(span, report.traffic_ready_at.max(at));
    span
}

/// Folds a slice composition or release into the campus rollup tree:
/// one `pod_slice_moves` sample per touched switch (at that switch's
/// leaf under `pod`), plus a pod-scoped `pod_slice_settle_ms` sample on
/// pseudo-switch `u32::MAX` when circuits were added. The superpod-side
/// twin of [`FabricInstruments::roll_commit`] — same tree, same exact
/// [`Aggregate`](lightwave_telemetry::Aggregate) folds.
///
/// [`FabricInstruments::roll_commit`]:
///     lightwave_fabric::instrument::FabricInstruments::roll_commit
pub fn roll_topology_change(tree: &mut RollupTree, pod: u32, at: Nanos, report: &CommitReport) {
    let moves = tree.metric("pod_slice_moves");
    for (&switch, sw) in &report.per_switch {
        let delta = (sw.added.len() + sw.removed.len()) as f64;
        tree.ingest(moves, PortPath::new(pod, switch, 0), at, delta);
    }
    if report.added > 0 {
        let settle = report.traffic_ready_at.saturating_sub(at);
        tree.record(
            "pod_slice_settle_ms",
            PortPath::new(pod, u32::MAX, 0),
            at,
            settle.as_millis_f64(),
        );
    }
}

/// Records one [`Superpod::resync`](crate::Superpod::resync) pass into
/// the fleet sink. Anti-entropy used to be invisible in telemetry — a
/// revived switch silently rejoined the fabric between composes. Each
/// reconciled switch now bumps `pod_resyncs_total{pod=..}` and publishes
/// an informational [`EventKind::Resync`] event; each switch that stayed
/// desynced bumps `pod_resync_failures_total{pod=..}`. Returns the
/// number of switches reconciled.
pub fn record_resync(
    sink: &mut FleetTelemetry,
    pod: u32,
    at: Nanos,
    results: &[(OcsId, Result<ReconfigReport, CommitError>)],
) -> usize {
    let id = pod.to_string();
    let labels: &[(&str, &str)] = &[("pod", &id)];
    let ok = sink.metrics.counter("pod_resyncs_total", labels);
    let failed = sink.metrics.counter("pod_resync_failures_total", labels);
    let mut reconciled = 0;
    for (ocs, result) in results {
        match result {
            Ok(report) => {
                reconciled += 1;
                sink.metrics.inc(ok, at, 1);
                sink.events.emit(
                    at,
                    &format!("pod-{pod}"),
                    EventKind::Resync {
                        switch: *ocs,
                        added: report.added.len() as u32,
                        removed: report.removed.len() as u32,
                        untouched: report.untouched as u32,
                    },
                );
            }
            Err(_) => sink.metrics.inc(failed, at, 1),
        }
    }
    reconciled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective_sim::{simulate_torus_all_reduce, Uniform, WithStraggler};
    use crate::slice::SliceShape;
    use crate::torus::Chip;

    fn shape() -> SliceShape {
        SliceShape::new(8, 8, 8).expect("valid")
    }

    #[test]
    fn healthy_run_detects_nothing() {
        let mut sink = FleetTelemetry::new();
        let mut inst = CollectiveInstruments::register(&mut sink, 0);
        let run = simulate_torus_all_reduce(shape(), 256e6, &[0, 1, 2], &Uniform(100e9), 300e-9);
        inst.record_collective(&mut sink, Nanos(0), &run);
        let found = inst.detect_stragglers(&mut sink, Nanos(0), &[0, 1, 2], &run, &run);
        assert!(found.is_empty());
        assert_eq!(sink.alarms.pages(), 0);
        let h = sink.metrics.histogram_value(inst.collective_s);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn derated_link_is_pinned_to_its_dimension() {
        let mut sink = FleetTelemetry::new();
        let mut inst = CollectiveInstruments::register(&mut sink, 7);
        let base = 100e9;
        let healthy = simulate_torus_all_reduce(shape(), 256e6, &[0, 1, 2], &Uniform(base), 300e-9);
        let bad = WithStraggler {
            base,
            chip: Chip { coords: [3, 5, 2] },
            dim: 1,
            derated: base / 4.0,
        };
        let observed = simulate_torus_all_reduce(shape(), 256e6, &[0, 1, 2], &bad, 300e-9);
        let found = inst.detect_stragglers(&mut sink, Nanos(5), &[0, 1, 2], &healthy, &observed);
        assert_eq!(found.len(), 1, "exactly the derated dimension flags");
        assert_eq!(found[0].dim, 1);
        assert!(found[0].slowdown_pct > 100, "4× derate ⇒ ≈300% slower");
        // A >2× slowdown pages Critical on pod 7.
        let inc = sink.alarms.open_incidents().next().unwrap();
        assert_eq!(inc.severity, Severity::Critical);
        assert_eq!(inc.switch, 7);
        assert!(sink
            .events
            .recent()
            .any(|e| matches!(e.kind, EventKind::StragglerDetected { dim: 1, .. })));
    }
}
