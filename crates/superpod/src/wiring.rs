//! The Appendix-A OCS wiring plan.
//!
//! "To provide the wraparound links to complete the 3D torus, the links on
//! the opposing sides of a block are connected to the same OCS. Thus, each
//! 4×4×4 block connects to 6 × 16 ÷ 2 = 48 OCSes."
//!
//! Concretely: OCS `(d, k)` — dimension `d`, face-link index `k` — hosts,
//! for every cube `c`, the `k`-th link of `c`'s **+d face on North port
//! `c`** and the `k`-th link of `c`'s **−d face on South port `c`**.
//! A torus hop "cube `a` → cube `b` along +d" is then 16 parallel circuits
//! `North a → South b`, one on each of the 16 OCSes of dimension `d`. A
//! single-cube ring closes electrically inside the cube — it needs no
//! optical circuit at all, so a hop with `from == to` expands to zero
//! circuits and never touches a switch.

use crate::geometry::{CubeId, Dim, LINKS_PER_FACE};
use lightwave_fabric::OcsId;
use lightwave_ocs::PortId;
use serde::{Deserialize, Serialize};

/// Number of OCSes in a superpod lightwave fabric (CWDM4-bidi modules).
pub const SUPERPOD_OCS_COUNT: usize = 48;

/// An inter-cube hop request: 16 physical circuits on 16 OCSes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CubeHop {
    /// Torus dimension of the hop.
    pub dim: Dim,
    /// Source cube (its +dim face).
    pub from: CubeId,
    /// Destination cube (its −dim face).
    pub to: CubeId,
}

/// One physical circuit implied by a [`CubeHop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysicalCircuit {
    /// Which switch.
    pub ocs: OcsId,
    /// North port (source cube id).
    pub north: PortId,
    /// South port (destination cube id).
    pub south: PortId,
}

/// The OCS carrying dimension `dim`, face-link `k`.
pub fn ocs_for(dim: Dim, k: usize) -> OcsId {
    assert!(k < LINKS_PER_FACE, "face-link index {k} out of range");
    (dim.index() * LINKS_PER_FACE + k) as OcsId
}

/// Inverse of [`ocs_for`].
pub fn ocs_role(ocs: OcsId) -> (Dim, usize) {
    let i = ocs as usize;
    assert!(
        i < SUPERPOD_OCS_COUNT,
        "OCS {ocs} outside the superpod fabric"
    );
    (Dim::ALL[i / LINKS_PER_FACE], i % LINKS_PER_FACE)
}

impl CubeHop {
    /// The North/South port pair this hop pins on every dimension-`dim`
    /// switch, or `None` for a single-cube ring (which closes
    /// electrically and pins nothing).
    pub fn pair(&self) -> Option<(PortId, PortId)> {
        (self.from != self.to).then_some((self.from as PortId, self.to as PortId))
    }

    /// The physical circuits realizing this hop: 16 (one per
    /// dimension-`dim` switch) for an inter-cube hop, zero for a
    /// single-cube electrical ring.
    pub fn circuits(&self) -> impl Iterator<Item = PhysicalCircuit> + '_ {
        let dim = self.dim;
        self.pair().into_iter().flat_map(move |(north, south)| {
            (0..LINKS_PER_FACE).map(move |k| PhysicalCircuit {
                ocs: ocs_for(dim, k),
                north,
                south,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_has_48_switches() {
        let max = ocs_for(Dim::Z, LINKS_PER_FACE - 1);
        assert_eq!(max as usize + 1, SUPERPOD_OCS_COUNT);
    }

    #[test]
    fn ocs_for_role_roundtrip() {
        for ocs in 0..SUPERPOD_OCS_COUNT as OcsId {
            let (d, k) = ocs_role(ocs);
            assert_eq!(ocs_for(d, k), ocs);
        }
    }

    #[test]
    fn dimensions_use_disjoint_switches() {
        let x: Vec<OcsId> = (0..16).map(|k| ocs_for(Dim::X, k)).collect();
        let y: Vec<OcsId> = (0..16).map(|k| ocs_for(Dim::Y, k)).collect();
        assert!(x.iter().all(|o| !y.contains(o)));
    }

    #[test]
    fn hop_expands_to_16_circuits() {
        let hop = CubeHop {
            dim: Dim::Y,
            from: 5,
            to: 9,
        };
        let circuits: Vec<_> = hop.circuits().collect();
        assert_eq!(circuits.len(), 16);
        // All on dimension-Y switches, all North 5 → South 9.
        for c in &circuits {
            let (d, _) = ocs_role(c.ocs);
            assert_eq!(d, Dim::Y);
            assert_eq!(c.north, 5);
            assert_eq!(c.south, 9);
        }
        // 16 distinct switches.
        let mut ids: Vec<_> = circuits.iter().map(|c| c.ocs).collect();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn single_cube_wraparound_is_electrical() {
        let hop = CubeHop {
            dim: Dim::X,
            from: 3,
            to: 3,
        };
        assert_eq!(hop.pair(), None);
        assert_eq!(hop.circuits().count(), 0, "self-rings touch no switch");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_link_index_panics() {
        let _ = ocs_for(Dim::X, 16);
    }
}
