//! Collective-communication cost models on slice tori.
//!
//! The speedups of Table 2 come from matching slice shape to the model's
//! communication pattern, and the costs of §2.2.2's hybrid ICI-DCN
//! training come from collectives straddling both fabrics. This module
//! provides the standard α-β (latency-bandwidth) cost models for the
//! collectives XLA emits on a torus: ring reduce-scatter / all-gather /
//! all-reduce per dimension, and the bandwidth-optimal multi-dimensional
//! composition.

use serde::{Deserialize, Serialize};

/// ICI link parameters of one torus direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IciParams {
    /// Per-link, per-direction bandwidth in bytes/second.
    pub link_bandwidth: f64,
    /// Per-hop latency, seconds (switchless direct links are ~100s of ns).
    pub hop_latency: f64,
    /// Whether the ring algorithm uses both ring directions at once
    /// (doubling effective bandwidth).
    pub bidirectional_rings: bool,
}

impl Default for IciParams {
    fn default() -> Self {
        IciParams::tpu_v4()
    }
}

impl IciParams {
    /// Public TPU v4 ICI figures: ~50 GB/s per link per direction,
    /// sub-microsecond hop latency.
    pub fn tpu_v4() -> IciParams {
        IciParams {
            link_bandwidth: 50.0e9,
            hop_latency: 300e-9,
            bidirectional_rings: true,
        }
    }

    /// Effective ring bandwidth.
    pub fn ring_bandwidth(&self) -> f64 {
        if self.bidirectional_rings {
            2.0 * self.link_bandwidth
        } else {
            self.link_bandwidth
        }
    }
}

/// Time for a ring reduce-scatter of `bytes` (per participant) over a ring
/// of `len` chips: `(len−1)` steps moving `bytes/len` each.
pub fn ring_reduce_scatter(bytes: f64, len: usize, p: &IciParams) -> f64 {
    assert!(bytes >= 0.0, "bytes must be non-negative");
    assert!(len >= 1, "ring must have at least one member");
    if len == 1 {
        return 0.0;
    }
    let steps = (len - 1) as f64;
    steps * (bytes / len as f64) / p.ring_bandwidth() + steps * p.hop_latency
}

/// Time for a ring all-gather (same step structure as reduce-scatter).
pub fn ring_all_gather(bytes: f64, len: usize, p: &IciParams) -> f64 {
    ring_reduce_scatter(bytes, len, p)
}

/// Time for a ring all-reduce over one dimension: reduce-scatter +
/// all-gather, `2·(len−1)/len · bytes / bw`.
pub fn ring_all_reduce(bytes: f64, len: usize, p: &IciParams) -> f64 {
    ring_reduce_scatter(bytes, len, p) + ring_all_gather(bytes, len, p)
}

/// Bandwidth-optimal multi-dimensional all-reduce across the given ring
/// lengths (the torus dimensions assigned to this collective): reduce-
/// scatter dimension by dimension (payload shrinking each time), then
/// all-gather in reverse.
pub fn torus_all_reduce(bytes: f64, ring_lens: &[usize], p: &IciParams) -> f64 {
    assert!(!ring_lens.is_empty(), "need at least one dimension");
    let mut t = 0.0;
    let mut payload = bytes;
    for &len in ring_lens {
        t += ring_reduce_scatter(payload, len, p);
        payload /= len as f64;
    }
    // `payload` is now the fully scattered shard.
    for &len in ring_lens.iter().rev() {
        payload *= len as f64;
        t += ring_all_gather(payload, len, p);
    }
    t
}

/// All-to-all over one torus dimension of length `len`: every chip sends a
/// distinct `bytes/len` shard to every other member. On a ring, aggregate
/// traffic crossing each link bounds time at `len²/4` shard-hops spread
/// over the ring's links.
pub fn ring_all_to_all(bytes: f64, len: usize, p: &IciParams) -> f64 {
    assert!(len >= 1);
    if len == 1 {
        return 0.0;
    }
    let shard = bytes / len as f64;
    // Mean distance len/4, len·(len−1) shards, 2·len directed links.
    let shard_hops = (len * (len - 1)) as f64 * len as f64 / 4.0;
    let per_link = shard_hops / (2 * len) as f64;
    per_link * shard / p.link_bandwidth + (len as f64 / 2.0) * p.hop_latency
}

/// Effective all-reduce *algorithmic bandwidth* (bytes/s of input reduced)
/// for a multi-dimensional all-reduce — handy for comparing shapes.
pub fn all_reduce_bandwidth(bytes: f64, ring_lens: &[usize], p: &IciParams) -> f64 {
    bytes / torus_all_reduce(bytes, ring_lens, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn single_member_rings_are_free() {
        let p = IciParams::tpu_v4();
        assert_eq!(ring_all_reduce(100.0 * MB, 1, &p), 0.0);
        assert_eq!(ring_all_to_all(100.0 * MB, 1, &p), 0.0);
    }

    #[test]
    fn allreduce_approaches_2x_bytes_over_bw() {
        // For large rings, all-reduce time → 2·bytes/bw.
        let p = IciParams::tpu_v4();
        let bytes = 1024.0 * MB;
        let t = ring_all_reduce(bytes, 256, &p);
        let asymptote = 2.0 * bytes / p.ring_bandwidth();
        assert!(
            (t / asymptote - 1.0).abs() < 0.05,
            "t={t}, asymptote={asymptote}"
        );
    }

    #[test]
    fn latency_dominates_small_messages() {
        let p = IciParams::tpu_v4();
        let tiny = ring_all_reduce(1024.0, 64, &p);
        let latency_floor = 2.0 * 63.0 * p.hop_latency;
        assert!(tiny >= latency_floor);
        assert!(
            tiny < latency_floor * 1.5,
            "bandwidth term should be negligible"
        );
    }

    #[test]
    fn multidim_beats_single_long_ring() {
        // Reducing over 16×16×16 (three rings) beats one 4096-ring in
        // latency and matches bandwidth asymptotics.
        let p = IciParams::tpu_v4();
        let bytes = 64.0 * MB;
        let three_d = torus_all_reduce(bytes, &[16, 16, 16], &p);
        let one_d = ring_all_reduce(bytes, 4096, &p);
        assert!(three_d < one_d, "3D {three_d} vs 1D {one_d}");
    }

    #[test]
    fn torus_allreduce_reduces_payload_per_stage() {
        // The multi-dim composition must be cheaper than running the full
        // payload over every dimension independently.
        let p = IciParams::tpu_v4();
        let bytes = 256.0 * MB;
        let composed = torus_all_reduce(bytes, &[16, 16], &p);
        let naive = ring_all_reduce(bytes, 16, &p) * 2.0;
        assert!(composed < naive);
    }

    #[test]
    fn bidirectional_rings_double_bandwidth() {
        let bid = IciParams::tpu_v4();
        let uni = IciParams {
            bidirectional_rings: false,
            ..bid
        };
        let bytes = 512.0 * MB;
        let t_bid = ring_all_reduce(bytes, 64, &bid);
        let t_uni = ring_all_reduce(bytes, 64, &uni);
        assert!((t_uni / t_bid - 2.0).abs() < 0.05);
    }

    #[test]
    fn all_to_all_grows_superlinearly_with_ring() {
        let p = IciParams::tpu_v4();
        let bytes = 64.0 * MB;
        let t16 = ring_all_to_all(bytes, 16, &p);
        let t64 = ring_all_to_all(bytes, 64, &p);
        // Per the len²/4 link bound, 4× members ≈ 4× time at fixed bytes.
        assert!(t64 / t16 > 3.0 && t64 / t16 < 5.0, "ratio {}", t64 / t16);
    }

    #[test]
    fn allreduce_bandwidth_is_nearly_member_count_independent() {
        // The deep property behind Table 2's trade-offs: ring all-reduce
        // costs ~2·bytes/bw almost regardless of how many members share
        // the reduction — reducing over 4096 chips (16×16×16) costs only
        // slightly more than over 16, because later dimensions handle
        // already-scattered (smaller) payloads.
        let p = IciParams::tpu_v4();
        let bytes = 256.0 * MB;
        let bw3 = all_reduce_bandwidth(bytes, &[16, 16, 16], &p);
        let bw1 = all_reduce_bandwidth(bytes, &[16], &p);
        assert!(bw3 < bw1, "extra dimensions add (small) extra cost");
        assert!(bw3 > 0.85 * bw1, "...but only ~1/16th per extra dimension");
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_dims_rejected() {
        let _ = torus_all_reduce(1.0, &[], &IciParams::tpu_v4());
    }
}
