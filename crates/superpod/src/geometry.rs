//! Cubes, dimensions, and pod constants.

use serde::{Deserialize, Serialize};

/// Chips along one edge of an elemental cube.
pub const CUBE_EDGE: usize = 4;
/// Chips per elemental cube (4×4×4 = 64, one rack).
pub const CHIPS_PER_CUBE: usize = CUBE_EDGE * CUBE_EDGE * CUBE_EDGE;
/// Cubes in a full superpod.
pub const POD_CUBES: usize = 64;
/// Chips in a full superpod (64² = 4096).
pub const POD_CHIPS: usize = POD_CUBES * CHIPS_PER_CUBE;
/// Optical links per cube face (4×4 chip positions).
pub const LINKS_PER_FACE: usize = CUBE_EDGE * CUBE_EDGE;

/// An elemental cube (= one rack) within the pod, 0..63.
pub type CubeId = u8;

/// A torus dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dim {
    /// First dimension.
    X,
    /// Second dimension.
    Y,
    /// Third dimension.
    Z,
}

impl Dim {
    /// All dimensions in order.
    pub const ALL: [Dim; 3] = [Dim::X, Dim::Y, Dim::Z];

    /// Index 0/1/2.
    pub fn index(self) -> usize {
        match self {
            Dim::X => 0,
            Dim::Y => 1,
            Dim::Z => 2,
        }
    }
}

/// Position of a chip inside its cube, each coordinate in 0..4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChipInCube {
    /// x within cube.
    pub x: u8,
    /// y within cube.
    pub y: u8,
    /// z within cube.
    pub z: u8,
}

impl ChipInCube {
    /// From a linear index 0..64 (x fastest).
    pub fn from_index(i: usize) -> ChipInCube {
        assert!(i < CHIPS_PER_CUBE, "chip index {i} out of range");
        ChipInCube {
            x: (i % CUBE_EDGE) as u8,
            y: ((i / CUBE_EDGE) % CUBE_EDGE) as u8,
            z: (i / (CUBE_EDGE * CUBE_EDGE)) as u8,
        }
    }

    /// Linear index 0..64.
    pub fn index(self) -> usize {
        self.x as usize + CUBE_EDGE * (self.y as usize + CUBE_EDGE * self.z as usize)
    }

    /// The face-link index (0..16) this chip uses when its `dim`
    /// coordinate is at a cube boundary: the position within the 4×4 face,
    /// ordered by the two non-`dim` coordinates.
    pub fn face_link_index(self, dim: Dim) -> usize {
        let (a, b) = match dim {
            Dim::X => (self.y, self.z),
            Dim::Y => (self.x, self.z),
            Dim::Z => (self.x, self.y),
        };
        a as usize + CUBE_EDGE * b as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(CHIPS_PER_CUBE, 64);
        assert_eq!(POD_CHIPS, 4096);
        assert_eq!(LINKS_PER_FACE, 16);
        // 96 optical links per cube = 6 faces × 16.
        assert_eq!(6 * LINKS_PER_FACE, 96);
    }

    #[test]
    fn chip_index_roundtrip() {
        for i in 0..CHIPS_PER_CUBE {
            assert_eq!(ChipInCube::from_index(i).index(), i);
        }
    }

    #[test]
    fn face_link_indices_cover_the_face() {
        // The 16 chips on the +X face (x == 3) map onto 16 distinct links.
        let mut seen = [false; LINKS_PER_FACE];
        for i in 0..CHIPS_PER_CUBE {
            let c = ChipInCube::from_index(i);
            if c.x == 3 {
                let k = c.face_link_index(Dim::X);
                assert!(!seen[k], "duplicate face link {k}");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn opposite_faces_use_same_link_index() {
        // A chip at x=0 and the chip at x=3 with the same (y,z) share a
        // face-link index — that is what lets opposing faces land on the
        // same OCS and close rings.
        let a = ChipInCube { x: 0, y: 2, z: 1 };
        let b = ChipInCube { x: 3, y: 2, z: 1 };
        assert_eq!(a.face_link_index(Dim::X), b.face_link_index(Dim::X));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_chip_index_panics() {
        let _ = ChipInCube::from_index(64);
    }
}
