//! Higher-dimensional tori — the §6 future-work use case.
//!
//! "For ML, a different use case is supporting higher-dimensional
//! topologies such as a 4D or 6D torus that has a larger bisection
//! bandwidth, lower latency and greater scalability compared to a 3D
//! torus." The lightwave fabric makes this a wiring-plan change, not a
//! forklift: more OCS groups, one per dimension.
//!
//! This module generalizes the slice torus to N dimensions and quantifies
//! exactly those claims: bisection, diameter, mean distance, per-chip
//! link count, and the OCS count a pod-scale fabric would need.

use crate::geometry::{CUBE_EDGE, LINKS_PER_FACE};
use serde::{Deserialize, Serialize};

/// An N-dimensional torus of chips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TorusNd {
    dims: Vec<usize>,
}

impl TorusNd {
    /// Builds an N-dimensional torus.
    ///
    /// # Panics
    /// Panics unless every dimension is ≥ 2 and there is at least one.
    pub fn new(dims: Vec<usize>) -> TorusNd {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d >= 2), "dimensions must be ≥ 2");
        TorusNd { dims }
    }

    /// The most-balanced N-dimensional torus with (at least) `chips` chips:
    /// every dimension gets `chips^(1/n)` rounded to an integer grid.
    ///
    /// # Panics
    /// Panics if `chips` is not a perfect n-th power of an integer ≥ 2.
    pub fn balanced(chips: usize, n: usize) -> TorusNd {
        assert!(n >= 1);
        let edge = (chips as f64).powf(1.0 / n as f64).round() as usize;
        assert!(
            edge.pow(n as u32) == chips && edge >= 2,
            "{chips} chips do not form a balanced {n}D torus"
        );
        TorusNd::new(vec![edge; n])
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Dimensionality.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Chip count.
    pub fn chips(&self) -> usize {
        self.dims.iter().product()
    }

    /// Links per chip (one per dimension direction).
    pub fn links_per_chip(&self) -> usize {
        2 * self.dims.len()
    }

    /// Bisection width in links: cutting the largest dimension severs
    /// `2 · chips / max_dim` links (forward + wraparound).
    pub fn bisection_links(&self) -> usize {
        let max_dim = *self.dims.iter().max().expect("non-empty");
        2 * self.chips() / max_dim
    }

    /// Diameter: sum of half-ring lengths.
    pub fn diameter(&self) -> usize {
        self.dims.iter().map(|&d| d / 2).sum()
    }

    /// Exact mean shortest-path distance.
    pub fn mean_distance(&self) -> f64 {
        self.dims
            .iter()
            .map(|&l| {
                if l % 2 == 0 {
                    l as f64 / 4.0
                } else {
                    (l * l - 1) as f64 / (4.0 * l as f64)
                }
            })
            .sum()
    }

    /// OCS groups a pod-scale fabric needs for this dimensionality with
    /// 4-chip-edge electrical cubes: one group of [`LINKS_PER_FACE`]
    /// switches per dimension whose extent exceeds one cube.
    ///
    /// (The 3D production pod: 3 dimensions × 16 = 48 OCSes.)
    pub fn ocs_groups(&self) -> usize {
        self.dims.iter().filter(|&&d| d > CUBE_EDGE).count() * LINKS_PER_FACE
    }
}

/// One directed inter-chip link of an N-dimensional torus: chip `chip`'s
/// +direction ICI link in dimension `dim`. Every chip owns exactly one
/// such link per dimension (its − link is the + link of the wraparound
/// predecessor), so `n_dims · chips` links cover the whole fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NdLink {
    /// Dimension of travel.
    pub dim: u16,
    /// Row-major chip index of the link's source chip.
    pub chip: u32,
}

/// A live link lease handed out by [`NdLinkAllocator::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NdLease(pub u64);

/// Why an allocator operation was refused (nothing was changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NdAllocError {
    /// The request names a link outside the torus.
    OutOfRange(NdLink),
    /// The request names a link another lease already holds.
    LinkBusy(NdLink),
    /// The lease is not live (never issued, or already released).
    UnknownLease(NdLease),
}

impl std::fmt::Display for NdAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NdAllocError::OutOfRange(l) => {
                write!(
                    f,
                    "link (dim {}, chip {}) is outside the torus",
                    l.dim, l.chip
                )
            }
            NdAllocError::LinkBusy(l) => {
                write!(f, "link (dim {}, chip {}) is already leased", l.dim, l.chip)
            }
            NdAllocError::UnknownLease(h) => write!(f, "lease {} is not live", h.0),
        }
    }
}

impl std::error::Error for NdAllocError {}

/// Transactional link allocator for slices of an N-dimensional torus —
/// the resource-accounting half of the §6 use case. A slice's compose
/// claims its chips' ICI links atomically (all or nothing, never a link
/// two slices both hold); its release restores the free set exactly.
#[derive(Debug, Clone)]
pub struct NdLinkAllocator {
    torus: TorusNd,
    free: std::collections::BTreeSet<NdLink>,
    leases: std::collections::BTreeMap<u64, std::collections::BTreeSet<NdLink>>,
    next_lease: u64,
}

impl NdLinkAllocator {
    /// An allocator with every link of `torus` free.
    pub fn new(torus: TorusNd) -> NdLinkAllocator {
        let mut free = std::collections::BTreeSet::new();
        for dim in 0..torus.n_dims() {
            for chip in 0..torus.chips() {
                free.insert(NdLink {
                    dim: dim as u16,
                    chip: chip as u32,
                });
            }
        }
        NdLinkAllocator {
            torus,
            free,
            leases: std::collections::BTreeMap::new(),
            next_lease: 0,
        }
    }

    /// The torus this allocator manages.
    pub fn torus(&self) -> &TorusNd {
        &self.torus
    }

    /// Total links in the fabric.
    pub fn capacity(&self) -> usize {
        self.torus.n_dims() * self.torus.chips()
    }

    /// Links currently free.
    pub fn free_links(&self) -> usize {
        self.free.len()
    }

    /// Live leases.
    pub fn live_leases(&self) -> usize {
        self.leases.len()
    }

    /// A snapshot of the free-link set (exact-restore checks in tests).
    pub fn free_set(&self) -> &std::collections::BTreeSet<NdLink> {
        &self.free
    }

    /// The links a sub-block slice at `origin` with `extent` chips per
    /// dimension needs: every chip in the block contributes its + link
    /// in every dimension (coordinates wrap). Returns `None` if the
    /// shapes don't match the torus or an extent is 0 or oversized.
    pub fn block_request(
        &self,
        origin: &[usize],
        extent: &[usize],
    ) -> Option<std::collections::BTreeSet<NdLink>> {
        let dims = self.torus.dims();
        if origin.len() != dims.len() || extent.len() != dims.len() {
            return None;
        }
        if extent.iter().zip(dims).any(|(&e, &d)| e == 0 || e > d) {
            return None;
        }
        let mut links = std::collections::BTreeSet::new();
        let block: usize = extent.iter().product();
        for flat in 0..block {
            // Decode `flat` into block coordinates, offset by the origin
            // (mod the torus), re-encode row-major into a chip index.
            let mut rem = flat;
            let mut chip = 0usize;
            for (d, (&e, &size)) in extent.iter().zip(dims).enumerate() {
                let coord = (origin[d] + rem % e) % size;
                rem /= e;
                chip = chip * size + coord;
            }
            for dim in 0..dims.len() {
                links.insert(NdLink {
                    dim: dim as u16,
                    chip: chip as u32,
                });
            }
        }
        Some(links)
    }

    /// Atomically claims every link in `request`. On any error nothing is
    /// allocated: the first out-of-range or busy link (in link order) is
    /// named and the free set is untouched.
    pub fn allocate(
        &mut self,
        request: &std::collections::BTreeSet<NdLink>,
    ) -> Result<NdLease, NdAllocError> {
        for &l in request {
            if l.dim as usize >= self.torus.n_dims() || l.chip as usize >= self.torus.chips() {
                return Err(NdAllocError::OutOfRange(l));
            }
            if !self.free.contains(&l) {
                return Err(NdAllocError::LinkBusy(l));
            }
        }
        for l in request {
            self.free.remove(l);
        }
        let id = self.next_lease;
        self.next_lease += 1;
        self.leases.insert(id, request.clone());
        Ok(NdLease(id))
    }

    /// Releases a lease, restoring its links to the free set. Returns
    /// how many links were freed.
    pub fn release(&mut self, lease: NdLease) -> Result<usize, NdAllocError> {
        let links = self
            .leases
            .remove(&lease.0)
            .ok_or(NdAllocError::UnknownLease(lease))?;
        let n = links.len();
        for l in links {
            let fresh = self.free.insert(l);
            debug_assert!(fresh, "a leased link can never also be free");
        }
        Ok(n)
    }
}

/// Compares two torus organizations of the same chip count — the §6
/// trade-study row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TorusComparison {
    /// The organizations compared.
    pub tori: Vec<TorusNd>,
}

impl TorusComparison {
    /// Balanced 3D/4D/6D organizations of `chips` chips (when they exist).
    pub fn standard(chips: usize) -> TorusComparison {
        let mut tori = Vec::new();
        for n in [3usize, 4, 6] {
            let edge = (chips as f64).powf(1.0 / n as f64).round() as usize;
            if edge >= 2 && edge.pow(n as u32) == chips {
                tori.push(TorusNd::new(vec![edge; n]));
            }
        }
        TorusComparison { tori }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_organizations_of_4096_chips() {
        // 4096 = 16³ = 8⁴ = 4⁶: all three §6 organizations exist.
        let cmp = TorusComparison::standard(4096);
        assert_eq!(cmp.tori.len(), 3);
        assert_eq!(cmp.tori[0].dims(), &[16, 16, 16]);
        assert_eq!(cmp.tori[1].dims(), &[8, 8, 8, 8]);
        assert_eq!(cmp.tori[2].dims(), &[4, 4, 4, 4, 4, 4]);
    }

    #[test]
    fn higher_dimensions_raise_bisection() {
        // §6: "a 4D or 6D torus ... has a larger bisection bandwidth".
        let t3 = TorusNd::balanced(4096, 3);
        let t4 = TorusNd::balanced(4096, 4);
        let t6 = TorusNd::balanced(4096, 6);
        assert_eq!(t3.bisection_links(), 512);
        assert_eq!(t4.bisection_links(), 1024);
        assert_eq!(t6.bisection_links(), 2048);
        assert!(t4.bisection_links() > t3.bisection_links());
        assert!(t6.bisection_links() > t4.bisection_links());
    }

    #[test]
    fn higher_dimensions_cut_latency() {
        // §6: "... lower latency".
        let t3 = TorusNd::balanced(4096, 3);
        let t4 = TorusNd::balanced(4096, 4);
        let t6 = TorusNd::balanced(4096, 6);
        assert_eq!(t3.diameter(), 24);
        assert_eq!(t4.diameter(), 16);
        assert_eq!(t6.diameter(), 12);
        assert!(t6.mean_distance() < t4.mean_distance());
        assert!(t4.mean_distance() < t3.mean_distance());
    }

    #[test]
    fn the_cost_is_links_and_switches() {
        // The trade: every extra dimension costs 2 more ICI ports per chip
        // and another group of 16 OCSes.
        let t3 = TorusNd::balanced(4096, 3);
        let t6 = TorusNd::balanced(4096, 6);
        assert_eq!(t3.links_per_chip(), 6);
        assert_eq!(t6.links_per_chip(), 12);
        assert_eq!(t3.ocs_groups(), 48, "the production 3D pod");
        // A balanced 6D pod of 4-chip edges closes every ring inside the
        // rack: zero optical groups (it simply cannot grow), whereas an
        // 8×8×8×8 4D pod needs 64 switches.
        assert_eq!(t6.ocs_groups(), 0);
        assert_eq!(TorusNd::balanced(4096, 4).ocs_groups(), 64);
    }

    #[test]
    fn mean_distance_matches_3d_module() {
        use crate::slice::SliceShape;
        use crate::torus::Torus;
        let nd = TorusNd::new(vec![16, 16, 16]);
        let t3 = Torus::new(SliceShape::new(16, 16, 16).expect("valid"));
        assert!((nd.mean_distance() - t3.mean_distance()).abs() < 1e-12);
        assert_eq!(nd.diameter(), t3.diameter());
    }

    #[test]
    #[should_panic(expected = "do not form a balanced")]
    fn unbalanced_chip_count_rejected() {
        let _ = TorusNd::balanced(4000, 3);
    }

    #[test]
    fn allocator_claims_and_restores_a_block() {
        let mut a = NdLinkAllocator::new(TorusNd::new(vec![4, 4, 4, 4]));
        assert_eq!(a.capacity(), 4 * 256);
        let before = a.free_set().clone();
        let req = a.block_request(&[0, 0, 0, 0], &[2, 2, 2, 2]).unwrap();
        assert_eq!(req.len(), 16 * 4, "16 chips × 4 dims");
        let lease = a.allocate(&req).unwrap();
        assert_eq!(a.free_links(), a.capacity() - req.len());
        assert_eq!(a.release(lease).unwrap(), req.len());
        assert_eq!(a.free_set(), &before, "free set restored exactly");
        assert_eq!(
            a.release(lease).unwrap_err(),
            NdAllocError::UnknownLease(lease),
            "double release is refused"
        );
    }

    #[test]
    fn overlapping_blocks_never_double_allocate() {
        let mut a = NdLinkAllocator::new(TorusNd::new(vec![4, 4]));
        let r1 = a.block_request(&[0, 0], &[2, 4]).unwrap();
        let r2 = a.block_request(&[1, 0], &[2, 4]).unwrap(); // shares column 1
        a.allocate(&r1).unwrap();
        let busy = match a.allocate(&r2).unwrap_err() {
            NdAllocError::LinkBusy(l) => l,
            other => panic!("unexpected: {other:?}"),
        };
        assert!(r1.contains(&busy), "the named link is held by lease 1");
        // Atomicity: the failed allocation claimed nothing.
        assert_eq!(a.free_links(), a.capacity() - r1.len());
        // The disjoint remainder still fits.
        let r3 = a.block_request(&[2, 0], &[2, 4]).unwrap();
        a.allocate(&r3).unwrap();
        assert_eq!(a.free_links(), 0, "two half-pods fill a 4×4 torus");
    }

    #[test]
    fn malformed_block_requests_are_refused() {
        let a = NdLinkAllocator::new(TorusNd::new(vec![4, 4, 4]));
        assert!(a.block_request(&[0, 0], &[2, 2, 2]).is_none(), "rank");
        assert!(a.block_request(&[0, 0, 0], &[0, 2, 2]).is_none(), "empty");
        assert!(a.block_request(&[0, 0, 0], &[5, 2, 2]).is_none(), "fat");
        let oob = std::collections::BTreeSet::from([NdLink { dim: 3, chip: 0 }]);
        let mut a = a;
        assert_eq!(
            a.allocate(&oob).unwrap_err(),
            NdAllocError::OutOfRange(NdLink { dim: 3, chip: 0 })
        );
    }
}
