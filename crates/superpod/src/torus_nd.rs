//! Higher-dimensional tori — the §6 future-work use case.
//!
//! "For ML, a different use case is supporting higher-dimensional
//! topologies such as a 4D or 6D torus that has a larger bisection
//! bandwidth, lower latency and greater scalability compared to a 3D
//! torus." The lightwave fabric makes this a wiring-plan change, not a
//! forklift: more OCS groups, one per dimension.
//!
//! This module generalizes the slice torus to N dimensions and quantifies
//! exactly those claims: bisection, diameter, mean distance, per-chip
//! link count, and the OCS count a pod-scale fabric would need.

use crate::geometry::{CUBE_EDGE, LINKS_PER_FACE};
use serde::{Deserialize, Serialize};

/// An N-dimensional torus of chips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TorusNd {
    dims: Vec<usize>,
}

impl TorusNd {
    /// Builds an N-dimensional torus.
    ///
    /// # Panics
    /// Panics unless every dimension is ≥ 2 and there is at least one.
    pub fn new(dims: Vec<usize>) -> TorusNd {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d >= 2), "dimensions must be ≥ 2");
        TorusNd { dims }
    }

    /// The most-balanced N-dimensional torus with (at least) `chips` chips:
    /// every dimension gets `chips^(1/n)` rounded to an integer grid.
    ///
    /// # Panics
    /// Panics if `chips` is not a perfect n-th power of an integer ≥ 2.
    pub fn balanced(chips: usize, n: usize) -> TorusNd {
        assert!(n >= 1);
        let edge = (chips as f64).powf(1.0 / n as f64).round() as usize;
        assert!(
            edge.pow(n as u32) == chips && edge >= 2,
            "{chips} chips do not form a balanced {n}D torus"
        );
        TorusNd::new(vec![edge; n])
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Dimensionality.
    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Chip count.
    pub fn chips(&self) -> usize {
        self.dims.iter().product()
    }

    /// Links per chip (one per dimension direction).
    pub fn links_per_chip(&self) -> usize {
        2 * self.dims.len()
    }

    /// Bisection width in links: cutting the largest dimension severs
    /// `2 · chips / max_dim` links (forward + wraparound).
    pub fn bisection_links(&self) -> usize {
        let max_dim = *self.dims.iter().max().expect("non-empty");
        2 * self.chips() / max_dim
    }

    /// Diameter: sum of half-ring lengths.
    pub fn diameter(&self) -> usize {
        self.dims.iter().map(|&d| d / 2).sum()
    }

    /// Exact mean shortest-path distance.
    pub fn mean_distance(&self) -> f64 {
        self.dims
            .iter()
            .map(|&l| {
                if l % 2 == 0 {
                    l as f64 / 4.0
                } else {
                    (l * l - 1) as f64 / (4.0 * l as f64)
                }
            })
            .sum()
    }

    /// OCS groups a pod-scale fabric needs for this dimensionality with
    /// 4-chip-edge electrical cubes: one group of [`LINKS_PER_FACE`]
    /// switches per dimension whose extent exceeds one cube.
    ///
    /// (The 3D production pod: 3 dimensions × 16 = 48 OCSes.)
    pub fn ocs_groups(&self) -> usize {
        self.dims.iter().filter(|&&d| d > CUBE_EDGE).count() * LINKS_PER_FACE
    }
}

/// Compares two torus organizations of the same chip count — the §6
/// trade-study row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TorusComparison {
    /// The organizations compared.
    pub tori: Vec<TorusNd>,
}

impl TorusComparison {
    /// Balanced 3D/4D/6D organizations of `chips` chips (when they exist).
    pub fn standard(chips: usize) -> TorusComparison {
        let mut tori = Vec::new();
        for n in [3usize, 4, 6] {
            let edge = (chips as f64).powf(1.0 / n as f64).round() as usize;
            if edge >= 2 && edge.pow(n as u32) == chips {
                tori.push(TorusNd::new(vec![edge; n]));
            }
        }
        TorusComparison { tori }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_organizations_of_4096_chips() {
        // 4096 = 16³ = 8⁴ = 4⁶: all three §6 organizations exist.
        let cmp = TorusComparison::standard(4096);
        assert_eq!(cmp.tori.len(), 3);
        assert_eq!(cmp.tori[0].dims(), &[16, 16, 16]);
        assert_eq!(cmp.tori[1].dims(), &[8, 8, 8, 8]);
        assert_eq!(cmp.tori[2].dims(), &[4, 4, 4, 4, 4, 4]);
    }

    #[test]
    fn higher_dimensions_raise_bisection() {
        // §6: "a 4D or 6D torus ... has a larger bisection bandwidth".
        let t3 = TorusNd::balanced(4096, 3);
        let t4 = TorusNd::balanced(4096, 4);
        let t6 = TorusNd::balanced(4096, 6);
        assert_eq!(t3.bisection_links(), 512);
        assert_eq!(t4.bisection_links(), 1024);
        assert_eq!(t6.bisection_links(), 2048);
        assert!(t4.bisection_links() > t3.bisection_links());
        assert!(t6.bisection_links() > t4.bisection_links());
    }

    #[test]
    fn higher_dimensions_cut_latency() {
        // §6: "... lower latency".
        let t3 = TorusNd::balanced(4096, 3);
        let t4 = TorusNd::balanced(4096, 4);
        let t6 = TorusNd::balanced(4096, 6);
        assert_eq!(t3.diameter(), 24);
        assert_eq!(t4.diameter(), 16);
        assert_eq!(t6.diameter(), 12);
        assert!(t6.mean_distance() < t4.mean_distance());
        assert!(t4.mean_distance() < t3.mean_distance());
    }

    #[test]
    fn the_cost_is_links_and_switches() {
        // The trade: every extra dimension costs 2 more ICI ports per chip
        // and another group of 16 OCSes.
        let t3 = TorusNd::balanced(4096, 3);
        let t6 = TorusNd::balanced(4096, 6);
        assert_eq!(t3.links_per_chip(), 6);
        assert_eq!(t6.links_per_chip(), 12);
        assert_eq!(t3.ocs_groups(), 48, "the production 3D pod");
        // A balanced 6D pod of 4-chip edges closes every ring inside the
        // rack: zero optical groups (it simply cannot grow), whereas an
        // 8×8×8×8 4D pod needs 64 switches.
        assert_eq!(t6.ocs_groups(), 0);
        assert_eq!(TorusNd::balanced(4096, 4).ocs_groups(), 64);
    }

    #[test]
    fn mean_distance_matches_3d_module() {
        use crate::slice::SliceShape;
        use crate::torus::Torus;
        let nd = TorusNd::new(vec![16, 16, 16]);
        let t3 = Torus::new(SliceShape::new(16, 16, 16).expect("valid"));
        assert!((nd.mean_distance() - t3.mean_distance()).abs() < 1e-12);
        assert_eq!(nd.diameter(), t3.diameter());
    }

    #[test]
    #[should_panic(expected = "do not form a balanced")]
    fn unbalanced_chip_count_rejected() {
        let _ = TorusNd::balanced(4000, 3);
    }
}
