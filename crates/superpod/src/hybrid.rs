//! Hybrid ICI-DCN scale-out: training across multiple superpods (§2.2.2).
//!
//! Models too large for one pod combine the scale-up ICI fabric with the
//! scale-out DCN (Fig. 2): collectives run *within* each pod on the ICI
//! torus and *between* pods over the datacenter network. The two fabrics
//! are wildly asymmetric — "the scale-up ICI within a superpod provides
//! 50–100× more bandwidth than the DCN" — so the cross-pod phase of a
//! collective is the critical path, and the paper's end-to-end
//! optimization (adapting collectives to the bandwidth ratio, Fig. 2c's
//! *two counter-rotating rings*, and DCN topology engineering for the
//! pod-to-pod trunks) is what keeps it tolerable.
//!
//! The canonical hierarchical all-reduce across `M` pods:
//!
//! 1. reduce-scatter inside each pod over the ICI dimensions;
//! 2. all-reduce of the scattered shards across pods over the DCN
//!    (Fig. 2c: the shards travel two rings at once);
//! 3. all-gather inside each pod, mirroring step 1.

use crate::collective::{ring_all_gather, ring_reduce_scatter, IciParams};
use serde::{Deserialize, Serialize};

/// DCN resources available to one pod for the training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DcnParams {
    /// Aggregate pod-to-pod bandwidth per pod, bytes/second (the hosts'
    /// DCN NICs, after topology engineering grants the trunks).
    pub pod_bandwidth: f64,
    /// Pod-to-pod one-way latency, seconds.
    pub latency: f64,
    /// Whether the collective runs two counter-rotating rings (Fig. 2c's
    /// red and blue), doubling usable bandwidth.
    pub two_rings: bool,
}

impl DcnParams {
    /// A representative production configuration: the job's share of the
    /// pod's DCN trunks ≈ 300 GB/s (what keeps the ICI:DCN bisection
    /// asymmetry in the paper's 50–100× band), 10 µs across the
    /// datacenter floor, two-ring collectives on.
    pub fn production() -> DcnParams {
        DcnParams {
            pod_bandwidth: 300e9,
            latency: 10e-6,
            two_rings: true,
        }
    }

    /// Effective ring bandwidth.
    pub fn ring_bandwidth(&self) -> f64 {
        if self.two_rings {
            2.0 * self.pod_bandwidth
        } else {
            self.pod_bandwidth
        }
    }
}

/// Time breakdown of a hybrid all-reduce.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridAllReduce {
    /// Intra-pod reduce-scatter seconds (ICI).
    pub ici_reduce_scatter: f64,
    /// Cross-pod all-reduce seconds (DCN) — usually the critical path.
    pub dcn_phase: f64,
    /// Intra-pod all-gather seconds (ICI).
    pub ici_all_gather: f64,
}

impl HybridAllReduce {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.ici_reduce_scatter + self.dcn_phase + self.ici_all_gather
    }

    /// Fraction of the time spent on the DCN.
    pub fn dcn_fraction(&self) -> f64 {
        self.dcn_phase / self.total()
    }
}

/// Hierarchical all-reduce of `bytes` (per pod replica) across `pods`
/// pods, each scattering internally over ICI rings of `ici_dims`.
///
/// # Panics
/// Panics unless `pods ≥ 1` and `ici_dims` is non-empty.
pub fn hybrid_all_reduce(
    bytes: f64,
    ici_dims: &[usize],
    pods: usize,
    ici: &IciParams,
    dcn: &DcnParams,
) -> HybridAllReduce {
    assert!(pods >= 1, "need at least one pod");
    assert!(!ici_dims.is_empty(), "need ICI dimensions");
    // 1. Intra-pod reduce-scatter, dimension by dimension.
    let mut ici_rs = 0.0;
    let mut payload = bytes;
    for &len in ici_dims {
        ici_rs += ring_reduce_scatter(payload, len, ici);
        payload /= len as f64;
    }
    // 2. Cross-pod all-reduce of the scattered shards. Every chip holds
    // `payload` bytes; in aggregate each pod exchanges `bytes` over its
    // DCN trunks in a ring of `pods` members.
    let dcn_phase = if pods > 1 {
        let steps = (pods - 1) as f64;
        2.0 * steps * (bytes / pods as f64) / dcn.ring_bandwidth() + 2.0 * steps * dcn.latency
    } else {
        0.0
    };
    // 3. Intra-pod all-gather, mirroring step 1.
    let mut ici_ag = 0.0;
    for &len in ici_dims.iter().rev() {
        payload *= len as f64;
        ici_ag += ring_all_gather(payload, len, ici);
    }
    HybridAllReduce {
        ici_reduce_scatter: ici_rs,
        dcn_phase,
        ici_all_gather: ici_ag,
    }
}

/// The ICI:DCN bandwidth asymmetry for a pod: ICI *bisection* bandwidth
/// of the symmetric torus versus the pod's DCN bandwidth. The paper
/// quotes 50–100× (§2.2).
pub fn bandwidth_asymmetry(pod_chips: usize, ici: &IciParams, dcn: &DcnParams) -> f64 {
    // A symmetric 3D torus of N chips has 2·N^(2/3) links across its
    // narrowest cut (forward + wraparound).
    let bisection_links = 2.0 * (pod_chips as f64).powf(2.0 / 3.0);
    bisection_links * ici.link_bandwidth / dcn.pod_bandwidth
}

/// Scaling efficiency of data parallelism across pods: throughput with
/// `pods` pods relative to `pods`× a single pod, for a step of
/// `compute_secs` and a gradient all-reduce of `grad_bytes` (per pod).
///
/// With more pods the batch (and compute per pod) stays fixed — weak
/// scaling — so efficiency is pure communication dilution.
pub fn scaling_efficiency(
    compute_secs: f64,
    grad_bytes: f64,
    ici_dims: &[usize],
    pods: usize,
    ici: &IciParams,
    dcn: &DcnParams,
) -> f64 {
    assert!(compute_secs > 0.0);
    let single = compute_secs + hybrid_all_reduce(grad_bytes, ici_dims, 1, ici, dcn).total();
    let multi = compute_secs + hybrid_all_reduce(grad_bytes, ici_dims, pods, ici, dcn).total();
    single / multi
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    fn ici() -> IciParams {
        IciParams::tpu_v4()
    }

    fn dcn() -> DcnParams {
        DcnParams::production()
    }

    #[test]
    fn single_pod_has_no_dcn_phase() {
        let r = hybrid_all_reduce(10.0 * GB, &[16, 16, 16], 1, &ici(), &dcn());
        assert_eq!(r.dcn_phase, 0.0);
        assert!(r.total() > 0.0);
    }

    #[test]
    fn dcn_is_on_the_critical_path() {
        // §2.2.2: "the transfers over the DCN network during c) are still
        // on the critical path and delays can substantially affect the
        // model throughput" — the cross-pod phase is a material, blocking
        // fraction of the collective even though the DCN moves a 4096×
        // smaller shard per chip.
        let r = hybrid_all_reduce(10.0 * GB, &[16, 16, 16], 4, &ici(), &dcn());
        assert!(
            r.dcn_fraction() > 0.1,
            "DCN fraction {:.2} should be material",
            r.dcn_fraction()
        );
        // And it is pure overhead versus single-pod training.
        let single = hybrid_all_reduce(10.0 * GB, &[16, 16, 16], 1, &ici(), &dcn());
        assert!(r.total() > 1.1 * single.total());
    }

    #[test]
    fn bandwidth_asymmetry_matches_paper_range() {
        // "the scale-up ICI within a superpod provides 50–100× more
        // bandwidth than the DCN".
        let asym = bandwidth_asymmetry(4096, &ici(), &dcn());
        assert!(
            (50.0..=400.0).contains(&asym),
            "asymmetry {asym:.0}× out of plausible range"
        );
    }

    #[test]
    fn two_rings_halve_the_dcn_phase() {
        let one = DcnParams {
            two_rings: false,
            ..dcn()
        };
        let r1 = hybrid_all_reduce(10.0 * GB, &[16, 16], 4, &ici(), &one);
        let r2 = hybrid_all_reduce(10.0 * GB, &[16, 16], 4, &ici(), &dcn());
        let ratio = r1.dcn_phase / r2.dcn_phase;
        assert!((1.9..2.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn more_pods_approach_bandwidth_asymptote() {
        // Ring all-reduce over M pods costs 2·(M−1)/M · bytes/bw → the
        // DCN phase saturates rather than growing linearly.
        let r2 = hybrid_all_reduce(10.0 * GB, &[16, 16], 2, &ici(), &dcn()).dcn_phase;
        let r8 = hybrid_all_reduce(10.0 * GB, &[16, 16], 8, &ici(), &dcn()).dcn_phase;
        assert!(r8 < 2.0 * r2, "8 pods cost {r8:.4}s vs 2 pods {r2:.4}s");
    }

    #[test]
    fn scaling_efficiency_degrades_then_stabilizes() {
        let grad = 35.0 * GB;
        let compute = 2.0;
        let e2 = scaling_efficiency(compute, grad, &[16, 16, 16], 2, &ici(), &dcn());
        let e4 = scaling_efficiency(compute, grad, &[16, 16, 16], 4, &ici(), &dcn());
        let e16 = scaling_efficiency(compute, grad, &[16, 16, 16], 16, &ici(), &dcn());
        assert!(e2 > e4 && e4 > e16, "efficiency decreases with pods");
        assert!(
            e16 > 0.5,
            "but the ring asymptote keeps it workable: {e16:.2}"
        );
        assert!(e2 < 1.0);
    }

    #[test]
    fn more_dcn_bandwidth_helps_exactly_where_te_would_add_it() {
        // The co-optimization story: granting a pod more DCN trunks (what
        // DCN topology engineering does for pod-to-pod traffic) speeds the
        // hybrid step.
        let thin = DcnParams {
            pod_bandwidth: 0.1e12,
            ..dcn()
        };
        let fat = DcnParams {
            pod_bandwidth: 0.8e12,
            ..dcn()
        };
        let a_thin = hybrid_all_reduce(10.0 * GB, &[16, 16], 4, &ici(), &thin);
        let a_fat = hybrid_all_reduce(10.0 * GB, &[16, 16], 4, &ici(), &fat);
        assert!(a_fat.total() < a_thin.total());
        let ratio = a_thin.dcn_phase / a_fat.dcn_phase;
        assert!(
            (7.5..8.5).contains(&ratio),
            "8x trunks ≈ 8x faster DCN phase: {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one pod")]
    fn zero_pods_rejected() {
        let _ = hybrid_all_reduce(1.0, &[4], 0, &ici(), &dcn());
    }
}
