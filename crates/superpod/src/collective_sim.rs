//! Step-level collective simulation on the chip torus.
//!
//! The α-β formulas in [`crate::collective`] assume every link is equal.
//! Real fabrics are not: an OCS circuit on a spare mirror runs hotter on
//! loss, a marginal lane drops to a lower negotiated rate, and — because
//! ring collectives are *synchronous* — one slow link stalls every chip in
//! the ring at every step. This simulator executes a torus all-reduce
//! round by round against a caller-supplied per-link bandwidth map and
//! reports where the time went, which both validates the analytic model
//! (uniform map ⇒ same numbers) and quantifies the straggler effect the
//! paper's availability machinery exists to avoid.

use crate::slice::SliceShape;
use crate::torus::{Chip, Torus};
use serde::{Deserialize, Serialize};

/// Per-link bandwidth oracle: bytes/second for the link leaving `chip`
/// in `±dim` (`forward`).
pub trait LinkBandwidth {
    /// Bandwidth of one directed link.
    fn bandwidth(&self, chip: Chip, dim: usize, forward: bool) -> f64;
}

/// Uniform bandwidth everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform(pub f64);

impl LinkBandwidth for Uniform {
    fn bandwidth(&self, _chip: Chip, _dim: usize, _forward: bool) -> f64 {
        self.0
    }
}

/// Uniform bandwidth with one derated (straggler) directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WithStraggler {
    /// The healthy bandwidth.
    pub base: f64,
    /// The straggler's location.
    pub chip: Chip,
    /// The straggler's dimension.
    pub dim: usize,
    /// The straggler's bandwidth.
    pub derated: f64,
}

impl LinkBandwidth for WithStraggler {
    fn bandwidth(&self, chip: Chip, dim: usize, forward: bool) -> f64 {
        if forward && chip == self.chip && dim == self.dim {
            self.derated
        } else {
            self.base
        }
    }
}

/// Outcome of a simulated collective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Total seconds.
    pub total: f64,
    /// Seconds per phase (one reduce-scatter or all-gather per dimension).
    pub phase_times: Vec<f64>,
    /// Synchronous ring steps executed.
    pub steps: usize,
}

/// Simulates the bandwidth-optimal multi-dimensional ring all-reduce of
/// `bytes` (per chip) over `dims` of the slice torus, with per-step
/// synchronization: each step's duration is set by the slowest active
/// link (chunk / min-bandwidth + hop latency).
///
/// # Panics
/// Panics if `dims` is empty or names a dimension ≥ 3.
pub fn simulate_torus_all_reduce<B: LinkBandwidth>(
    shape: SliceShape,
    bytes: f64,
    dims: &[usize],
    bw: &B,
    hop_latency: f64,
) -> SimOutcome {
    assert!(!dims.is_empty(), "need at least one dimension");
    assert!(dims.iter().all(|&d| d < 3), "dimension out of range");
    let torus = Torus::new(shape);
    let mut phase_times = Vec::new();
    let mut steps = 0usize;
    let mut payload = bytes;

    // One phase = reduce-scatter over dims in order, then all-gather in
    // reverse; each ring step moves `payload / ring_len` per chip.
    let mut run_phase = |payload: f64, dim: usize, torus: &Torus| -> (f64, usize) {
        let len = shape.chips[dim];
        if len <= 1 {
            return (0.0, 0);
        }
        let chunk = payload / len as f64;
        let mut phase = 0.0;
        // (len − 1) synchronized steps; in each, every chip forwards one
        // chunk along +dim. The step completes when the slowest link does.
        for _ in 0..(len - 1) {
            let mut slowest = f64::INFINITY;
            for x in 0..shape.chips[0] {
                for y in 0..shape.chips[1] {
                    for z in 0..shape.chips[2] {
                        let chip = Chip { coords: [x, y, z] };
                        slowest = slowest.min(bw.bandwidth(chip, dim, true));
                    }
                }
            }
            assert!(slowest > 0.0, "links must have positive bandwidth");
            phase += chunk / slowest + hop_latency;
            steps += 1;
        }
        let _ = torus;
        (phase, len - 1)
    };

    for &d in dims {
        let (t, _) = run_phase(payload, d, &torus);
        phase_times.push(t);
        payload /= shape.chips[d].max(1) as f64;
    }
    for &d in dims.iter().rev() {
        payload *= shape.chips[d].max(1) as f64;
        let (t, _) = run_phase(payload, d, &torus);
        phase_times.push(t);
    }

    SimOutcome {
        total: phase_times.iter().sum(),
        phase_times,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{torus_all_reduce, IciParams};

    fn shape(a: usize, b: usize, c: usize) -> SliceShape {
        SliceShape::new(a, b, c).expect("valid")
    }

    #[test]
    fn uniform_simulation_matches_analytic_model() {
        // With equal links, the step simulator and the α-β formula are the
        // same arithmetic — they must agree to float precision.
        let p = IciParams::tpu_v4();
        let bytes = 512e6;
        let s = shape(16, 16, 16);
        let sim = simulate_torus_all_reduce(
            s,
            bytes,
            &[0, 1, 2],
            &Uniform(p.ring_bandwidth()),
            p.hop_latency,
        );
        let analytic = torus_all_reduce(bytes, &[16, 16, 16], &p);
        assert!(
            (sim.total / analytic - 1.0).abs() < 1e-9,
            "sim {} vs analytic {}",
            sim.total,
            analytic
        );
    }

    #[test]
    fn one_straggler_stalls_the_whole_collective() {
        // A single 4×-derated link in one ring dimension drags every step
        // of that dimension's phases to its speed.
        let base = 100e9;
        let healthy =
            simulate_torus_all_reduce(shape(8, 8, 8), 256e6, &[0, 1, 2], &Uniform(base), 300e-9);
        let straggler = WithStraggler {
            base,
            chip: Chip { coords: [3, 5, 2] },
            dim: 0,
            derated: base / 4.0,
        };
        let degraded =
            simulate_torus_all_reduce(shape(8, 8, 8), 256e6, &[0, 1, 2], &straggler, 300e-9);
        assert!(degraded.total > healthy.total * 1.5, "straggler must bite");
        // Only the dim-0 phases (first and last) slow down.
        assert!(degraded.phase_times[0] > healthy.phase_times[0] * 3.0);
        assert!((degraded.phase_times[1] / healthy.phase_times[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn swapping_out_the_bad_cube_recovers_performance() {
        // The §4.2.2 loop at collective granularity: reconfiguring the
        // slice onto a healthy cube removes the straggler entirely.
        let base = 100e9;
        // Straggle the first dimension — it carries the full payload, so
        // the damage is maximal (the worst case a scheduler must react to).
        let straggler = WithStraggler {
            base,
            chip: Chip { coords: [0, 0, 0] },
            dim: 0,
            derated: base / 10.0,
        };
        let degraded =
            simulate_torus_all_reduce(shape(8, 8, 8), 128e6, &[0, 1, 2], &straggler, 300e-9);
        let recovered =
            simulate_torus_all_reduce(shape(8, 8, 8), 128e6, &[0, 1, 2], &Uniform(base), 300e-9);
        assert!(degraded.total > 2.0 * recovered.total);
    }

    #[test]
    fn step_count_is_deterministic() {
        let sim =
            simulate_torus_all_reduce(shape(4, 8, 16), 64e6, &[0, 1, 2], &Uniform(100e9), 0.0);
        // 2 × ((4−1) + (8−1) + (16−1)) = 50 steps.
        assert_eq!(sim.steps, 50);
        assert_eq!(sim.phase_times.len(), 6);
    }

    #[test]
    fn single_chip_dimensions_are_free() {
        let sim = simulate_torus_all_reduce(shape(4, 4, 4), 64e6, &[0], &Uniform(100e9), 300e-9);
        assert!(sim.total > 0.0);
        let sub = simulate_torus_all_reduce(shape(4, 4, 4), 64e6, &[0, 1], &Uniform(100e9), 300e-9);
        assert!(sub.total > sim.total, "more dimensions cost more phases");
    }

    #[test]
    #[should_panic(expected = "dimension out of range")]
    fn bad_dimension_rejected() {
        let _ = simulate_torus_all_reduce(shape(4, 4, 4), 1.0, &[3], &Uniform(1e9), 0.0);
    }
}
