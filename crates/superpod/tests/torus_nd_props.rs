//! Property tests for the N-dimensional torus link allocator: compose /
//! release over arbitrary sub-blocks must never double-allocate a link
//! and must restore the free-link set exactly.

use lightwave_superpod::torus_nd::{NdAllocError, NdLease, NdLink, NdLinkAllocator, TorusNd};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arbitrary_torus() -> impl Strategy<Value = TorusNd> {
    (1usize..=4, proptest::collection::vec(2usize..=5, 4))
        .prop_map(|(n, sizes)| TorusNd::new(sizes[..n].to_vec()))
}

/// A sequence of (origin-seed, extent-seed, release?) operations; seeds
/// are reduced modulo the torus dims so every draw is meaningful.
fn arbitrary_ops() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    proptest::collection::vec((0usize..1000, 0usize..1000, any::<bool>()), 1..20)
}

fn decode_block(t: &TorusNd, origin_seed: usize, extent_seed: usize) -> (Vec<usize>, Vec<usize>) {
    let mut origin = Vec::new();
    let mut extent = Vec::new();
    let (mut o, mut e) = (origin_seed, extent_seed);
    for &d in t.dims() {
        origin.push(o % d);
        extent.push(1 + e % d);
        o /= 3;
        e /= 3;
    }
    (origin, extent)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive an arbitrary compose/release workload. Throughout: live
    /// leases hold disjoint link sets, free + leased is a partition of
    /// the fabric, and when everything is released the free set is
    /// byte-identical to the initial one.
    #[test]
    fn compose_release_preserves_the_link_partition(
        torus in arbitrary_torus(),
        ops in arbitrary_ops(),
    ) {
        let mut a = NdLinkAllocator::new(torus.clone());
        let initial = a.free_set().clone();
        let capacity = a.capacity();
        let mut live: Vec<(NdLease, BTreeSet<NdLink>)> = Vec::new();

        for (o_seed, e_seed, do_release) in ops {
            if do_release && !live.is_empty() {
                let (lease, links) = live.remove(o_seed % live.len());
                prop_assert_eq!(a.release(lease).expect("live lease releases"), links.len());
                for l in &links {
                    prop_assert!(a.free_set().contains(l), "released link is free again");
                }
            } else {
                let (origin, extent) = decode_block(&torus, o_seed, e_seed);
                let req = a.block_request(&origin, &extent).expect("in-range block");
                let free_before = a.free_links();
                match a.allocate(&req) {
                    Ok(lease) => {
                        // No double allocation: the request was disjoint
                        // from every live lease.
                        for (_, held) in &live {
                            prop_assert!(held.is_disjoint(&req));
                        }
                        prop_assert_eq!(a.free_links(), free_before - req.len());
                        live.push((lease, req));
                    }
                    Err(NdAllocError::LinkBusy(l)) => {
                        // The named link really is held, and the failed
                        // attempt changed nothing.
                        prop_assert!(live.iter().any(|(_, held)| held.contains(&l)));
                        prop_assert_eq!(a.free_links(), free_before);
                    }
                    Err(other) => prop_assert!(false, "unexpected error {other:?}"),
                }
            }
            // The free set and the union of live leases partition the
            // fabric at every step.
            let leased: usize = live.iter().map(|(_, s)| s.len()).sum();
            prop_assert_eq!(a.free_links() + leased, capacity);
            prop_assert_eq!(a.live_leases(), live.len());
        }

        for (lease, _) in live {
            a.release(lease).expect("cleanup releases");
        }
        prop_assert_eq!(a.free_set(), &initial, "free set restored exactly");
        prop_assert_eq!(a.live_leases(), 0);
    }

    /// A full-fabric slice is always composable on a fresh allocator,
    /// uses every link, and releasing it empties nothing twice.
    #[test]
    fn full_fabric_slice_roundtrips(torus in arbitrary_torus()) {
        let mut a = NdLinkAllocator::new(torus.clone());
        let origin = vec![0; torus.n_dims()];
        let extent = torus.dims().to_vec();
        let req = a.block_request(&origin, &extent).expect("full block");
        prop_assert_eq!(req.len(), a.capacity(), "a full slice owns every link");
        let lease = a.allocate(&req).expect("fresh fabric fits");
        prop_assert_eq!(a.free_links(), 0);
        // Nothing else fits, and the rejection is atomic.
        let one = a.block_request(&origin, &vec![1; torus.n_dims()]).expect("unit block");
        prop_assert!(matches!(a.allocate(&one), Err(NdAllocError::LinkBusy(_))));
        prop_assert_eq!(a.release(lease).expect("releases"), a.capacity());
        prop_assert_eq!(a.free_links(), a.capacity());
    }
}
