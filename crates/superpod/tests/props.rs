//! Property tests for pod geometry, slices, and collectives.

use lightwave_superpod::collective::{
    ring_all_reduce, ring_reduce_scatter, torus_all_reduce, IciParams,
};
use lightwave_superpod::slice::{Slice, SliceShape};
use lightwave_superpod::torus::{Chip, Torus};
use lightwave_superpod::torus_nd::TorusNd;
use lightwave_superpod::wiring::ocs_role;
use lightwave_superpod::Dim;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn enumerated_shapes_are_exact_factorizations(cubes in 1usize..=64) {
        let chips = cubes * 64;
        for shape in SliceShape::enumerate_with_chips(chips) {
            prop_assert_eq!(shape.chip_count(), chips);
            prop_assert!(shape.chips.iter().all(|&d| d % 4 == 0 && d > 0));
        }
    }

    #[test]
    fn slice_hops_are_three_per_cube(p in 1usize..=4, q in 1usize..=4, r in 1usize..=4) {
        let shape = SliceShape::new(4 * p, 4 * q, 4 * r).expect("valid");
        let cubes: Vec<u8> = (0..shape.cube_count() as u8).collect();
        let slice = Slice::new(shape, cubes).expect("valid");
        let hops = slice.required_hops();
        prop_assert_eq!(hops.len(), 3 * shape.cube_count());
        // Each dimension contributes exactly cube_count hops and every
        // cube appears exactly once as `from` per dimension.
        for dim in [Dim::X, Dim::Y, Dim::Z] {
            let froms: Vec<u8> = hops.iter().filter(|h| h.dim == dim).map(|h| h.from).collect();
            let mut sorted = froms.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), shape.cube_count());
        }
    }

    #[test]
    fn hop_circuits_match_their_dimension(from in 0u8..64, to in 0u8..64) {
        for dim in [Dim::X, Dim::Y, Dim::Z] {
            let hop = lightwave_superpod::wiring::CubeHop { dim, from, to };
            for c in hop.circuits() {
                let (d, k) = ocs_role(c.ocs);
                prop_assert_eq!(d, dim);
                prop_assert!(k < 16);
                prop_assert_eq!(c.north, from as u16);
                prop_assert_eq!(c.south, to as u16);
            }
        }
    }

    #[test]
    fn torus_distance_is_a_metric(
        ax in 0usize..8, ay in 0usize..8, az in 0usize..8,
        bx in 0usize..8, by in 0usize..8, bz in 0usize..8,
        cx in 0usize..8, cy in 0usize..8, cz in 0usize..8,
    ) {
        let t = Torus::new(SliceShape::new(8, 8, 8).expect("valid"));
        let a = Chip { coords: [ax, ay, az] };
        let b = Chip { coords: [bx, by, bz] };
        let c = Chip { coords: [cx, cy, cz] };
        // Symmetry, identity, triangle inequality.
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert_eq!(t.distance(a, a), 0);
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
        prop_assert!(t.distance(a, b) <= t.diameter());
    }

    #[test]
    fn collective_times_are_positive_and_monotone_in_bytes(
        bytes in 1e3f64..1e10,
        scale in 1.1f64..10.0,
        len in 2usize..256,
    ) {
        let p = IciParams::tpu_v4();
        let t1 = ring_all_reduce(bytes, len, &p);
        let t2 = ring_all_reduce(bytes * scale, len, &p);
        prop_assert!(t1 > 0.0);
        prop_assert!(t2 > t1);
        // reduce-scatter is always at most the full all-reduce.
        prop_assert!(ring_reduce_scatter(bytes, len, &p) <= t1);
    }

    #[test]
    fn torus_allreduce_bounded_by_asymptote(bytes in 1e6f64..1e10, a in 2usize..=16, b in 2usize..=16) {
        let p = IciParams::tpu_v4();
        let t = torus_all_reduce(bytes, &[a, b], &p);
        // Lower bound: the bandwidth-optimal 2·(1−1/N)·bytes/bw.
        let n = (a * b) as f64;
        let floor = 2.0 * (1.0 - 1.0 / n) * bytes / p.ring_bandwidth();
        prop_assert!(t + 1e-12 >= floor, "t={t}, floor={floor}");
        // Upper bound: floor plus latency terms.
        let latency = 2.0 * ((a - 1) + (b - 1)) as f64 * p.hop_latency;
        prop_assert!(t <= floor + latency + 1e-9 + 0.02 * floor);
    }

    #[test]
    fn nd_torus_tradeoffs_hold_generally(edge in 2usize..=8, n in 1usize..=4) {
        let chips = edge.pow(n as u32);
        let t = TorusNd::balanced(chips, n);
        prop_assert_eq!(t.chips(), chips);
        prop_assert_eq!(t.links_per_chip(), 2 * n);
        prop_assert!(t.diameter() <= n * edge / 2);
        prop_assert!(t.mean_distance() <= t.diameter() as f64);
    }
}
