//! The concatenated FEC chain: soft inner code + KP4 outer code.
//!
//! §3.3.2: "a new ultra-low latency (<20 ns for 200 Gb/s) soft decision FEC
//! (SFEC) code ... used as an inner code and concatenated with a standard
//! KP4 outer code". The inner code runs the link at a *higher* raw error
//! rate and cleans it to below the KP4 threshold; the outer KP4 then takes
//! the stream to effectively error-free. The sensitivity gain of Fig. 12 is
//! exactly the optical-power difference between "the link must deliver
//! 2×10⁻⁴ raw" and "the link must deliver whatever the inner code can clean
//! *down to* 2×10⁻⁴".
//!
//! This module provides the full encode → channel → decode chain, a
//! Monte-Carlo waterfall measurement of the inner code, and the latency
//! accounting that justifies "ultra-low latency".

use crate::hamming::{ExtHamming, HardDecode};
use crate::rs::ReedSolomon;
use lightwave_units::{math, Ber, Nanos};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// How the inner code is decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InnerDecoding {
    /// Hard-decision SEC-DED only.
    Hard,
    /// Chase soft decoding flipping the `test_bits` least-reliable bits.
    Chase {
        /// Number of least-reliable positions in the test-pattern set.
        test_bits: usize,
    },
}

impl InnerDecoding {
    /// The production configuration used by the repro harness.
    pub const SOFT: InnerDecoding = InnerDecoding::Chase { test_bits: 6 };
}

/// The concatenated code: extended Hamming (128,120) inside RS(544,514).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcatenatedCode {
    /// Inner SEC-DED code.
    pub inner: ExtHamming,
    /// Outer KP4 code.
    pub outer: ReedSolomon,
    /// Inner decoding mode.
    pub inner_decoding: InnerDecoding,
}

impl Default for ConcatenatedCode {
    fn default() -> Self {
        ConcatenatedCode {
            inner: ExtHamming,
            outer: ReedSolomon::kp4(),
            inner_decoding: InnerDecoding::SOFT,
        }
    }
}

/// Result of a Monte-Carlo inner-code waterfall point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaterfallPoint {
    /// Channel (pre-FEC) BER simulated.
    pub input_ber: Ber,
    /// Measured BER of the decoded data bits.
    pub output_ber: Ber,
    /// Data bits simulated.
    pub bits: u64,
    /// Bit errors observed after decoding.
    pub errors: u64,
}

impl ConcatenatedCode {
    /// Overall code rate (inner × outer).
    pub fn rate(&self) -> f64 {
        self.inner.rate() * self.outer.rate()
    }

    /// Monte-Carlo measurement of the inner decoder: random data blocks are
    /// sent over a binary-AWGN channel whose noise is calibrated to the
    /// requested raw BER (`Q(1/σ) = p`), decoded, and data-bit errors
    /// counted.
    ///
    /// Soft information is the analog sample magnitude, exactly what a
    /// PAM4 slicer's distance-to-threshold provides the DSP.
    pub fn inner_waterfall_point(&self, input_ber: Ber, blocks: u64, seed: u64) -> WaterfallPoint {
        assert!(blocks > 0, "must simulate at least one block");
        let p = input_ber.prob();
        assert!(
            p > 0.0 && p < 0.5,
            "input BER must be in (0, 0.5) to calibrate noise"
        );
        let sigma = 1.0 / math::q_inverse(p);
        let noise = Normal::new(0.0, sigma).expect("sigma positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let code = self.inner;

        let mut errors = 0u64;
        for _ in 0..blocks {
            let data: u128 = rng.random::<u128>() >> 8;
            let cw = code.encode(data);
            // Transmit ±1 per bit, receive with AWGN.
            let mut hard: u128 = 0;
            let mut reliability = [0.0f64; 128];
            for (i, r) in reliability.iter_mut().enumerate() {
                let tx = if (cw >> i) & 1 == 1 { 1.0 } else { -1.0 };
                let y: f64 = tx + noise.sample(&mut rng);
                if y > 0.0 {
                    hard |= 1u128 << i;
                }
                *r = y.abs();
            }
            let decoded_cw = match self.inner_decoding {
                InnerDecoding::Hard => match code.hard_decode(hard) {
                    HardDecode::Corrected { codeword, .. } => codeword,
                    HardDecode::Detected => hard,
                },
                InnerDecoding::Chase { test_bits } => {
                    code.chase_decode(hard, &reliability, test_bits)
                }
            };
            errors += (code.extract_data(decoded_cw) ^ data).count_ones() as u64;
        }
        let bits = blocks * ExtHamming::K as u64;
        WaterfallPoint {
            input_ber,
            output_ber: Ber::new(errors as f64 / bits as f64),
            bits,
            errors,
        }
    }

    /// Finds the raw-BER threshold at which the inner decoder's output
    /// just meets `target` (typically the KP4 threshold 2×10⁻⁴), by
    /// bisection with `blocks` Monte-Carlo blocks per probe.
    ///
    /// This is the single number that sets the concatenation gain: the
    /// link may run at this raw BER instead of at `target` itself.
    pub fn inner_threshold(&self, target: Ber, blocks: u64, seed: u64) -> Ber {
        let (mut lo, mut hi) = (1e-4f64, 3e-2f64);
        for round in 0..12 {
            // Geometric midpoint — BER thresholds live on a log scale.
            let mid = ((lo.ln() + hi.ln()) / 2.0).exp();
            let point = self.inner_waterfall_point(Ber::new(mid), blocks, seed ^ round);
            if point.output_ber.prob() > target.prob() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ber::new(((lo.ln() + hi.ln()) / 2.0).exp())
    }

    /// Full end-to-end encode of a payload of 514 ten-bit symbols: outer RS
    /// encode, serialize to bits, chunk into 120-bit inner blocks (zero
    /// padded), inner encode. Returns the transmitted inner codewords.
    pub fn encode_frame(&self, payload: &[u16]) -> Vec<u128> {
        assert_eq!(
            payload.len(),
            self.outer.k(),
            "payload must be k outer symbols"
        );
        let outer_cw = self.outer.encode(payload);
        // Serialize 10-bit symbols to a bitstream.
        let mut bits: Vec<bool> = Vec::with_capacity(outer_cw.len() * 10);
        for &sym in &outer_cw {
            for b in 0..10 {
                bits.push((sym >> b) & 1 == 1);
            }
        }
        // Chunk into 120-bit inner data blocks.
        bits.resize(bits.len().div_ceil(ExtHamming::K) * ExtHamming::K, false);
        bits.chunks(ExtHamming::K)
            .map(|chunk| {
                let mut data: u128 = 0;
                for (i, &b) in chunk.iter().enumerate() {
                    if b {
                        data |= 1u128 << i;
                    }
                }
                self.inner.encode(data)
            })
            .collect()
    }

    /// Full end-to-end decode: inner decode each received block (hard
    /// decision here; channel soft info is exercised separately by the
    /// waterfall), reassemble the outer codeword, RS decode.
    ///
    /// Returns the recovered payload, or `None` if the outer decoder gave
    /// up (frame loss).
    pub fn decode_frame(&self, received: &[u128]) -> Option<Vec<u16>> {
        let mut bits: Vec<bool> = Vec::with_capacity(received.len() * ExtHamming::K);
        for &word in received {
            let cw = match self.inner.hard_decode(word) {
                HardDecode::Corrected { codeword, .. } => codeword,
                HardDecode::Detected => word,
            };
            let data = self.inner.extract_data(cw);
            for i in 0..ExtHamming::K {
                bits.push((data >> i) & 1 == 1);
            }
        }
        let n = self.outer.n();
        if bits.len() < n * 10 {
            return None;
        }
        let mut symbols: Vec<u16> = Vec::with_capacity(n);
        for s in 0..n {
            let mut sym: u16 = 0;
            for b in 0..10 {
                if bits[s * 10 + b] {
                    sym |= 1 << b;
                }
            }
            symbols.push(sym);
        }
        self.outer.decode(&mut symbols).ok()?;
        symbols.truncate(self.outer.k());
        Some(symbols)
    }

    /// Inner-decoder latency at a given line rate in Gb/s.
    ///
    /// Model: the decoder must buffer one block (serialization delay) plus
    /// a short pipeline (syndrome + Chase metric selection, a handful of
    /// block-clock cycles). The paper claims < 20 ns at 200 Gb/s; a
    /// 128-bit block at 200 Gb/s serializes in 0.64 ns, so even an
    /// 8-deep pipeline sits well inside the budget — the *reason* a short
    /// block code was chosen over a stronger, longer one.
    pub fn inner_latency(&self, rate_gbps: f64) -> Nanos {
        assert!(rate_gbps > 0.0, "rate must be positive");
        let block_ns = ExtHamming::N as f64 / rate_gbps; // bits / (Gb/s) = ns
        let pipeline_depth = match self.inner_decoding {
            InnerDecoding::Hard => 4.0,
            InnerDecoding::Chase { .. } => 8.0,
        };
        Nanos::from_secs_f64(pipeline_depth * block_ns * 1e-9)
    }

    /// Outer KP4 decoder latency at a line rate in Gb/s (one codeword of
    /// 5440 bits must be buffered, plus BM/Chien pipeline ≈ one more).
    pub fn outer_latency(&self, rate_gbps: f64) -> Nanos {
        assert!(rate_gbps > 0.0, "rate must be positive");
        let cw_ns = (self.outer.n() * 10) as f64 / rate_gbps;
        Nanos::from_secs_f64(2.0 * cw_ns * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_clean() {
        let code = ConcatenatedCode::default();
        let payload: Vec<u16> = (0..514).map(|i| (i * 7 % 1024) as u16).collect();
        let tx = code.encode_frame(&payload);
        assert_eq!(tx.len(), 5440usize.div_ceil(120)); // 46 inner blocks
        let rx = code.decode_frame(&tx).expect("clean frame decodes");
        assert_eq!(rx, payload);
    }

    #[test]
    fn frame_survives_scattered_bit_errors() {
        let code = ConcatenatedCode::default();
        let payload: Vec<u16> = (0..514).map(|i| (i * 31 % 1024) as u16).collect();
        let mut tx = code.encode_frame(&payload);
        // One bit error in each of 20 different inner blocks: every one is
        // corrected by the inner code alone.
        for (i, block) in tx.iter_mut().enumerate().take(20) {
            *block ^= 1u128 << ((i * 11) % 128);
        }
        assert_eq!(code.decode_frame(&tx).expect("decodes"), payload);
    }

    #[test]
    fn frame_survives_inner_failures_via_outer_code() {
        let code = ConcatenatedCode::default();
        let payload: Vec<u16> = (0..514).map(|i| (i % 1024) as u16).collect();
        let mut tx = code.encode_frame(&payload);
        // Two 2-bit (detected-uncorrectable) inner blocks: the damage
        // passes through to the outer RS, which cleans it up.
        tx[3] ^= (1u128 << 40) | (1u128 << 90);
        tx[17] ^= (1u128 << 5) | (1u128 << 6);
        assert_eq!(code.decode_frame(&tx).expect("outer code rescues"), payload);
    }

    #[test]
    fn soft_beats_hard_decoding() {
        let hard = ConcatenatedCode {
            inner_decoding: InnerDecoding::Hard,
            ..ConcatenatedCode::default()
        };
        let soft = ConcatenatedCode::default();
        let p = Ber::new(4e-3);
        let h = hard.inner_waterfall_point(p, 3000, 99);
        let s = soft.inner_waterfall_point(p, 3000, 99);
        assert!(
            s.output_ber.prob() < h.output_ber.prob() / 2.0,
            "Chase ({}) should clearly beat hard decoding ({})",
            s.output_ber,
            h.output_ber
        );
    }

    #[test]
    fn inner_code_improves_ber_at_moderate_input() {
        let code = ConcatenatedCode::default();
        let p = Ber::new(2e-3);
        let point = code.inner_waterfall_point(p, 3000, 7);
        assert!(
            point.output_ber.prob() < p.prob() / 5.0,
            "inner code must improve BER at 2e-3: got {}",
            point.output_ber
        );
    }

    #[test]
    fn waterfall_monotone_in_input_ber() {
        let code = ConcatenatedCode::default();
        let lo = code.inner_waterfall_point(Ber::new(1e-3), 2000, 11);
        let hi = code.inner_waterfall_point(Ber::new(1e-2), 2000, 11);
        assert!(hi.output_ber.prob() > lo.output_ber.prob());
    }

    #[test]
    fn inner_latency_meets_paper_budget() {
        // §3.3.2: < 20 ns at 200 Gb/s.
        let code = ConcatenatedCode::default();
        let lat = code.inner_latency(200.0);
        assert!(
            lat.0 < 20,
            "inner latency {lat} must be under the 20 ns budget"
        );
        // ... while the outer KP4 alone is several times that, which is why
        // the *inner* code had to be short.
        assert!(code.outer_latency(200.0).0 > 20);
    }

    #[test]
    fn overall_rate() {
        let code = ConcatenatedCode::default();
        let expected = (120.0 / 128.0) * (514.0 / 544.0);
        assert!((code.rate() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "payload must be k outer symbols")]
    fn encode_frame_rejects_bad_payload() {
        let _ = ConcatenatedCode::default().encode_frame(&[1, 2, 3]);
    }
}
