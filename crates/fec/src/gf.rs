//! Arithmetic over GF(2¹⁰), the symbol field of the KP4 RS(544,514) code.
//!
//! Elements are 10-bit values; multiplication uses log/antilog tables built
//! from the primitive polynomial x¹⁰ + x³ + 1 (0x409), the polynomial used
//! by IEEE 802.3 clause 91 KP4 FEC.

use std::sync::OnceLock;

/// Field order.
pub const FIELD_SIZE: usize = 1024;
/// Multiplicative-group order (= FIELD_SIZE − 1).
pub const GROUP_ORDER: usize = FIELD_SIZE - 1;
/// Primitive polynomial x¹⁰ + x³ + 1.
const PRIMITIVE_POLY: u32 = 0x409;

/// A GF(2¹⁰) element (only the low 10 bits are meaningful).
pub type Gf = u16;

struct Tables {
    /// exp[i] = α^i for i in 0..2·GROUP_ORDER (doubled to skip mod in mul).
    exp: Vec<Gf>,
    /// log[x] = i such that α^i = x, for x in 1..FIELD_SIZE.
    log: Vec<u16>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * GROUP_ORDER];
        let mut log = vec![0u16; FIELD_SIZE];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(GROUP_ORDER) {
            *e = x as Gf;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (FIELD_SIZE as u32) != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in GROUP_ORDER..2 * GROUP_ORDER {
            exp[i] = exp[i - GROUP_ORDER];
        }
        Tables { exp, log }
    })
}

/// Field addition (= subtraction): XOR.
#[inline]
pub fn add(a: Gf, b: Gf) -> Gf {
    a ^ b
}

/// Field multiplication.
#[inline]
pub fn mul(a: Gf, b: Gf) -> Gf {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics on zero (zero has no inverse).
#[inline]
pub fn inv(a: Gf) -> Gf {
    assert!(a != 0, "zero has no multiplicative inverse in GF(2^10)");
    let t = tables();
    t.exp[GROUP_ORDER - t.log[a as usize] as usize]
}

/// Field division `a / b`.
///
/// # Panics
/// Panics if `b` is zero.
#[inline]
pub fn div(a: Gf, b: Gf) -> Gf {
    mul(a, inv(b))
}

/// `α^i` for any integer exponent (reduced mod the group order).
#[inline]
pub fn alpha_pow(i: i64) -> Gf {
    let e = i.rem_euclid(GROUP_ORDER as i64) as usize;
    tables().exp[e]
}

/// Discrete log base α.
///
/// # Panics
/// Panics on zero.
#[inline]
pub fn log(a: Gf) -> u16 {
    assert!(a != 0, "zero has no discrete log");
    tables().log[a as usize]
}

/// Evaluates a polynomial (coefficients lowest-degree first) at `x`.
pub fn poly_eval(coeffs: &[Gf], x: Gf) -> Gf {
    let mut acc: Gf = 0;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_generates_the_whole_group() {
        let mut seen = vec![false; FIELD_SIZE];
        for i in 0..GROUP_ORDER as i64 {
            let x = alpha_pow(i);
            assert!(x != 0);
            assert!(!seen[x as usize], "α^{i} repeated — poly not primitive");
            seen[x as usize] = true;
        }
    }

    #[test]
    fn mul_is_commutative_and_associative_spot_check() {
        for &(a, b, c) in &[(3u16, 7u16, 1000u16), (512, 513, 2), (1023, 1023, 1023)] {
            assert_eq!(mul(a, b), mul(b, a));
            assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for a in 1..FIELD_SIZE as Gf {
            assert_eq!(mul(a, inv(a)), 1, "a·a⁻¹ ≠ 1 for a = {a}");
        }
    }

    #[test]
    fn distributive_law_spot_check() {
        for &(a, b, c) in &[(5u16, 100u16, 900u16), (1023, 1, 2), (77, 88, 99)] {
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }

    #[test]
    fn division_roundtrip() {
        for &(a, b) in &[(42u16, 999u16), (1, 1023), (1000, 3)] {
            assert_eq!(mul(div(a, b), b), a);
        }
    }

    #[test]
    fn poly_eval_horner() {
        // p(x) = 1 + x: p(α) = 1 ^ α.
        let alpha = alpha_pow(1);
        assert_eq!(poly_eval(&[1, 1], alpha), add(1, alpha));
        // Constant polynomial.
        assert_eq!(poly_eval(&[7], 123), 7);
        // Empty polynomial is zero.
        assert_eq!(poly_eval(&[], 5), 0);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    fn alpha_pow_wraps_negative_exponents() {
        assert_eq!(alpha_pow(-1), inv(alpha_pow(1)));
        assert_eq!(alpha_pow(GROUP_ORDER as i64), 1);
        assert_eq!(alpha_pow(0), 1);
    }
}
