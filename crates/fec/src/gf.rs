//! Arithmetic over GF(2¹⁰), the symbol field of the KP4 RS(544,514) code.
//!
//! Elements are 10-bit values; multiplication uses log/antilog tables built
//! from the primitive polynomial x¹⁰ + x³ + 1 (0x409), the polynomial used
//! by IEEE 802.3 clause 91 KP4 FEC.
//!
//! The tables are `const`-built flat arrays — there is no lazy
//! initialization, so first use from concurrent threads is trivially safe
//! and every multiply is a pair of loads with no branch on zero: `log` maps
//! 0 to a sentinel past the group order, and the antilog table is
//! zero-padded so any product involving the sentinel lands on 0.

/// Field order.
pub const FIELD_SIZE: usize = 1024;
/// Multiplicative-group order (= FIELD_SIZE − 1).
pub const GROUP_ORDER: usize = FIELD_SIZE - 1;
/// Primitive polynomial x¹⁰ + x³ + 1.
const PRIMITIVE_POLY: u32 = 0x409;

/// A GF(2¹⁰) element (only the low 10 bits are meaningful).
pub type Gf = u16;

/// Sentinel "log of zero": past any real log sum, indexing the zero-padded
/// region of [`EXP_MUL`].
const LOG_ZERO: u16 = 2 * GROUP_ORDER as u16;

/// exp[i] = α^i for i in 0..2·GROUP_ORDER (doubled to skip mod in mul).
static EXP: [Gf; 2 * GROUP_ORDER] = build_exp();
/// log[x] = i such that α^i = x for x ≥ 1; log[0] = the [`LOG_ZERO`] sentinel.
static LOG: [u16; FIELD_SIZE] = build_log();
/// Antilog extended with zeros so `EXP_MUL[log a + log b]` is correct even
/// when either log is the zero sentinel (max index 2·LOG_ZERO = 4092).
static EXP_MUL: [Gf; 4096] = build_exp_mul();

const fn build_exp() -> [Gf; 2 * GROUP_ORDER] {
    let mut exp = [0 as Gf; 2 * GROUP_ORDER];
    let mut x: u32 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as Gf;
        exp[i + GROUP_ORDER] = x as Gf;
        x <<= 1;
        if x & (FIELD_SIZE as u32) != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    exp
}

const fn build_log() -> [u16; FIELD_SIZE] {
    let exp = build_exp();
    let mut log = [LOG_ZERO; FIELD_SIZE];
    let mut i = 0;
    while i < GROUP_ORDER {
        log[exp[i] as usize] = i as u16;
        i += 1;
    }
    log
}

const fn build_exp_mul() -> [Gf; 4096] {
    let exp = build_exp();
    let mut ext = [0 as Gf; 4096];
    let mut i = 0;
    while i < 2 * GROUP_ORDER {
        ext[i] = exp[i];
        i += 1;
    }
    ext
}

/// Field addition (= subtraction): XOR.
#[inline]
pub fn add(a: Gf, b: Gf) -> Gf {
    a ^ b
}

/// Field multiplication (branch-free: two log loads, one padded antilog load).
#[inline]
pub fn mul(a: Gf, b: Gf) -> Gf {
    EXP_MUL[(LOG[a as usize] + LOG[b as usize]) as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics on zero (zero has no inverse).
#[inline]
pub fn inv(a: Gf) -> Gf {
    assert!(a != 0, "zero has no multiplicative inverse in GF(2^10)");
    EXP[GROUP_ORDER - LOG[a as usize] as usize]
}

/// Field division `a / b`.
///
/// # Panics
/// Panics if `b` is zero.
#[inline]
pub fn div(a: Gf, b: Gf) -> Gf {
    mul(a, inv(b))
}

/// `α^i` for any integer exponent (reduced mod the group order).
#[inline]
pub fn alpha_pow(i: i64) -> Gf {
    let e = i.rem_euclid(GROUP_ORDER as i64) as usize;
    EXP[e]
}

/// Discrete log base α.
///
/// # Panics
/// Panics on zero.
#[inline]
pub fn log(a: Gf) -> u16 {
    assert!(a != 0, "zero has no discrete log");
    LOG[a as usize]
}

/// Evaluates a polynomial (coefficients lowest-degree first) at `x`.
pub fn poly_eval(coeffs: &[Gf], x: Gf) -> Gf {
    let mut acc: Gf = 0;
    for &c in coeffs.iter().rev() {
        acc = add(mul(acc, x), c);
    }
    acc
}

/// In-place batched multiply of a slice by a constant: `xs[i] ·= c`.
///
/// One log lookup for the constant is hoisted; each element is then a
/// branch-free load/add/load, which the compiler unrolls cleanly.
pub fn mul_slice(c: Gf, xs: &mut [Gf]) {
    let lc = LOG[c as usize];
    for x in xs.iter_mut() {
        *x = EXP_MUL[(lc + LOG[*x as usize]) as usize];
    }
}

/// Batched multiply-accumulate: `dst[i] ^= c·src[i]` over the common prefix.
pub fn mul_add_slice(c: Gf, src: &[Gf], dst: &mut [Gf]) {
    let lc = LOG[c as usize];
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= EXP_MUL[(lc + LOG[s as usize]) as usize];
    }
}

/// A precomputed multiply-by-constant table: `table[x] = c·x` for every
/// field element.
///
/// This is the workhorse of the fast RS kernels: a Chien/syndrome "alpha
/// stride" is a `MulTable` for `α^j`, turning each Horner step into a
/// single indexed load with no log/antilog arithmetic at all.
#[derive(Clone)]
pub struct MulTable {
    table: [Gf; FIELD_SIZE],
}

impl MulTable {
    /// Builds the table for multiplication by `c`.
    pub fn new(c: Gf) -> MulTable {
        let mut table = [0 as Gf; FIELD_SIZE];
        let lc = LOG[c as usize];
        for (x, slot) in table.iter_mut().enumerate() {
            *slot = EXP_MUL[(lc + LOG[x]) as usize];
        }
        MulTable { table }
    }

    /// Builds the stride table for multiplication by `α^j`.
    pub fn alpha_stride(j: i64) -> MulTable {
        MulTable::new(alpha_pow(j))
    }

    /// `c·x` as one load.
    #[inline]
    pub fn mul(&self, x: Gf) -> Gf {
        self.table[x as usize]
    }

    /// In-place batched multiply of a slice through the table.
    pub fn mul_slice(&self, xs: &mut [Gf]) {
        for x in xs.iter_mut() {
            *x = self.table[*x as usize];
        }
    }

    /// Evaluates a polynomial (coefficients lowest-degree first) at this
    /// table's constant via Horner — `poly_eval` with the multiply folded
    /// into the precomputed stride.
    pub fn poly_eval(&self, coeffs: &[Gf]) -> Gf {
        let mut acc: Gf = 0;
        for &c in coeffs.iter().rev() {
            acc = self.table[acc as usize] ^ c;
        }
        acc
    }
}

impl std::fmt::Debug for MulTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MulTable")
            .field("c", &self.table[1])
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_generates_the_whole_group() {
        let mut seen = vec![false; FIELD_SIZE];
        for i in 0..GROUP_ORDER as i64 {
            let x = alpha_pow(i);
            assert!(x != 0);
            assert!(!seen[x as usize], "α^{i} repeated — poly not primitive");
            seen[x as usize] = true;
        }
    }

    #[test]
    fn mul_is_commutative_and_associative_spot_check() {
        for &(a, b, c) in &[(3u16, 7u16, 1000u16), (512, 513, 2), (1023, 1023, 1023)] {
            assert_eq!(mul(a, b), mul(b, a));
            assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }
    }

    #[test]
    fn mul_by_zero_is_zero_everywhere() {
        for a in 0..FIELD_SIZE as Gf {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for a in 1..FIELD_SIZE as Gf {
            assert_eq!(mul(a, inv(a)), 1, "a·a⁻¹ ≠ 1 for a = {a}");
        }
    }

    #[test]
    fn distributive_law_spot_check() {
        for &(a, b, c) in &[(5u16, 100u16, 900u16), (1023, 1, 2), (77, 88, 99)] {
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }

    #[test]
    fn division_roundtrip() {
        for &(a, b) in &[(42u16, 999u16), (1, 1023), (1000, 3)] {
            assert_eq!(mul(div(a, b), b), a);
        }
    }

    #[test]
    fn poly_eval_horner() {
        // p(x) = 1 + x: p(α) = 1 ^ α.
        let alpha = alpha_pow(1);
        assert_eq!(poly_eval(&[1, 1], alpha), add(1, alpha));
        // Constant polynomial.
        assert_eq!(poly_eval(&[7], 123), 7);
        // Empty polynomial is zero.
        assert_eq!(poly_eval(&[], 5), 0);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    fn alpha_pow_wraps_negative_exponents() {
        assert_eq!(alpha_pow(-1), inv(alpha_pow(1)));
        assert_eq!(alpha_pow(GROUP_ORDER as i64), 1);
        assert_eq!(alpha_pow(0), 1);
    }

    #[test]
    fn mul_slice_matches_scalar_mul() {
        for c in [0 as Gf, 1, 2, 513, 1023] {
            let mut xs: Vec<Gf> = (0..FIELD_SIZE as Gf).collect();
            mul_slice(c, &mut xs);
            for (x, &got) in xs.iter().enumerate() {
                assert_eq!(got, mul(c, x as Gf));
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar() {
        let src: Vec<Gf> = (0..64).map(|i| (i * 37 % 1024) as Gf).collect();
        let mut dst: Vec<Gf> = (0..64).map(|i| (i * 11 % 1024) as Gf).collect();
        let expect: Vec<Gf> = src
            .iter()
            .zip(&dst)
            .map(|(&s, &d)| d ^ mul(77, s))
            .collect();
        mul_add_slice(77, &src, &mut dst);
        assert_eq!(dst, expect);
    }

    #[test]
    fn mul_table_matches_scalar_and_poly_eval() {
        for c in [0 as Gf, 1, 7, 1023] {
            let t = MulTable::new(c);
            for x in 0..FIELD_SIZE as Gf {
                assert_eq!(t.mul(x), mul(c, x));
            }
        }
        let stride = MulTable::alpha_stride(5);
        let coeffs: Vec<Gf> = vec![3, 0, 911, 1, 1023];
        assert_eq!(stride.poly_eval(&coeffs), poly_eval(&coeffs, alpha_pow(5)));
    }

    /// Regression for the former lazy-`tables()` sharp edge: two threads
    /// racing the very first field use must agree on every product. With
    /// const tables there is no initialization to race, and this pins it.
    #[test]
    fn concurrent_first_use_agrees() {
        let worker = || -> Vec<Gf> {
            (0..FIELD_SIZE as Gf)
                .map(|x| mul(x, x.wrapping_mul(997) % FIELD_SIZE as Gf) ^ alpha_pow(x as i64))
                .collect()
        };
        let (a, b) = std::thread::scope(|s| {
            let ha = s.spawn(worker);
            let hb = s.spawn(worker);
            (ha.join().unwrap(), hb.join().unwrap())
        });
        assert_eq!(a, b);
    }
}
