//! Forward error correction for lightwave-fabric transceivers.
//!
//! The paper's DSP ASIC (§3.3.2) implements a *concatenated* FEC: a
//! proprietary ultra-low-latency soft-decision inner code wrapped around the
//! standard "KP4" RS(544,514) outer code, buying ~1.6 dB of receiver
//! sensitivity (Fig. 12) without violating the latency budget of synchronous
//! ML workloads (< 20 ns at 200 Gb/s). A variant of the inner code was later
//! adopted by IEEE 802.3dj.
//!
//! This crate implements the whole stack **for real** — not as rate
//! adjustments on a formula:
//!
//! - [`gf`] — arithmetic over GF(2¹⁰), the symbol field of KP4.
//! - [`rs`] — a generic Reed-Solomon encoder/decoder (Berlekamp-Massey +
//!   Chien + Forney) instantiated as RS(544,514), t = 15.
//! - [`hamming`] — an extended Hamming (128,120) inner code with
//!   hard-decision decoding and soft-decision Chase decoding, the same
//!   construction class as the 802.3dj inner code.
//! - [`interleave`] — depth-D symbol interleaving: bursts spread across
//!   codewords, multiplying the correctable burst length.
//! - [`mod@concat`] — the concatenated chain, Monte-Carlo waterfall
//!   measurement and latency accounting.
//! - [`analysis`] — analytic post-FEC error rates (binomial symbol-error
//!   tails) and coding-gain computations used by the figure harness.
//!
//! ## Substitution note (see DESIGN.md §5)
//!
//! The paper's inner code is proprietary; our open extended-Hamming Chase
//! decoder is the same *family* but slightly weaker. The concatenation
//! mechanics, latency accounting and threshold behaviour are faithful; the
//! measured sensitivity gain lands near (somewhat below) the published
//! 1.6 dB, and the repro harness prints both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod concat;
pub mod gf;
pub mod hamming;
pub mod interleave;
pub mod reference;
pub mod rs;
pub mod scratch;

pub use concat::{ConcatenatedCode, InnerDecoding};
pub use hamming::ExtHamming;
pub use interleave::Interleaver;
pub use rs::ReedSolomon;
pub use scratch::RsScratch;
