//! Symbol interleaving: spreading bursts across codewords.
//!
//! High-rate PAM4 standards interleave multiple RS codewords across the
//! lane (KP4 deployments run 2- or 4-way interleaving) so that a burst —
//! a DFE error-propagation event, or in this system a glitching OCS
//! circuit — lands a few symbols in *each* codeword instead of burying
//! one. The depth-D block interleaver here multiplies the correctable
//! burst length by D.

use crate::gf::Gf;
use crate::rs::{ReedSolomon, TooManyErrors};
use serde::{Deserialize, Serialize};

/// A depth-D block symbol interleaver over RS codewords.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interleaver {
    /// The constituent code.
    pub code: ReedSolomon,
    /// Interleaving depth (codewords per frame).
    pub depth: usize,
}

impl Interleaver {
    /// Creates a depth-`depth` interleaver.
    ///
    /// # Panics
    /// Panics if depth is zero.
    pub fn new(code: ReedSolomon, depth: usize) -> Interleaver {
        assert!(depth >= 1, "depth must be at least 1");
        Interleaver { code, depth }
    }

    /// Symbols per interleaved frame on the line.
    pub fn frame_symbols(&self) -> usize {
        self.code.n() * self.depth
    }

    /// Payload symbols per frame.
    pub fn frame_payload(&self) -> usize {
        self.code.k() * self.depth
    }

    /// Longest guaranteed-correctable symbol burst per frame.
    pub fn burst_tolerance(&self) -> usize {
        self.code.t() * self.depth
    }

    /// Encodes `depth` messages (concatenated, `depth·k` symbols) into an
    /// interleaved line frame: symbol `i` of codeword `w` appears at line
    /// position `i·depth + w`.
    ///
    /// # Panics
    /// Panics if the payload length is wrong.
    pub fn encode(&self, payload: &[Gf]) -> Vec<Gf> {
        assert_eq!(payload.len(), self.frame_payload(), "payload length");
        let mut frame = vec![0 as Gf; self.frame_symbols()];
        for w in 0..self.depth {
            let msg = &payload[w * self.code.k()..(w + 1) * self.code.k()];
            let cw = self.code.encode(msg);
            for (i, &sym) in cw.iter().enumerate() {
                frame[i * self.depth + w] = sym;
            }
        }
        frame
    }

    /// Decodes an interleaved frame, returning the payload and the total
    /// symbol corrections made.
    pub fn decode(&self, frame: &[Gf]) -> Result<(Vec<Gf>, usize), TooManyErrors> {
        assert_eq!(frame.len(), self.frame_symbols(), "frame length");
        let mut payload = vec![0 as Gf; self.frame_payload()];
        let mut corrected = 0;
        for w in 0..self.depth {
            let mut cw: Vec<Gf> = (0..self.code.n())
                .map(|i| frame[i * self.depth + w])
                .collect();
            corrected += self.code.decode(&mut cw)?;
            payload[w * self.code.k()..(w + 1) * self.code.k()]
                .copy_from_slice(&cw[..self.code.k()]);
        }
        Ok((payload, corrected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn payload(il: &Interleaver, seed: u64) -> Vec<Gf> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..il.frame_payload())
            .map(|_| rng.random_range(0..1024u16))
            .collect()
    }

    #[test]
    fn clean_roundtrip() {
        let il = Interleaver::new(ReedSolomon::new(15, 11), 4);
        let p = payload(&il, 1);
        let frame = il.encode(&p);
        let (out, corrected) = il.decode(&frame).unwrap();
        assert_eq!(out, p);
        assert_eq!(corrected, 0);
    }

    #[test]
    fn burst_tolerance_scales_with_depth() {
        // RS(15,11) corrects bursts of 2 alone; depth 4 stretches that to 8
        // consecutive line symbols.
        let il = Interleaver::new(ReedSolomon::new(15, 11), 4);
        assert_eq!(il.burst_tolerance(), 8);
        let p = payload(&il, 2);
        let mut frame = il.encode(&p);
        for slot in frame.iter_mut().skip(13).take(8) {
            *slot ^= 0x3FF;
        }
        let (out, corrected) = il.decode(&frame).unwrap();
        assert_eq!(out, p);
        assert_eq!(corrected, 8);
    }

    #[test]
    fn same_burst_kills_the_uninterleaved_code() {
        // The identical 8-symbol burst into a depth-1 frame: dead.
        let il = Interleaver::new(ReedSolomon::new(15, 11), 1);
        let p = payload(&il, 3);
        let mut frame = il.encode(&p);
        for slot in frame.iter_mut().skip(3).take(8) {
            *slot ^= 0x3FF;
        }
        assert!(il.decode(&frame).is_err(), "8 > t = 2 in one codeword");
    }

    #[test]
    fn kp4_4way_handles_a_60_symbol_burst() {
        // Production-flavored: 4-way interleaved KP4 rides out a 60-symbol
        // (600-bit) line burst — an OCS circuit glitching for ~11 ns at
        // 53 Gb/s.
        let il = Interleaver::new(ReedSolomon::kp4(), 4);
        assert_eq!(il.burst_tolerance(), 60);
        let p = payload(&il, 4);
        let mut frame = il.encode(&p);
        for slot in frame.iter_mut().skip(777).take(60) {
            *slot ^= 0x155;
        }
        let (out, corrected) = il.decode(&frame).unwrap();
        assert_eq!(out, p);
        assert!(corrected == 60, "corrected {corrected}");
    }

    #[test]
    fn scattered_errors_still_bounded_per_codeword() {
        // Interleaving does not help random errors: t per codeword still
        // binds. 3 errors hitting the same codeword of RS(15,11) fail.
        let il = Interleaver::new(ReedSolomon::new(15, 11), 2);
        let p = payload(&il, 5);
        let mut frame = il.encode(&p);
        // Positions ≡ 0 (mod 2) all belong to codeword 0.
        frame[0] ^= 1;
        frame[4] ^= 1;
        frame[8] ^= 1;
        assert!(il.decode(&frame).is_err());
    }

    #[test]
    #[should_panic(expected = "payload length")]
    fn wrong_payload_length_rejected() {
        let il = Interleaver::new(ReedSolomon::new(15, 11), 2);
        let _ = il.encode(&[0; 5]);
    }
}
