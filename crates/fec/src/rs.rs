//! Reed-Solomon coding over GF(2¹⁰) — the "KP4" RS(544,514) outer code.
//!
//! KP4 (IEEE 802.3 clause 91, reused by 802.3bs/cd/ck at PAM4 rates) is the
//! workhorse outer code of every transceiver in the paper. It corrects
//! t = 15 symbol errors per 544-symbol codeword, and its celebrated
//! *threshold* — pre-FEC BER of 2×10⁻⁴ yielding effectively error-free
//! output — is the horizontal line drawn across Figs. 11–13.
//!
//! The implementation is a textbook-correct systematic encoder plus a
//! Berlekamp-Massey / Chien / Forney decoder, generic over (n, k) so tests
//! can exercise small codes exhaustively.

use crate::gf::{self, Gf};
use serde::{Deserialize, Serialize};

/// Decoding failure: more errors than the code can correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TooManyErrors;

impl std::fmt::Display for TooManyErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "uncorrectable codeword: error weight exceeds t")
    }
}

impl std::error::Error for TooManyErrors {}

/// A systematic Reed-Solomon code RS(n, k) over GF(2¹⁰).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// Generator polynomial, lowest-degree coefficient first; degree = n−k.
    generator: Vec<Gf>,
}

impl ReedSolomon {
    /// Constructs RS(n, k).
    ///
    /// # Panics
    /// Panics unless `k < n ≤ 1023` and `n − k` is even.
    pub fn new(n: usize, k: usize) -> ReedSolomon {
        assert!(n <= gf::GROUP_ORDER, "n must be ≤ 1023 for GF(2^10)");
        assert!(k < n, "k must be < n");
        assert!(
            (n - k).is_multiple_of(2),
            "n − k must be even (2t parity symbols)"
        );
        // g(x) = Π_{i=0}^{2t-1} (x − α^i); lowest-degree first.
        let two_t = n - k;
        let mut g: Vec<Gf> = vec![1];
        for i in 0..two_t {
            let root = gf::alpha_pow(i as i64);
            // Multiply g by (x + root)  (minus == plus in GF(2^m)).
            let mut next = vec![0 as Gf; g.len() + 1];
            for (j, &c) in g.iter().enumerate() {
                next[j + 1] ^= c; // · x
                next[j] ^= gf::mul(c, root); // · root
            }
            g = next;
        }
        ReedSolomon { n, k, generator: g }
    }

    /// The KP4 code: RS(544, 514), t = 15, 10-bit symbols.
    pub fn kp4() -> ReedSolomon {
        ReedSolomon::new(544, 514)
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Correctable symbol errors per codeword.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Code rate k/n.
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.n as f64
    }

    /// Encodes `data` (length k) into a codeword `[data | parity]` of
    /// length n. Codeword index 0 is the highest-degree coefficient.
    ///
    /// # Panics
    /// Panics if `data.len() != k` or any symbol exceeds 10 bits.
    pub fn encode(&self, data: &[Gf]) -> Vec<Gf> {
        assert_eq!(data.len(), self.k, "data must be exactly k symbols");
        assert!(
            data.iter().all(|&s| (s as usize) < gf::FIELD_SIZE),
            "symbols must fit in 10 bits"
        );
        let two_t = self.n - self.k;
        // Compute remainder of d(x)·x^{2t} divided by g(x) via synthetic
        // division. `rem` holds coefficients highest-degree-first.
        let mut rem = vec![0 as Gf; two_t];
        for &d in data {
            let feedback = gf::add(d, rem[0]);
            // Shift left and subtract feedback·g.
            for j in 0..two_t - 1 {
                rem[j] = gf::add(rem[j + 1], gf::mul(feedback, self.generator[two_t - 1 - j]));
            }
            rem[two_t - 1] = gf::mul(feedback, self.generator[0]);
        }
        let mut cw = Vec::with_capacity(self.n);
        cw.extend_from_slice(data);
        cw.extend_from_slice(&rem);
        cw
    }

    /// Computes the 2t syndromes of `received`; all-zero means a valid
    /// codeword (or an undetectable error pattern).
    pub fn syndromes(&self, received: &[Gf]) -> Vec<Gf> {
        assert_eq!(received.len(), self.n, "received word must be n symbols");
        let two_t = self.n - self.k;
        (0..two_t)
            .map(|j| {
                // S_j = r(α^j) with r(x) = Σ_i v_i x^{n-1-i}.
                let alpha_j = gf::alpha_pow(j as i64);
                let mut acc: Gf = 0;
                for &v in received {
                    acc = gf::add(gf::mul(acc, alpha_j), v);
                }
                acc
            })
            .collect()
    }

    /// Decodes in place, returning the number of symbol errors corrected.
    ///
    /// Returns `Err(TooManyErrors)` when the error weight exceeds t (the
    /// usual detected-uncorrectable case). As with any bounded-distance
    /// decoder, patterns far beyond t can occasionally miscorrect.
    pub fn decode(&self, received: &mut [Gf]) -> Result<usize, TooManyErrors> {
        let synd = self.syndromes(received);
        if synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }
        let sigma = berlekamp_massey(&synd);
        let nu = sigma.len() - 1;
        if nu > self.t() {
            return Err(TooManyErrors);
        }
        // Chien search restricted to valid (possibly shortened) positions.
        let mut error_positions = Vec::with_capacity(nu);
        for pos in 0..self.n {
            // Error at vector index i ↔ polynomial degree p = n−1−i,
            // locator X = α^p; σ has roots at X⁻¹.
            let p = (self.n - 1 - pos) as i64;
            let x_inv = gf::alpha_pow(-p);
            if gf::poly_eval(&sigma, x_inv) == 0 {
                error_positions.push(pos);
            }
        }
        if error_positions.len() != nu {
            return Err(TooManyErrors);
        }
        // Forney: Ω(x) = S(x)·σ(x) mod x^{2t};  e = X·Ω(X⁻¹)/σ'(X⁻¹).
        let omega = poly_mul_mod(&synd, &sigma, self.n - self.k);
        let sigma_deriv = formal_derivative(&sigma);
        for &pos in &error_positions {
            let p = (self.n - 1 - pos) as i64;
            let x = gf::alpha_pow(p);
            let x_inv = gf::alpha_pow(-p);
            let num = gf::poly_eval(&omega, x_inv);
            let den = gf::poly_eval(&sigma_deriv, x_inv);
            if den == 0 {
                return Err(TooManyErrors);
            }
            let magnitude = gf::mul(x, gf::div(num, den));
            received[pos] = gf::add(received[pos], magnitude);
        }
        // Re-check: a miscorrection beyond t can leave bad syndromes.
        if self.syndromes(received).iter().any(|&s| s != 0) {
            return Err(TooManyErrors);
        }
        Ok(nu)
    }

    /// Errata decoding: corrects ν errors plus μ *erasures* (positions
    /// known to be unreliable — e.g. symbols that arrived on a lane the
    /// DSP has declared dead) as long as `2ν + μ ≤ 2t`. With all 30 KP4
    /// parity symbols spent on erasures, a codeword survives a burst twice
    /// as long as blind decoding could handle.
    ///
    /// Returns `(errors_corrected, erasures_filled)`.
    pub fn decode_errata(
        &self,
        received: &mut [Gf],
        erasures: &[usize],
    ) -> Result<(usize, usize), TooManyErrors> {
        let two_t = self.n - self.k;
        let mu = erasures.len();
        if mu > two_t {
            return Err(TooManyErrors);
        }
        assert!(
            erasures.iter().all(|&p| p < self.n),
            "erasure positions must be in range"
        );
        {
            let mut sorted = erasures.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), mu, "erasure positions must be distinct");
        }
        let synd = self.syndromes(received);
        if synd.iter().all(|&s| s == 0) {
            return Ok((0, 0)); // also covers erased-but-actually-correct
        }

        // Erasure locator Λ(x) = Π (1 − X_j x), lowest-degree first.
        let mut lambda: Vec<Gf> = vec![1];
        for &pos in erasures {
            let x_j = gf::alpha_pow((self.n - 1 - pos) as i64);
            let mut next = vec![0 as Gf; lambda.len() + 1];
            for (i, &c) in lambda.iter().enumerate() {
                next[i] = gf::add(next[i], c);
                next[i + 1] = gf::add(next[i + 1], gf::mul(c, x_j));
            }
            lambda = next;
        }

        // Modified syndromes Ξ = S·Λ mod x^{2t}; BM on the tail Ξ[μ..]
        // finds the *error* locator σ with ν ≤ (2t − μ)/2.
        let xi = poly_mul_mod(&synd, &lambda, two_t);
        let sigma = if mu < two_t {
            berlekamp_massey(&xi[mu..])
        } else {
            vec![1]
        };
        let nu = sigma.len() - 1;
        if 2 * nu + mu > two_t {
            return Err(TooManyErrors);
        }

        // Chien search for the error positions (erasures excluded).
        let mut error_positions = Vec::with_capacity(nu);
        if nu > 0 {
            for pos in 0..self.n {
                let p = (self.n - 1 - pos) as i64;
                if gf::poly_eval(&sigma, gf::alpha_pow(-p)) == 0 {
                    error_positions.push(pos);
                }
            }
            if error_positions.len() != nu {
                return Err(TooManyErrors);
            }
        }

        // Errata locator Ψ = σ·Λ; evaluator Ω = S·Ψ mod x^{2t}.
        let psi = poly_mul_full(&sigma, &lambda);
        let omega = poly_mul_mod(&synd, &psi, two_t);
        let psi_deriv = formal_derivative(&psi);
        for &pos in error_positions.iter().chain(erasures.iter()) {
            let p = (self.n - 1 - pos) as i64;
            let x = gf::alpha_pow(p);
            let x_inv = gf::alpha_pow(-p);
            let num = gf::poly_eval(&omega, x_inv);
            let den = gf::poly_eval(&psi_deriv, x_inv);
            if den == 0 {
                return Err(TooManyErrors);
            }
            let magnitude = gf::mul(x, gf::div(num, den));
            received[pos] = gf::add(received[pos], magnitude);
        }
        if self.syndromes(received).iter().any(|&s| s != 0) {
            return Err(TooManyErrors);
        }
        Ok((nu, mu))
    }
}

/// Full polynomial product (no truncation), lowest-degree first.
fn poly_mul_full(a: &[Gf], b: &[Gf]) -> Vec<Gf> {
    let mut out = vec![0 as Gf; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] = gf::add(out[i + j], gf::mul(ai, bj));
        }
    }
    out
}

/// Berlekamp-Massey: finds the minimal σ(x) (lowest-degree-first,
/// σ(0) = 1) with the syndrome recurrence.
fn berlekamp_massey(synd: &[Gf]) -> Vec<Gf> {
    let mut sigma: Vec<Gf> = vec![1];
    let mut b: Vec<Gf> = vec![1];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut bb: Gf = 1;
    for n in 0..synd.len() {
        let mut d: Gf = synd[n];
        for i in 1..=l {
            if i < sigma.len() {
                d = gf::add(d, gf::mul(sigma[i], synd[n - i]));
            }
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= n {
            let t = sigma.clone();
            let coef = gf::div(d, bb);
            // σ = σ − (d/b)·x^m·B
            let needed = b.len() + m;
            if sigma.len() < needed {
                sigma.resize(needed, 0);
            }
            for (i, &bi) in b.iter().enumerate() {
                sigma[i + m] = gf::add(sigma[i + m], gf::mul(coef, bi));
            }
            l = n + 1 - l;
            b = t;
            bb = d;
            m = 1;
        } else {
            let coef = gf::div(d, bb);
            let needed = b.len() + m;
            if sigma.len() < needed {
                sigma.resize(needed, 0);
            }
            for (i, &bi) in b.iter().enumerate() {
                sigma[i + m] = gf::add(sigma[i + m], gf::mul(coef, bi));
            }
            m += 1;
        }
    }
    // Trim trailing zeros so deg(σ) is meaningful.
    while sigma.len() > 1 && *sigma.last().expect("non-empty") == 0 {
        sigma.pop();
    }
    sigma
}

/// (a·b) mod x^cap, coefficients lowest-degree-first.
fn poly_mul_mod(a: &[Gf], b: &[Gf], cap: usize) -> Vec<Gf> {
    let mut out = vec![0 as Gf; cap.min(a.len() + b.len())];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 || i >= cap {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            if i + j >= cap {
                break;
            }
            out[i + j] = gf::add(out[i + j], gf::mul(ai, bj));
        }
    }
    out
}

/// Formal derivative in characteristic 2: odd-degree terms survive.
fn formal_derivative(p: &[Gf]) -> Vec<Gf> {
    if p.len() <= 1 {
        return vec![0];
    }
    let mut d = vec![0 as Gf; p.len() - 1];
    for (i, &c) in p.iter().enumerate().skip(1) {
        if i % 2 == 1 {
            d[i - 1] = c;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_data(rs: &ReedSolomon, rng: &mut StdRng) -> Vec<Gf> {
        (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect()
    }

    #[test]
    fn kp4_parameters() {
        let rs = ReedSolomon::kp4();
        assert_eq!(rs.n(), 544);
        assert_eq!(rs.k(), 514);
        assert_eq!(rs.t(), 15);
        assert!((rs.rate() - 514.0 / 544.0).abs() < 1e-12);
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let rs = ReedSolomon::new(15, 11);
        let data: Vec<Gf> = (1..=11).collect();
        let cw = rs.encode(&data);
        assert_eq!(&cw[..11], data.as_slice());
        assert!(
            rs.syndromes(&cw).iter().all(|&s| s == 0),
            "codeword must be valid"
        );
    }

    #[test]
    fn corrects_up_to_t_errors_small_code() {
        let rs = ReedSolomon::new(15, 11); // t = 2
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..200 {
            let data = random_data(&rs, &mut rng);
            let cw = rs.encode(&data);
            let mut rx = cw.clone();
            let nerr = rng.random_range(0..=rs.t());
            let mut positions: Vec<usize> = (0..rs.n()).collect();
            for i in 0..nerr {
                let j = rng.random_range(i..positions.len());
                positions.swap(i, j);
                let pos = positions[i];
                let e = rng.random_range(1..1024u16);
                rx[pos] ^= e;
            }
            let corrected = rs
                .decode(&mut rx)
                .unwrap_or_else(|_| panic!("trial {trial}: decode failed with {nerr} errors"));
            assert_eq!(rx, cw, "trial {trial}");
            assert!(corrected <= nerr, "cannot correct more than injected");
        }
    }

    #[test]
    fn kp4_corrects_fifteen_errors() {
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(2);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        // 15 distinct positions.
        let mut pos: Vec<usize> = (0..rs.n()).collect();
        for i in 0..15 {
            let j = rng.random_range(i..pos.len());
            pos.swap(i, j);
            rx[pos[i]] ^= rng.random_range(1..1024u16);
        }
        assert_eq!(rs.decode(&mut rx).expect("15 errors are correctable"), 15);
        assert_eq!(rx, cw);
    }

    #[test]
    fn kp4_detects_sixteen_errors() {
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(3);
        let mut detected = 0;
        let trials = 20;
        for _ in 0..trials {
            let data = random_data(&rs, &mut rng);
            let cw = rs.encode(&data);
            let mut rx = cw.clone();
            let mut pos: Vec<usize> = (0..rs.n()).collect();
            for i in 0..16 {
                let j = rng.random_range(i..pos.len());
                pos.swap(i, j);
                rx[pos[i]] ^= rng.random_range(1..1024u16);
            }
            match rs.decode(&mut rx) {
                Err(TooManyErrors) => detected += 1,
                Ok(_) => assert_ne!(rx, cw, "cannot silently 'correct' 16 errors to truth"),
            }
        }
        assert!(
            detected >= trials - 1,
            "16 random errors should almost always be detected ({detected}/{trials})"
        );
    }

    #[test]
    fn zero_errors_decode_is_noop() {
        let rs = ReedSolomon::new(31, 25);
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        assert_eq!(rs.decode(&mut rx).unwrap(), 0);
        assert_eq!(rx, cw);
    }

    #[test]
    fn burst_of_t_adjacent_symbols_corrected() {
        // RS corrects any t symbol errors, including bursts — the reason
        // the concatenated design interleaves inner-code blocks.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        for sym in &mut rx[100..115] {
            *sym ^= 0x2AA;
        }
        assert_eq!(rs.decode(&mut rx).unwrap(), 15);
        assert_eq!(rx, cw);
    }

    #[test]
    fn errata_erasures_only_doubles_capacity() {
        // 2ν + μ ≤ 2t: with pure erasures KP4 fills 30 symbols, twice its
        // blind-correction budget of 15.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(11);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let erasures: Vec<usize> = (0..30).map(|i| i * 17).collect();
        for &p in &erasures {
            rx[p] = rng.random_range(0..1024u16); // garbage (may even be right)
        }
        let (errs, eras) = rs
            .decode_errata(&mut rx, &erasures)
            .expect("30 erasures fit");
        assert_eq!(rx, cw);
        assert_eq!(eras, 30);
        assert_eq!(errs, 0);
    }

    #[test]
    fn errata_mixes_errors_and_erasures() {
        // 10 erasures + 10 unknown errors: 2·10 + 10 = 30 = 2t, exactly
        // at capacity.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(12);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let erasures: Vec<usize> = (0..10).map(|i| 3 + i * 23).collect();
        for &p in &erasures {
            rx[p] ^= rng.random_range(1..1024u16);
        }
        for i in 0..10 {
            rx[300 + i * 11] ^= rng.random_range(1..1024u16);
        }
        let (errs, eras) = rs.decode_errata(&mut rx, &erasures).expect("at capacity");
        assert_eq!(rx, cw);
        assert_eq!((errs, eras), (10, 10));
    }

    #[test]
    fn errata_beyond_capacity_detected() {
        // 10 erasures + 11 errors: 2·11 + 10 = 32 > 30.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(13);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let erasures: Vec<usize> = (0..10).map(|i| 3 + i * 23).collect();
        for &p in &erasures {
            rx[p] ^= 0x111;
        }
        for i in 0..11 {
            rx[300 + i * 11] ^= rng.random_range(1..1024u16);
        }
        assert!(rs.decode_errata(&mut rx, &erasures).is_err());
    }

    #[test]
    fn errata_with_no_erasures_equals_plain_decode() {
        let rs = ReedSolomon::new(31, 25); // t = 3
        let mut rng = StdRng::seed_from_u64(14);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        rx[4] ^= 0x2A;
        rx[19] ^= 0x15;
        let (errs, eras) = rs.decode_errata(&mut rx, &[]).expect("2 ≤ t errors");
        assert_eq!(rx, cw);
        assert_eq!((errs, eras), (2, 0));
    }

    #[test]
    fn errata_dead_lane_scenario() {
        // A dead WDM lane erases every 4th symbol of a (40, 20) stripe —
        // 10 of 40 symbols gone, fine for t = 10.
        let rs = ReedSolomon::new(40, 20);
        let mut rng = StdRng::seed_from_u64(15);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let erasures: Vec<usize> = (0..40).step_by(4).collect();
        for &p in &erasures {
            rx[p] = 0;
        }
        rs.decode_errata(&mut rx, &erasures)
            .expect("one lane of four");
        assert_eq!(rx, cw);
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn errata_rejects_duplicate_erasures() {
        let rs = ReedSolomon::new(15, 11);
        let data: Vec<Gf> = (1..=11).collect();
        let mut cw = rs.encode(&data);
        let _ = rs.decode_errata(&mut cw, &[3, 3]);
    }

    #[test]
    #[should_panic(expected = "data must be exactly k symbols")]
    fn encode_rejects_wrong_length() {
        let rs = ReedSolomon::new(15, 11);
        let _ = rs.encode(&[1, 2, 3]);
    }

    #[test]
    fn generator_has_expected_degree() {
        let rs = ReedSolomon::new(15, 11);
        assert_eq!(rs.generator.len(), 5); // degree 4 = 2t
        let kp4 = ReedSolomon::kp4();
        assert_eq!(kp4.generator.len(), 31); // degree 30
    }
}
