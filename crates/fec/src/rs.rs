//! Reed-Solomon coding over GF(2¹⁰) — the "KP4" RS(544,514) outer code.
//!
//! KP4 (IEEE 802.3 clause 91, reused by 802.3bs/cd/ck at PAM4 rates) is the
//! workhorse outer code of every transceiver in the paper. It corrects
//! t = 15 symbol errors per 544-symbol codeword, and its celebrated
//! *threshold* — pre-FEC BER of 2×10⁻⁴ yielding effectively error-free
//! output — is the horizontal line drawn across Figs. 11–13.
//!
//! The hot paths are table-driven kernels (DESIGN §6.8): encode is an LFSR
//! whose feedback taps are one precomputed row XOR per message symbol,
//! syndromes/Chien run on precomputed ×α^j stride tables, and decode works
//! entirely out of a caller-owned [`RsScratch`] so the steady state
//! allocates nothing. Every kernel is bit-identical to the frozen textbook
//! implementation in [`crate::reference`] — enforced by golden vectors,
//! differential proptests, and an opt-in shadow mode that cross-checks
//! every call in-process.

use crate::gf::{self, Gf, MulTable};
use crate::reference::ReferenceRs;
use crate::scratch::RsScratch;
use serde::de::DeError;
use serde::{Content, Deserialize, Serialize};

/// Decoding failure: more errors than the code can correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TooManyErrors;

impl std::fmt::Display for TooManyErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "uncorrectable codeword: error weight exceeds t")
    }
}

impl std::error::Error for TooManyErrors {}

/// Precomputed multiply tables for the fast encode/decode kernels.
///
/// Rebuilt from `(n, k, generator)` on construction and deserialization;
/// never serialized or compared.
#[derive(Clone)]
struct Kernel {
    /// `FIELD_SIZE` rows of `2t` symbols: row `fb` holds
    /// `fb·g_{2t−1−j}` at offset `j` — the reversed generator scaled by
    /// every possible LFSR feedback value, so one encode step is a shift
    /// plus one contiguous row XOR.
    feedback: Vec<Gf>,
    /// `strides[j]` multiplies by α^j: the Horner step for syndrome `j`
    /// and the per-coefficient step of the Chien search.
    strides: Vec<MulTable>,
}

impl Kernel {
    fn build(generator: &[Gf], two_t: usize) -> Kernel {
        let mut grev = vec![0 as Gf; two_t];
        for (j, slot) in grev.iter_mut().enumerate() {
            *slot = generator[two_t - 1 - j];
        }
        let mut feedback = vec![0 as Gf; gf::FIELD_SIZE * two_t];
        for (fb, row) in feedback.chunks_exact_mut(two_t).enumerate() {
            row.copy_from_slice(&grev);
            gf::mul_slice(fb as Gf, row);
        }
        let strides = (0..two_t)
            .map(|j| MulTable::alpha_stride(j as i64))
            .collect();
        Kernel { feedback, strides }
    }
}

/// A systematic Reed-Solomon code RS(n, k) over GF(2¹⁰).
#[derive(Clone)]
pub struct ReedSolomon {
    n: usize,
    k: usize,
    /// Generator polynomial, lowest-degree coefficient first; degree = n−k.
    generator: Vec<Gf>,
    kernel: Kernel,
    shadow: bool,
}

impl std::fmt::Debug for ReedSolomon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReedSolomon")
            .field("n", &self.n)
            .field("k", &self.k)
            .field("generator", &self.generator)
            .finish()
    }
}

/// Identity is the code, not the derived tables or the shadow flag.
impl PartialEq for ReedSolomon {
    fn eq(&self, other: &ReedSolomon) -> bool {
        self.n == other.n && self.k == other.k && self.generator == other.generator
    }
}

/// The serialized shape (same field names the old derived impl produced,
/// so on-disk artifacts and cross-type comparisons are unchanged).
#[derive(Serialize, Deserialize)]
struct Wire {
    n: usize,
    k: usize,
    generator: Vec<Gf>,
}

impl Serialize for ReedSolomon {
    fn to_content(&self) -> Content {
        Wire {
            n: self.n,
            k: self.k,
            generator: self.generator.clone(),
        }
        .to_content()
    }
}

impl<'de> Deserialize<'de> for ReedSolomon {
    fn from_content(content: &Content) -> Result<ReedSolomon, DeError> {
        let wire = Wire::from_content(content)?;
        if wire.n > gf::GROUP_ORDER
            || wire.k >= wire.n
            || wire.generator.len() != wire.n - wire.k + 1
        {
            return Err(DeError::custom("inconsistent ReedSolomon parameters"));
        }
        Ok(ReedSolomon::from_parts(wire.n, wire.k, wire.generator))
    }
}

impl ReedSolomon {
    /// Constructs RS(n, k).
    ///
    /// # Panics
    /// Panics unless `k < n ≤ 1023` and `n − k` is even.
    pub fn new(n: usize, k: usize) -> ReedSolomon {
        assert!(n <= gf::GROUP_ORDER, "n must be ≤ 1023 for GF(2^10)");
        assert!(k < n, "k must be < n");
        assert!(
            (n - k).is_multiple_of(2),
            "n − k must be even (2t parity symbols)"
        );
        // g(x) = Π_{i=0}^{2t-1} (x − α^i); lowest-degree first.
        let two_t = n - k;
        let mut g: Vec<Gf> = vec![1];
        for i in 0..two_t {
            let root = gf::alpha_pow(i as i64);
            // Multiply g by (x + root)  (minus == plus in GF(2^m)).
            let mut next = vec![0 as Gf; g.len() + 1];
            for (j, &c) in g.iter().enumerate() {
                next[j + 1] ^= c; // · x
                next[j] ^= gf::mul(c, root); // · root
            }
            g = next;
        }
        ReedSolomon::from_parts(n, k, g)
    }

    fn from_parts(n: usize, k: usize, generator: Vec<Gf>) -> ReedSolomon {
        let kernel = Kernel::build(&generator, n - k);
        ReedSolomon {
            n,
            k,
            generator,
            kernel,
            shadow: false,
        }
    }

    /// The KP4 code: RS(544, 514), t = 15, 10-bit symbols.
    pub fn kp4() -> ReedSolomon {
        ReedSolomon::new(544, 514)
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Correctable symbol errors per codeword.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Code rate k/n.
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.n as f64
    }

    /// Enables or disables shadow cross-checking (DESIGN §6.8): when on,
    /// every `encode`/`decode` call also runs the frozen
    /// [`crate::reference`] implementation and asserts the fast kernel
    /// produced a bit-identical result. Debug/bring-up tool — the whole
    /// point of the fast path is not to pay the reference cost.
    pub fn set_shadow_check(&mut self, on: bool) {
        self.shadow = on;
    }

    fn reference(&self) -> ReferenceRs {
        ReferenceRs::from_parts(self.n, self.k, self.generator.clone())
    }

    /// Encodes `data` (length k) into a codeword `[data | parity]` of
    /// length n. Codeword index 0 is the highest-degree coefficient.
    ///
    /// # Panics
    /// Panics if `data.len() != k` or any symbol exceeds 10 bits.
    pub fn encode(&self, data: &[Gf]) -> Vec<Gf> {
        let mut cw = Vec::new();
        self.encode_into(data, &mut cw);
        cw
    }

    /// [`encode`](Self::encode) into a reusable buffer (cleared first), so
    /// steady-state encoding allocates nothing.
    pub fn encode_into(&self, data: &[Gf], cw: &mut Vec<Gf>) {
        assert_eq!(data.len(), self.k, "data must be exactly k symbols");
        assert!(
            data.iter().all(|&s| (s as usize) < gf::FIELD_SIZE),
            "symbols must fit in 10 bits"
        );
        let two_t = self.n - self.k;
        cw.clear();
        cw.reserve(self.n);
        cw.extend_from_slice(data);
        cw.resize(self.n, 0);
        // Remainder of d(x)·x^{2t} divided by g(x) via synthetic division:
        // per symbol, shift the remainder register and XOR the precomputed
        // feedback row for fb = d ⊕ rem[0] (row j = fb·g_{2t−1−j}).
        let rem = &mut cw[self.k..];
        for &d in data {
            let fb = (d ^ rem[0]) as usize;
            let row = &self.kernel.feedback[fb * two_t..(fb + 1) * two_t];
            rem.copy_within(1.., 0);
            rem[two_t - 1] = 0;
            for (r, &f) in rem.iter_mut().zip(row) {
                *r ^= f;
            }
        }
        if self.shadow {
            let want = self.reference().encode(data);
            assert_eq!(cw.as_slice(), want.as_slice(), "shadow: encode mismatch");
        }
    }

    /// Computes the 2t syndromes of `received`; all-zero means a valid
    /// codeword (or an undetectable error pattern).
    pub fn syndromes(&self, received: &[Gf]) -> Vec<Gf> {
        let mut synd = Vec::new();
        self.syndromes_into(received, &mut synd);
        synd
    }

    /// Transposed-Horner syndromes: one pass over the word updating all 2t
    /// accumulators through the ×α^j stride tables — 2t independent
    /// dependency chains instead of 2t serial Horner sweeps.
    fn syndromes_into(&self, received: &[Gf], synd: &mut Vec<Gf>) {
        assert_eq!(received.len(), self.n, "received word must be n symbols");
        let two_t = self.n - self.k;
        synd.clear();
        synd.resize(two_t, 0);
        let strides = &self.kernel.strides;
        for &v in received {
            for (s, stride) in synd.iter_mut().zip(strides) {
                *s = stride.mul(*s) ^ v;
            }
        }
    }

    /// Decodes in place, returning the number of symbol errors corrected.
    ///
    /// Returns `Err(TooManyErrors)` when the error weight exceeds t (the
    /// usual detected-uncorrectable case). As with any bounded-distance
    /// decoder, patterns far beyond t can occasionally miscorrect.
    pub fn decode(&self, received: &mut [Gf]) -> Result<usize, TooManyErrors> {
        let mut scratch = RsScratch::new();
        self.decode_with(received, &mut scratch)
    }

    /// [`decode`](Self::decode) using caller-owned scratch buffers, so a
    /// steady-state decode loop allocates nothing.
    pub fn decode_with(
        &self,
        received: &mut [Gf],
        scratch: &mut RsScratch,
    ) -> Result<usize, TooManyErrors> {
        let shadow_input = if self.shadow {
            Some(received.to_vec())
        } else {
            None
        };
        let got = self.decode_fast(received, scratch);
        if let Some(mut input) = shadow_input {
            let want = self.reference().decode(&mut input);
            assert_eq!(got, want, "shadow: decode result mismatch");
            assert_eq!(received, input.as_slice(), "shadow: decode buffer mismatch");
        }
        got
    }

    fn decode_fast(
        &self,
        received: &mut [Gf],
        scratch: &mut RsScratch,
    ) -> Result<usize, TooManyErrors> {
        let two_t = self.n - self.k;
        self.syndromes_into(received, &mut scratch.synd);
        if scratch.synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }
        berlekamp_massey_into(
            &scratch.synd,
            &mut scratch.sigma,
            &mut scratch.prev,
            &mut scratch.tmp,
        );
        let nu = scratch.sigma.len() - 1;
        if nu > self.t() {
            return Err(TooManyErrors);
        }
        // Chien search restricted to valid (possibly shortened) positions,
        // as stepping registers: term_k holds σ_k·(α^{−p})^k for the
        // current position's locator degree p = n−1−pos, advanced one ×α^k
        // table load per coefficient per position. σ (degree ν) has at most
        // ν roots, so the scan can stop as soon as ν are found.
        let sigma = &scratch.sigma;
        scratch.term.clear();
        scratch.term.resize(nu + 1, 0);
        let p0 = (self.n - 1) as i64;
        for (k, (term, &s)) in scratch.term.iter_mut().zip(sigma).enumerate().skip(1) {
            *term = gf::mul(s, gf::alpha_pow(-(k as i64) * p0));
        }
        scratch.positions.clear();
        let strides = &self.kernel.strides[1..=nu];
        for pos in 0..self.n {
            // σ(0) = 1 by construction, so the constant term is 1.
            let mut eval: Gf = 1;
            for (term, stride) in scratch.term[1..=nu].iter_mut().zip(strides) {
                eval ^= *term;
                *term = stride.mul(*term);
            }
            if eval == 0 {
                scratch.positions.push(pos);
                if scratch.positions.len() == nu {
                    break;
                }
            }
        }
        if scratch.positions.len() != nu {
            return Err(TooManyErrors);
        }
        // Forney: Ω(x) = S(x)·σ(x) mod x^{2t};  e = X·Ω(X⁻¹)/σ'(X⁻¹).
        poly_mul_mod_into(&scratch.synd, &scratch.sigma, two_t, &mut scratch.omega);
        formal_derivative_into(&scratch.sigma, &mut scratch.deriv);
        scratch.magnitudes.clear();
        for &pos in &scratch.positions {
            let p = (self.n - 1 - pos) as i64;
            let x = gf::alpha_pow(p);
            let x_inv = gf::alpha_pow(-p);
            let num = gf::poly_eval(&scratch.omega, x_inv);
            let den = gf::poly_eval(&scratch.deriv, x_inv);
            if den == 0 {
                return Err(TooManyErrors);
            }
            let magnitude = gf::mul(x, gf::div(num, den));
            received[pos] ^= magnitude;
            scratch.magnitudes.push(magnitude);
        }
        // Re-check: a miscorrection beyond t can leave bad syndromes. The
        // corrected word's syndromes are exactly S_j ⊕ Σ_i e_i·α^{j·p_i}
        // (GF arithmetic is exact), so fold the corrections into the
        // already-computed syndromes instead of rescanning all n symbols.
        for (&pos, &e) in scratch.positions.iter().zip(&scratch.magnitudes) {
            let x = gf::alpha_pow((self.n - 1 - pos) as i64);
            let mut y = e;
            for s in scratch.synd.iter_mut() {
                *s ^= y;
                y = gf::mul(y, x);
            }
        }
        if scratch.synd.iter().any(|&s| s != 0) {
            return Err(TooManyErrors);
        }
        Ok(nu)
    }

    /// Errata decoding: corrects ν errors plus μ *erasures* (positions
    /// known to be unreliable — e.g. symbols that arrived on a lane the
    /// DSP has declared dead) as long as `2ν + μ ≤ 2t`. With all 30 KP4
    /// parity symbols spent on erasures, a codeword survives a burst twice
    /// as long as blind decoding could handle.
    ///
    /// Returns `(errors_corrected, erasures_filled)`.
    pub fn decode_errata(
        &self,
        received: &mut [Gf],
        erasures: &[usize],
    ) -> Result<(usize, usize), TooManyErrors> {
        let two_t = self.n - self.k;
        let mu = erasures.len();
        if mu > two_t {
            return Err(TooManyErrors);
        }
        assert!(
            erasures.iter().all(|&p| p < self.n),
            "erasure positions must be in range"
        );
        {
            let mut sorted = erasures.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), mu, "erasure positions must be distinct");
        }
        let synd = self.syndromes(received);
        if synd.iter().all(|&s| s == 0) {
            return Ok((0, 0)); // also covers erased-but-actually-correct
        }

        // Erasure locator Λ(x) = Π (1 − X_j x), lowest-degree first.
        let mut lambda: Vec<Gf> = vec![1];
        for &pos in erasures {
            let x_j = gf::alpha_pow((self.n - 1 - pos) as i64);
            let mut next = vec![0 as Gf; lambda.len() + 1];
            for (i, &c) in lambda.iter().enumerate() {
                next[i] = gf::add(next[i], c);
                next[i + 1] = gf::add(next[i + 1], gf::mul(c, x_j));
            }
            lambda = next;
        }

        // Modified syndromes Ξ = S·Λ mod x^{2t}; BM on the tail Ξ[μ..]
        // finds the *error* locator σ with ν ≤ (2t − μ)/2.
        let xi = poly_mul_mod(&synd, &lambda, two_t);
        let sigma = if mu < two_t {
            berlekamp_massey(&xi[mu..])
        } else {
            vec![1]
        };
        let nu = sigma.len() - 1;
        if 2 * nu + mu > two_t {
            return Err(TooManyErrors);
        }

        // Chien search for the error positions (erasures excluded).
        let mut error_positions = Vec::with_capacity(nu);
        if nu > 0 {
            for pos in 0..self.n {
                let p = (self.n - 1 - pos) as i64;
                if gf::poly_eval(&sigma, gf::alpha_pow(-p)) == 0 {
                    error_positions.push(pos);
                }
            }
            if error_positions.len() != nu {
                return Err(TooManyErrors);
            }
        }

        // Errata locator Ψ = σ·Λ; evaluator Ω = S·Ψ mod x^{2t}.
        let psi = poly_mul_full(&sigma, &lambda);
        let omega = poly_mul_mod(&synd, &psi, two_t);
        let psi_deriv = formal_derivative(&psi);
        for &pos in error_positions.iter().chain(erasures.iter()) {
            let p = (self.n - 1 - pos) as i64;
            let x = gf::alpha_pow(p);
            let x_inv = gf::alpha_pow(-p);
            let num = gf::poly_eval(&omega, x_inv);
            let den = gf::poly_eval(&psi_deriv, x_inv);
            if den == 0 {
                return Err(TooManyErrors);
            }
            let magnitude = gf::mul(x, gf::div(num, den));
            received[pos] = gf::add(received[pos], magnitude);
        }
        if self.syndromes(received).iter().any(|&s| s != 0) {
            return Err(TooManyErrors);
        }
        Ok((nu, mu))
    }
}

/// Full polynomial product (no truncation), lowest-degree first.
fn poly_mul_full(a: &[Gf], b: &[Gf]) -> Vec<Gf> {
    let mut out = vec![0 as Gf; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] = gf::add(out[i + j], gf::mul(ai, bj));
        }
    }
    out
}

/// Berlekamp-Massey: finds the minimal σ(x) (lowest-degree-first,
/// σ(0) = 1) with the syndrome recurrence.
fn berlekamp_massey(synd: &[Gf]) -> Vec<Gf> {
    let mut sigma = Vec::new();
    let mut prev = Vec::new();
    let mut tmp = Vec::new();
    berlekamp_massey_into(synd, &mut sigma, &mut prev, &mut tmp);
    sigma
}

/// [`berlekamp_massey`] over caller-owned buffers: `sigma` receives σ,
/// `prev`/`tmp` are working storage for B(x). Step-for-step the same
/// update schedule as the textbook version, so σ is bit-identical.
fn berlekamp_massey_into(synd: &[Gf], sigma: &mut Vec<Gf>, prev: &mut Vec<Gf>, tmp: &mut Vec<Gf>) {
    sigma.clear();
    sigma.push(1);
    let b = prev;
    b.clear();
    b.push(1);
    let mut l = 0usize;
    let mut m = 1usize;
    let mut bb: Gf = 1;
    for n in 0..synd.len() {
        let mut d: Gf = synd[n];
        for i in 1..=l {
            if i < sigma.len() {
                d = gf::add(d, gf::mul(sigma[i], synd[n - i]));
            }
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= n {
            tmp.clear();
            tmp.extend_from_slice(sigma);
            let coef = gf::div(d, bb);
            // σ = σ − (d/b)·x^m·B
            let needed = b.len() + m;
            if sigma.len() < needed {
                sigma.resize(needed, 0);
            }
            for (i, &bi) in b.iter().enumerate() {
                sigma[i + m] = gf::add(sigma[i + m], gf::mul(coef, bi));
            }
            l = n + 1 - l;
            std::mem::swap(b, tmp);
            bb = d;
            m = 1;
        } else {
            let coef = gf::div(d, bb);
            let needed = b.len() + m;
            if sigma.len() < needed {
                sigma.resize(needed, 0);
            }
            for (i, &bi) in b.iter().enumerate() {
                sigma[i + m] = gf::add(sigma[i + m], gf::mul(coef, bi));
            }
            m += 1;
        }
    }
    // Trim trailing zeros so deg(σ) is meaningful.
    while sigma.len() > 1 && *sigma.last().expect("non-empty") == 0 {
        sigma.pop();
    }
}

/// (a·b) mod x^cap, coefficients lowest-degree-first.
fn poly_mul_mod(a: &[Gf], b: &[Gf], cap: usize) -> Vec<Gf> {
    let mut out = Vec::new();
    poly_mul_mod_into(a, b, cap, &mut out);
    out
}

/// [`poly_mul_mod`] into a caller-owned buffer.
fn poly_mul_mod_into(a: &[Gf], b: &[Gf], cap: usize, out: &mut Vec<Gf>) {
    out.clear();
    out.resize(cap.min(a.len() + b.len()), 0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 || i >= cap {
            continue;
        }
        let take = b.len().min(cap - i);
        gf::mul_add_slice(ai, &b[..take], &mut out[i..i + take]);
    }
}

/// Formal derivative in characteristic 2: odd-degree terms survive.
fn formal_derivative(p: &[Gf]) -> Vec<Gf> {
    let mut d = Vec::new();
    formal_derivative_into(p, &mut d);
    d
}

/// [`formal_derivative`] into a caller-owned buffer.
fn formal_derivative_into(p: &[Gf], d: &mut Vec<Gf>) {
    d.clear();
    if p.len() <= 1 {
        d.push(0);
        return;
    }
    d.resize(p.len() - 1, 0);
    for (i, &c) in p.iter().enumerate().skip(1) {
        if i % 2 == 1 {
            d[i - 1] = c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_data(rs: &ReedSolomon, rng: &mut StdRng) -> Vec<Gf> {
        (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect()
    }

    #[test]
    fn kp4_parameters() {
        let rs = ReedSolomon::kp4();
        assert_eq!(rs.n(), 544);
        assert_eq!(rs.k(), 514);
        assert_eq!(rs.t(), 15);
        assert!((rs.rate() - 514.0 / 544.0).abs() < 1e-12);
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let rs = ReedSolomon::new(15, 11);
        let data: Vec<Gf> = (1..=11).collect();
        let cw = rs.encode(&data);
        assert_eq!(&cw[..11], data.as_slice());
        assert!(
            rs.syndromes(&cw).iter().all(|&s| s == 0),
            "codeword must be valid"
        );
    }

    #[test]
    fn corrects_up_to_t_errors_small_code() {
        let rs = ReedSolomon::new(15, 11); // t = 2
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..200 {
            let data = random_data(&rs, &mut rng);
            let cw = rs.encode(&data);
            let mut rx = cw.clone();
            let nerr = rng.random_range(0..=rs.t());
            let mut positions: Vec<usize> = (0..rs.n()).collect();
            for i in 0..nerr {
                let j = rng.random_range(i..positions.len());
                positions.swap(i, j);
                let pos = positions[i];
                let e = rng.random_range(1..1024u16);
                rx[pos] ^= e;
            }
            let corrected = rs
                .decode(&mut rx)
                .unwrap_or_else(|_| panic!("trial {trial}: decode failed with {nerr} errors"));
            assert_eq!(rx, cw, "trial {trial}");
            assert!(corrected <= nerr, "cannot correct more than injected");
        }
    }

    #[test]
    fn kp4_corrects_fifteen_errors() {
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(2);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        // 15 distinct positions.
        let mut pos: Vec<usize> = (0..rs.n()).collect();
        for i in 0..15 {
            let j = rng.random_range(i..pos.len());
            pos.swap(i, j);
            rx[pos[i]] ^= rng.random_range(1..1024u16);
        }
        assert_eq!(rs.decode(&mut rx).expect("15 errors are correctable"), 15);
        assert_eq!(rx, cw);
    }

    #[test]
    fn kp4_detects_sixteen_errors() {
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(3);
        let mut detected = 0;
        let trials = 20;
        for _ in 0..trials {
            let data = random_data(&rs, &mut rng);
            let cw = rs.encode(&data);
            let mut rx = cw.clone();
            let mut pos: Vec<usize> = (0..rs.n()).collect();
            for i in 0..16 {
                let j = rng.random_range(i..pos.len());
                pos.swap(i, j);
                rx[pos[i]] ^= rng.random_range(1..1024u16);
            }
            match rs.decode(&mut rx) {
                Err(TooManyErrors) => detected += 1,
                Ok(_) => assert_ne!(rx, cw, "cannot silently 'correct' 16 errors to truth"),
            }
        }
        assert!(
            detected >= trials - 1,
            "16 random errors should almost always be detected ({detected}/{trials})"
        );
    }

    #[test]
    fn zero_errors_decode_is_noop() {
        let rs = ReedSolomon::new(31, 25);
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        assert_eq!(rs.decode(&mut rx).unwrap(), 0);
        assert_eq!(rx, cw);
    }

    #[test]
    fn burst_of_t_adjacent_symbols_corrected() {
        // RS corrects any t symbol errors, including bursts — the reason
        // the concatenated design interleaves inner-code blocks.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(5);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        for sym in &mut rx[100..115] {
            *sym ^= 0x2AA;
        }
        assert_eq!(rs.decode(&mut rx).unwrap(), 15);
        assert_eq!(rx, cw);
    }

    #[test]
    fn encode_into_and_decode_with_reuse_buffers() {
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(21);
        let mut cw = Vec::new();
        let mut scratch = RsScratch::new();
        for _ in 0..5 {
            let data = random_data(&rs, &mut rng);
            rs.encode_into(&data, &mut cw);
            assert_eq!(cw, rs.encode(&data));
            let mut rx = cw.clone();
            for i in 0..12 {
                rx[i * 41] ^= 0x155;
            }
            assert_eq!(rs.decode_with(&mut rx, &mut scratch), Ok(12));
            assert_eq!(rx, cw);
        }
    }

    #[test]
    fn shadow_check_cross_validates_fast_kernels() {
        let mut rs = ReedSolomon::new(31, 21);
        rs.set_shadow_check(true);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..20 {
            let data = random_data(&rs, &mut rng);
            let cw = rs.encode(&data);
            let mut rx = cw.clone();
            let nerr = rng.random_range(0..=7usize); // includes beyond-t patterns
            for i in 0..nerr {
                rx[i * 4 + 1] ^= rng.random_range(1..1024u16);
            }
            let _ = rs.decode(&mut rx); // shadow asserts equivalence inside
        }
    }

    #[test]
    fn serde_wire_format_is_plain_n_k_generator() {
        let rs = ReedSolomon::new(15, 11);
        let content = rs.to_content();
        assert_eq!(
            content.field("n"),
            Some(&Content::U64(15)),
            "wire format must keep the pre-kernel field layout"
        );
        assert!(content.field("generator").is_some());
        let back = ReedSolomon::from_content(&content).expect("roundtrip");
        assert_eq!(back, rs);
        // And a rebuilt kernel behaves identically.
        let data: Vec<Gf> = (1..=11).collect();
        assert_eq!(back.encode(&data), rs.encode(&data));
    }

    #[test]
    fn errata_erasures_only_doubles_capacity() {
        // 2ν + μ ≤ 2t: with pure erasures KP4 fills 30 symbols, twice its
        // blind-correction budget of 15.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(11);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let erasures: Vec<usize> = (0..30).map(|i| i * 17).collect();
        for &p in &erasures {
            rx[p] = rng.random_range(0..1024u16); // garbage (may even be right)
        }
        let (errs, eras) = rs
            .decode_errata(&mut rx, &erasures)
            .expect("30 erasures fit");
        assert_eq!(rx, cw);
        assert_eq!(eras, 30);
        assert_eq!(errs, 0);
    }

    #[test]
    fn errata_mixes_errors_and_erasures() {
        // 10 erasures + 10 unknown errors: 2·10 + 10 = 30 = 2t, exactly
        // at capacity.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(12);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let erasures: Vec<usize> = (0..10).map(|i| 3 + i * 23).collect();
        for &p in &erasures {
            rx[p] ^= rng.random_range(1..1024u16);
        }
        for i in 0..10 {
            rx[300 + i * 11] ^= rng.random_range(1..1024u16);
        }
        let (errs, eras) = rs.decode_errata(&mut rx, &erasures).expect("at capacity");
        assert_eq!(rx, cw);
        assert_eq!((errs, eras), (10, 10));
    }

    #[test]
    fn errata_beyond_capacity_detected() {
        // 10 erasures + 11 errors: 2·11 + 10 = 32 > 30.
        let rs = ReedSolomon::kp4();
        let mut rng = StdRng::seed_from_u64(13);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let erasures: Vec<usize> = (0..10).map(|i| 3 + i * 23).collect();
        for &p in &erasures {
            rx[p] ^= 0x111;
        }
        for i in 0..11 {
            rx[300 + i * 11] ^= rng.random_range(1..1024u16);
        }
        assert!(rs.decode_errata(&mut rx, &erasures).is_err());
    }

    #[test]
    fn errata_with_no_erasures_equals_plain_decode() {
        let rs = ReedSolomon::new(31, 25); // t = 3
        let mut rng = StdRng::seed_from_u64(14);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        rx[4] ^= 0x2A;
        rx[19] ^= 0x15;
        let (errs, eras) = rs.decode_errata(&mut rx, &[]).expect("2 ≤ t errors");
        assert_eq!(rx, cw);
        assert_eq!((errs, eras), (2, 0));
    }

    #[test]
    fn errata_dead_lane_scenario() {
        // A dead WDM lane erases every 4th symbol of a (40, 20) stripe —
        // 10 of 40 symbols gone, fine for t = 10.
        let rs = ReedSolomon::new(40, 20);
        let mut rng = StdRng::seed_from_u64(15);
        let data = random_data(&rs, &mut rng);
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let erasures: Vec<usize> = (0..40).step_by(4).collect();
        for &p in &erasures {
            rx[p] = 0;
        }
        rs.decode_errata(&mut rx, &erasures)
            .expect("one lane of four");
        assert_eq!(rx, cw);
    }

    #[test]
    #[should_panic(expected = "must be distinct")]
    fn errata_rejects_duplicate_erasures() {
        let rs = ReedSolomon::new(15, 11);
        let data: Vec<Gf> = (1..=11).collect();
        let mut cw = rs.encode(&data);
        let _ = rs.decode_errata(&mut cw, &[3, 3]);
    }

    #[test]
    #[should_panic(expected = "data must be exactly k symbols")]
    fn encode_rejects_wrong_length() {
        let rs = ReedSolomon::new(15, 11);
        let _ = rs.encode(&[1, 2, 3]);
    }

    #[test]
    fn generator_has_expected_degree() {
        let rs = ReedSolomon::new(15, 11);
        assert_eq!(rs.generator.len(), 5); // degree 4 = 2t
        let kp4 = ReedSolomon::kp4();
        assert_eq!(kp4.generator.len(), 31); // degree 30
    }
}
