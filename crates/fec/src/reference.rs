//! Frozen textbook RS implementation — the behavioral oracle for the fast
//! kernels in [`crate::rs`] (DESIGN §6.8).
//!
//! This module is the pre-kernel encoder/decoder, kept verbatim: scalar
//! Horner syndromes, allocating Berlekamp–Massey, full-scan Chien search,
//! and a full syndrome recomputation for the post-correction check. It is
//! deliberately boring and must stay that way: golden vectors, the
//! differential proptests in `tests/fec_differential.rs`, and the shadow
//! mode on [`ReedSolomon`](crate::rs::ReedSolomon) all treat it as ground
//! truth. It is not exported for production use and nothing outside tests,
//! benches and shadow checks should call it.

use crate::gf::{self, Gf};
use crate::rs::TooManyErrors;

/// The textbook systematic RS(n, k) codec over GF(2¹⁰).
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceRs {
    n: usize,
    k: usize,
    /// Generator polynomial, lowest-degree coefficient first; degree = n−k.
    generator: Vec<Gf>,
}

impl ReferenceRs {
    /// Constructs the reference RS(n, k) with the same generator
    /// construction as [`ReedSolomon::new`](crate::rs::ReedSolomon::new).
    ///
    /// # Panics
    /// Panics unless `k < n ≤ 1023` and `n − k` is even.
    pub fn new(n: usize, k: usize) -> ReferenceRs {
        assert!(n <= gf::GROUP_ORDER, "n must be ≤ 1023 for GF(2^10)");
        assert!(k < n, "k must be < n");
        assert!(
            (n - k).is_multiple_of(2),
            "n − k must be even (2t parity symbols)"
        );
        // g(x) = Π_{i=0}^{2t-1} (x − α^i); lowest-degree first.
        let two_t = n - k;
        let mut g: Vec<Gf> = vec![1];
        for i in 0..two_t {
            let root = gf::alpha_pow(i as i64);
            let mut next = vec![0 as Gf; g.len() + 1];
            for (j, &c) in g.iter().enumerate() {
                next[j + 1] ^= c; // · x
                next[j] ^= gf::mul(c, root); // · root
            }
            g = next;
        }
        ReferenceRs { n, k, generator: g }
    }

    /// Builds a reference codec sharing an existing generator polynomial.
    pub fn from_parts(n: usize, k: usize, generator: Vec<Gf>) -> ReferenceRs {
        assert_eq!(generator.len(), n - k + 1, "generator degree must be n−k");
        ReferenceRs { n, k, generator }
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length in symbols.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Correctable symbol errors per codeword.
    pub fn t(&self) -> usize {
        (self.n - self.k) / 2
    }

    /// Encodes `data` (length k) into a codeword `[data | parity]` of
    /// length n — per-symbol scalar synthetic division.
    ///
    /// # Panics
    /// Panics if `data.len() != k` or any symbol exceeds 10 bits.
    pub fn encode(&self, data: &[Gf]) -> Vec<Gf> {
        assert_eq!(data.len(), self.k, "data must be exactly k symbols");
        assert!(
            data.iter().all(|&s| (s as usize) < gf::FIELD_SIZE),
            "symbols must fit in 10 bits"
        );
        let two_t = self.n - self.k;
        // Compute remainder of d(x)·x^{2t} divided by g(x) via synthetic
        // division. `rem` holds coefficients highest-degree-first.
        let mut rem = vec![0 as Gf; two_t];
        for &d in data {
            let feedback = gf::add(d, rem[0]);
            // Shift left and subtract feedback·g.
            for j in 0..two_t - 1 {
                rem[j] = gf::add(rem[j + 1], gf::mul(feedback, self.generator[two_t - 1 - j]));
            }
            rem[two_t - 1] = gf::mul(feedback, self.generator[0]);
        }
        let mut cw = Vec::with_capacity(self.n);
        cw.extend_from_slice(data);
        cw.extend_from_slice(&rem);
        cw
    }

    /// Computes the 2t syndromes of `received` with one scalar Horner
    /// sweep per syndrome.
    pub fn syndromes(&self, received: &[Gf]) -> Vec<Gf> {
        assert_eq!(received.len(), self.n, "received word must be n symbols");
        let two_t = self.n - self.k;
        (0..two_t)
            .map(|j| {
                // S_j = r(α^j) with r(x) = Σ_i v_i x^{n-1-i}.
                let alpha_j = gf::alpha_pow(j as i64);
                let mut acc: Gf = 0;
                for &v in received {
                    acc = gf::add(gf::mul(acc, alpha_j), v);
                }
                acc
            })
            .collect()
    }

    /// Decodes in place, returning the number of symbol errors corrected —
    /// the textbook Berlekamp–Massey / Chien / Forney pipeline.
    pub fn decode(&self, received: &mut [Gf]) -> Result<usize, TooManyErrors> {
        let synd = self.syndromes(received);
        if synd.iter().all(|&s| s == 0) {
            return Ok(0);
        }
        let sigma = berlekamp_massey(&synd);
        let nu = sigma.len() - 1;
        if nu > self.t() {
            return Err(TooManyErrors);
        }
        // Chien search restricted to valid (possibly shortened) positions.
        let mut error_positions = Vec::with_capacity(nu);
        for pos in 0..self.n {
            // Error at vector index i ↔ polynomial degree p = n−1−i,
            // locator X = α^p; σ has roots at X⁻¹.
            let p = (self.n - 1 - pos) as i64;
            let x_inv = gf::alpha_pow(-p);
            if gf::poly_eval(&sigma, x_inv) == 0 {
                error_positions.push(pos);
            }
        }
        if error_positions.len() != nu {
            return Err(TooManyErrors);
        }
        // Forney: Ω(x) = S(x)·σ(x) mod x^{2t};  e = X·Ω(X⁻¹)/σ'(X⁻¹).
        let omega = poly_mul_mod(&synd, &sigma, self.n - self.k);
        let sigma_deriv = formal_derivative(&sigma);
        for &pos in &error_positions {
            let p = (self.n - 1 - pos) as i64;
            let x = gf::alpha_pow(p);
            let x_inv = gf::alpha_pow(-p);
            let num = gf::poly_eval(&omega, x_inv);
            let den = gf::poly_eval(&sigma_deriv, x_inv);
            if den == 0 {
                return Err(TooManyErrors);
            }
            let magnitude = gf::mul(x, gf::div(num, den));
            received[pos] = gf::add(received[pos], magnitude);
        }
        // Re-check: a miscorrection beyond t can leave bad syndromes.
        if self.syndromes(received).iter().any(|&s| s != 0) {
            return Err(TooManyErrors);
        }
        Ok(nu)
    }
}

/// Berlekamp-Massey: finds the minimal σ(x) (lowest-degree-first,
/// σ(0) = 1) with the syndrome recurrence.
fn berlekamp_massey(synd: &[Gf]) -> Vec<Gf> {
    let mut sigma: Vec<Gf> = vec![1];
    let mut b: Vec<Gf> = vec![1];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut bb: Gf = 1;
    for n in 0..synd.len() {
        let mut d: Gf = synd[n];
        for i in 1..=l {
            if i < sigma.len() {
                d = gf::add(d, gf::mul(sigma[i], synd[n - i]));
            }
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= n {
            let t = sigma.clone();
            let coef = gf::div(d, bb);
            // σ = σ − (d/b)·x^m·B
            let needed = b.len() + m;
            if sigma.len() < needed {
                sigma.resize(needed, 0);
            }
            for (i, &bi) in b.iter().enumerate() {
                sigma[i + m] = gf::add(sigma[i + m], gf::mul(coef, bi));
            }
            l = n + 1 - l;
            b = t;
            bb = d;
            m = 1;
        } else {
            let coef = gf::div(d, bb);
            let needed = b.len() + m;
            if sigma.len() < needed {
                sigma.resize(needed, 0);
            }
            for (i, &bi) in b.iter().enumerate() {
                sigma[i + m] = gf::add(sigma[i + m], gf::mul(coef, bi));
            }
            m += 1;
        }
    }
    // Trim trailing zeros so deg(σ) is meaningful.
    while sigma.len() > 1 && *sigma.last().expect("non-empty") == 0 {
        sigma.pop();
    }
    sigma
}

/// (a·b) mod x^cap, coefficients lowest-degree-first.
fn poly_mul_mod(a: &[Gf], b: &[Gf], cap: usize) -> Vec<Gf> {
    let mut out = vec![0 as Gf; cap.min(a.len() + b.len())];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 || i >= cap {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            if i + j >= cap {
                break;
            }
            out[i + j] = gf::add(out[i + j], gf::mul(ai, bj));
        }
    }
    out
}

/// Formal derivative in characteristic 2: odd-degree terms survive.
fn formal_derivative(p: &[Gf]) -> Vec<Gf> {
    if p.len() <= 1 {
        return vec![0];
    }
    let mut d = vec![0 as Gf; p.len() - 1];
    for (i, &c) in p.iter().enumerate().skip(1) {
        if i % 2 == 1 {
            d[i - 1] = c;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_its_own_history() {
        // Sanity: the frozen codec corrects what it always corrected.
        let rs = ReferenceRs::new(15, 11);
        let data: Vec<Gf> = (1..=11).collect();
        let cw = rs.encode(&data);
        assert!(rs.syndromes(&cw).iter().all(|&s| s == 0));
        let mut rx = cw.clone();
        rx[2] ^= 0x3F;
        rx[13] ^= 0x101;
        assert_eq!(rs.decode(&mut rx), Ok(2));
        assert_eq!(rx, cw);
        assert_eq!((rs.n(), rs.k(), rs.t()), (15, 11, 2));
    }
}
