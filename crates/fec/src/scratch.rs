//! Reusable working storage for the fast RS decode kernels.
//!
//! [`ReedSolomon::decode_with`](crate::rs::ReedSolomon::decode_with) runs
//! entirely out of one of these: syndromes, Berlekamp–Massey state, the
//! Chien stepping registers, and the Forney polynomials all live in
//! caller-owned buffers whose capacity survives across calls, so a
//! steady-state decode loop performs zero heap allocation.

use crate::gf::Gf;

/// Scratch buffers for one in-flight RS decode.
///
/// A scratch is code-agnostic: buffers are sized on first use and grow to
/// the largest code decoded through them, so one scratch can serve decodes
/// of different (n, k) back to back.
#[derive(Debug, Default, Clone)]
pub struct RsScratch {
    /// The 2t syndromes of the received word.
    pub(crate) synd: Vec<Gf>,
    /// Error-locator polynomial σ(x), lowest-degree first.
    pub(crate) sigma: Vec<Gf>,
    /// Berlekamp–Massey's previous locator B(x).
    pub(crate) prev: Vec<Gf>,
    /// Berlekamp–Massey swap buffer.
    pub(crate) tmp: Vec<Gf>,
    /// Error-evaluator polynomial Ω(x).
    pub(crate) omega: Vec<Gf>,
    /// Formal derivative σ'(x).
    pub(crate) deriv: Vec<Gf>,
    /// Chien stepping registers: term_k = σ_k·(α^{−p})^k.
    pub(crate) term: Vec<Gf>,
    /// Located error positions (vector indices).
    pub(crate) positions: Vec<usize>,
    /// Forney error magnitudes, parallel to `positions`.
    pub(crate) magnitudes: Vec<Gf>,
}

impl RsScratch {
    /// Creates an empty scratch; buffers are allocated lazily on first
    /// decode and reused afterwards.
    pub fn new() -> RsScratch {
        RsScratch::default()
    }
}
