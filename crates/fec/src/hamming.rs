//! Extended Hamming (128,120) inner code with hard and Chase soft decoding.
//!
//! This is the open-construction stand-in for the paper's proprietary
//! soft-decision inner code (§3.3.2). It is the same family as the inner
//! code IEEE 802.3dj later adopted for 200 Gb/s-per-lane links: a
//! single-error-correcting / double-error-detecting extended Hamming code
//! over a 128-bit block, decoded *softly* with a Chase-2 test-pattern
//! search over the least-reliable bit positions. Soft decoding is where the
//! concatenation gain comes from: at the high pre-FEC error rates the inner
//! code runs at, most error patterns hit exactly the low-confidence bits,
//! and trying flips there recovers 2- and 3-error blocks a hard decoder
//! must give up on.
//!
//! A whole codeword fits in one `u128`; bit `i` of the word is position `i`.
//! Position 0 holds the overall parity; positions 1, 2, 4, …, 64 hold the
//! seven Hamming parities; the remaining 120 positions carry data.

use serde::{Deserialize, Serialize};

/// Outcome of hard-decision decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HardDecode {
    /// The word was (now) a valid codeword; `flipped` bits were corrected.
    Corrected {
        /// The corrected codeword.
        codeword: u128,
        /// 0 if the word was already valid, 1 if one bit was fixed.
        flipped: u32,
    },
    /// A double-bit error was detected; the word is uncorrectable.
    Detected,
}

/// The extended Hamming (128,120) code. Stateless; all methods are cheap
/// bit manipulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtHamming;

impl ExtHamming {
    /// Block length in bits.
    pub const N: usize = 128;
    /// Data bits per block.
    pub const K: usize = 120;
    /// Minimum distance (SEC-DED).
    pub const D_MIN: usize = 4;

    /// The 120 non-parity positions, in increasing order.
    fn data_positions() -> impl Iterator<Item = usize> {
        (1..128usize).filter(|&i| !i.is_power_of_two())
    }

    /// Encodes 120 data bits (low bits of `data`) into a 128-bit codeword.
    ///
    /// # Panics
    /// Panics if `data` has bits set above bit 119.
    pub fn encode(self, data: u128) -> u128 {
        assert!(data >> Self::K == 0, "data must fit in 120 bits");
        let mut cw: u128 = 0;
        for (bit_idx, pos) in Self::data_positions().enumerate() {
            if (data >> bit_idx) & 1 == 1 {
                cw |= 1u128 << pos;
            }
        }
        // Hamming parities: parity bit at position 2^j makes the XOR of all
        // positions with bit j set equal zero.
        for j in 0..7 {
            let p = 1usize << j;
            let mut parity = 0u32;
            for i in 1..128usize {
                if i & p != 0 && (cw >> i) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                cw |= 1u128 << p;
            }
        }
        // Overall parity at position 0 makes total weight even.
        if cw.count_ones() % 2 == 1 {
            cw |= 1;
        }
        cw
    }

    /// Extracts the 120 data bits from a codeword.
    pub fn extract_data(self, cw: u128) -> u128 {
        let mut data: u128 = 0;
        for (bit_idx, pos) in Self::data_positions().enumerate() {
            if (cw >> pos) & 1 == 1 {
                data |= 1u128 << bit_idx;
            }
        }
        data
    }

    /// Hamming syndrome: XOR of the indices of set bits (positions 1..127).
    fn syndrome(self, word: u128) -> usize {
        let mut s = 0usize;
        let mut w = word >> 1; // position 0 does not contribute
        let mut i = 1usize;
        while w != 0 {
            if w & 1 == 1 {
                s ^= i;
            }
            w >>= 1;
            i += 1;
        }
        s
    }

    /// True if `word` is a valid codeword.
    pub fn is_codeword(self, word: u128) -> bool {
        self.syndrome(word) == 0 && word.count_ones().is_multiple_of(2)
    }

    /// Hard-decision SEC-DED decoding.
    pub fn hard_decode(self, word: u128) -> HardDecode {
        let s = self.syndrome(word);
        let parity_ok = word.count_ones().is_multiple_of(2);
        match (s, parity_ok) {
            (0, true) => HardDecode::Corrected {
                codeword: word,
                flipped: 0,
            },
            (0, false) => HardDecode::Corrected {
                // Overall-parity bit itself is in error.
                codeword: word ^ 1,
                flipped: 1,
            },
            (_, false) => HardDecode::Corrected {
                // Single error at position s.
                codeword: word ^ (1u128 << s),
                flipped: 1,
            },
            (_, true) => HardDecode::Detected,
        }
    }

    /// Chase soft decoding.
    ///
    /// `hard` is the sliced word; `reliability[i]` is the confidence of bit
    /// `i` (any positive scale — only the ordering and relative magnitudes
    /// matter). Flips every subset of the `test_bits` least-reliable
    /// positions (so `2^test_bits` patterns), hard-decodes each, and
    /// returns the candidate codeword with the smallest soft discrepancy
    /// `Σ reliability[i]` over flipped-versus-received bits. Falls back to
    /// the received word when no pattern decodes.
    ///
    /// # Panics
    /// Panics unless `reliability.len() == 128` and `test_bits ≤ 8`.
    pub fn chase_decode(self, hard: u128, reliability: &[f64], test_bits: usize) -> u128 {
        assert_eq!(reliability.len(), Self::N, "need one reliability per bit");
        assert!(
            test_bits <= 8,
            "Chase pattern count is 2^test_bits; cap at 256"
        );
        // Indices of the least-reliable positions.
        let mut idx: Vec<usize> = (0..Self::N).collect();
        idx.sort_by(|&a, &b| {
            reliability[a]
                .partial_cmp(&reliability[b])
                .expect("reliabilities must not be NaN")
        });
        let weak = &idx[..test_bits];

        let mut best: Option<(f64, u128)> = None;
        for pattern in 0..(1u32 << test_bits) {
            let mut trial = hard;
            for (j, &pos) in weak.iter().enumerate() {
                if (pattern >> j) & 1 == 1 {
                    trial ^= 1u128 << pos;
                }
            }
            if let HardDecode::Corrected { codeword, .. } = self.hard_decode(trial) {
                // Soft metric: total reliability of bits where the
                // candidate disagrees with the received hard word.
                let diff = codeword ^ hard;
                let mut metric = 0.0;
                let mut d = diff;
                let mut i = 0usize;
                while d != 0 {
                    if d & 1 == 1 {
                        metric += reliability[i];
                    }
                    d >>= 1;
                    i += 1;
                }
                match best {
                    Some((m, _)) if m <= metric => {}
                    _ => best = Some((metric, codeword)),
                }
            }
        }
        best.map(|(_, cw)| cw).unwrap_or(hard)
    }

    /// Code rate.
    pub fn rate(self) -> f64 {
        Self::K as f64 / Self::N as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn encode_produces_valid_codewords() {
        let code = ExtHamming;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let data: u128 = rng.random::<u128>() >> 8;
            let cw = code.encode(data);
            assert!(code.is_codeword(cw));
            assert_eq!(code.extract_data(cw), data, "systematic extraction");
        }
    }

    #[test]
    fn corrects_any_single_bit_error() {
        let code = ExtHamming;
        let cw = code.encode(0xDEAD_BEEF_CAFE_F00D_u128);
        for pos in 0..128 {
            let corrupted = cw ^ (1u128 << pos);
            match code.hard_decode(corrupted) {
                HardDecode::Corrected { codeword, flipped } => {
                    assert_eq!(codeword, cw, "failed to fix error at {pos}");
                    assert_eq!(flipped, 1);
                }
                HardDecode::Detected => panic!("single error at {pos} misdetected"),
            }
        }
    }

    #[test]
    fn detects_all_double_errors_sampled() {
        let code = ExtHamming;
        let cw = code.encode(0x1234_5678_9ABC_u128);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            let a = rng.random_range(0..128u32);
            let mut b = rng.random_range(0..128u32);
            while b == a {
                b = rng.random_range(0..128u32);
            }
            let corrupted = cw ^ (1u128 << a) ^ (1u128 << b);
            assert_eq!(
                code.hard_decode(corrupted),
                HardDecode::Detected,
                "double error ({a},{b}) must be detected, never miscorrected"
            );
        }
    }

    #[test]
    fn min_distance_is_four() {
        // Every pair of distinct codewords differs in ≥ 4 bits (sampled).
        let code = ExtHamming;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = code.encode(rng.random::<u128>() >> 8);
            let b = code.encode(rng.random::<u128>() >> 8);
            if a != b {
                assert!((a ^ b).count_ones() >= 4);
            }
        }
    }

    #[test]
    fn chase_recovers_double_error_on_weak_bits() {
        let code = ExtHamming;
        let cw = code.encode(0xABCD_EF01_2345_u128);
        // Two errors at positions 10 and 77; their reliabilities are lowest.
        let corrupted = cw ^ (1u128 << 10) ^ (1u128 << 77);
        let mut rel = vec![1.0; 128];
        rel[10] = 0.05;
        rel[77] = 0.08;
        rel[3] = 0.5; // a red herring weak bit that is actually correct
        let decoded = code.chase_decode(corrupted, &rel, 4);
        assert_eq!(
            decoded, cw,
            "Chase must recover a 2-error pattern on weak bits"
        );
        // Hard decoding alone cannot.
        assert_eq!(code.hard_decode(corrupted), HardDecode::Detected);
    }

    #[test]
    fn chase_leaves_valid_words_alone() {
        let code = ExtHamming;
        let cw = code.encode(42u128);
        let rel = vec![1.0; 128];
        assert_eq!(code.chase_decode(cw, &rel, 5), cw);
    }

    #[test]
    fn chase_falls_back_gracefully() {
        // If the weak set misses the true errors, Chase should at worst
        // return *some* candidate or the input — never panic.
        let code = ExtHamming;
        let cw = code.encode(7u128);
        let corrupted = cw ^ (1u128 << 100) ^ (1u128 << 101) ^ (1u128 << 102);
        let rel = vec![1.0; 128]; // no useful soft info
        let out = code.chase_decode(corrupted, &rel, 3);
        // Output is either a codeword or the unchanged input.
        assert!(code.is_codeword(out) || out == corrupted);
    }

    #[test]
    #[should_panic(expected = "data must fit in 120 bits")]
    fn encode_rejects_oversized_data() {
        let _ = ExtHamming.encode(u128::MAX);
    }

    #[test]
    fn rate_is_correct() {
        assert!((ExtHamming.rate() - 0.9375).abs() < 1e-12);
    }
}
