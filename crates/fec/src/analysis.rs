//! Analytic FEC performance: KP4 threshold behaviour and concatenation gain.
//!
//! Monte Carlo cannot reach post-KP4 error rates (~10⁻¹⁵); the standard
//! practice — used here and by every 802.3 link-budget spreadsheet — is the
//! binomial symbol-error tail: RS(544,514) fails only when more than t = 15
//! of its 544 symbols are hit.

use crate::concat::ConcatenatedCode;
use crate::rs::ReedSolomon;
use lightwave_optics::ber::Pam4Receiver;
use lightwave_units::{math, Ber, Db, Dbm};
use serde::{Deserialize, Serialize};

/// Probability that a 10-bit RS symbol is corrupted at bit-error rate `p`,
/// assuming independent bit errors.
pub fn symbol_error_prob(bit_ber: Ber) -> f64 {
    1.0 - (1.0 - bit_ber.prob()).powi(10)
}

/// Post-KP4 codeword (frame) error rate at a given input BER.
pub fn kp4_frame_error_rate(input_ber: Ber) -> f64 {
    let rs = ReedSolomon::kp4();
    let ps = symbol_error_prob(input_ber);
    math::binomial_tail_gt(rs.n() as u64, rs.t() as u64, ps)
}

/// Approximate post-KP4 output BER: when the decoder fails it typically
/// leaves ~t+1 symbol errors in an n-symbol block.
pub fn kp4_output_ber(input_ber: Ber) -> Ber {
    let rs = ReedSolomon::kp4();
    let fer = kp4_frame_error_rate(input_ber);
    Ber::new(fer * (rs.t() + 1) as f64 / rs.n() as f64)
}

/// The classic KP4 threshold claim: input 2×10⁻⁴ → (effectively) error-free.
///
/// Returns the output BER at exactly the threshold input.
pub fn kp4_output_at_threshold() -> Ber {
    kp4_output_ber(Ber::KP4_THRESHOLD)
}

/// Result of the Fig. 12 experiment: what the inner code buys.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConcatGain {
    /// Raw-BER threshold the inner code can clean down to KP4's threshold.
    pub inner_threshold: Ber,
    /// Receiver sensitivity without the inner code (link must hit 2e-4 raw).
    pub sensitivity_plain: Dbm,
    /// Receiver sensitivity with the inner code (link may run dirtier).
    pub sensitivity_concat: Dbm,
    /// Optical sensitivity improvement.
    pub gain: Db,
}

/// Measures the concatenation gain through an optical receiver model at a
/// given MPI operating point (the two curves of Fig. 12 use −38 and
/// −32 dB MPI).
///
/// `blocks` controls the Monte-Carlo effort of the inner-threshold search.
pub fn concatenation_gain(
    code: &ConcatenatedCode,
    rx: &Pam4Receiver,
    mpi_ratio: f64,
    blocks: u64,
    seed: u64,
) -> Option<ConcatGain> {
    let inner_threshold = code.inner_threshold(Ber::KP4_THRESHOLD, blocks, seed);
    let plain = rx.sensitivity(Ber::KP4_THRESHOLD, mpi_ratio, None)?;
    let concat = rx.sensitivity(inner_threshold, mpi_ratio, None)?;
    Some(ConcatGain {
        inner_threshold,
        sensitivity_plain: plain,
        sensitivity_concat: concat,
        gain: plain - concat,
    })
}

/// The paper's published operating point for the production (proprietary)
/// inner code: 1.6 dB sensitivity gain at the KP4 threshold (Fig. 12).
/// Our open Chase-decoded inner code lands somewhat below this; system
/// models that need the production figure use this constant, clearly
/// attributed (see DESIGN.md §5 substitution 3).
pub const PAPER_SFEC_GAIN_DB: f64 = 1.6;

/// Effective raw-BER threshold for a production link using the paper's
/// concatenated code, derived by walking 1.6 dB of optical gain back
/// through a thermal-noise-limited Q-model from the KP4 threshold.
pub fn paper_equivalent_inner_threshold() -> Ber {
    let q_at_kp4 = Ber::KP4_THRESHOLD.q_factor();
    // Optical dB map 1:1 onto Q in a thermal-limited IM-DD receiver.
    let q = q_at_kp4 / 10f64.powf(PAPER_SFEC_GAIN_DB / 10.0);
    Ber::from_q_factor(q)
}

/// Net electrical coding gain of the concatenated scheme at a target output
/// BER, in dB: the SNR difference between uncoded and coded operation,
/// accounting for the rate penalty.
pub fn net_coding_gain_db(inner_threshold: Ber, target: Ber, rate: f64) -> f64 {
    let q_uncoded = target.q_factor();
    let q_coded = inner_threshold.q_factor();
    20.0 * (q_uncoded / q_coded).log10() + 10.0 * rate.log10()
}

/// Hard-decision inner decoding analytic output-BER estimate (union bound
/// style): the SEC-DED block fails on ≥ 2 errors; on a detected double the
/// 2 errors remain, and on ≥ 3 a miscorrection may add one.
pub fn hamming_hard_output_ber(input_ber: Ber) -> Ber {
    let n = 128.0;
    let p = input_ber.prob();
    // P(exactly 2) leaves 2 bad bits; P(≥3) leaves ≈ 4 (3 + 1 miscorrect).
    let p2 = math::ln_binomial(128, 2).exp() * p.powi(2) * (1.0 - p).powi(126);
    let p3 = math::binomial_tail_gt(128, 2, p);
    Ber::new((p2 * 2.0 + p3 * 4.0) / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concat::InnerDecoding;
    use lightwave_optics::ber::mpi_db;

    #[test]
    fn kp4_threshold_is_effectively_error_free() {
        // At 2e-4 input the output should be astronomically clean — this is
        // the whole reason the industry quotes "2e-4" as *the* threshold.
        let out = kp4_output_at_threshold();
        assert!(
            out.prob() < 1e-13,
            "KP4 at threshold gave {out}, expected < 1e-13"
        );
    }

    #[test]
    fn kp4_cliff_behaviour() {
        // An order of magnitude above threshold the code falls apart;
        // an order below, the output is beyond astronomically clean.
        assert!(kp4_output_ber(Ber::new(2e-3)).prob() > 1e-6);
        assert!(kp4_output_ber(Ber::new(2e-5)).prob() < 1e-30);
    }

    #[test]
    fn symbol_error_prob_is_about_10x_bit_ber_when_small() {
        let p = symbol_error_prob(Ber::new(1e-5));
        assert!((p / 1e-4 - 1.0).abs() < 0.01);
    }

    #[test]
    fn hamming_hard_analytic_matches_monte_carlo() {
        let code = ConcatenatedCode {
            inner_decoding: InnerDecoding::Hard,
            ..ConcatenatedCode::default()
        };
        let p = Ber::new(5e-3);
        let analytic = hamming_hard_output_ber(p).prob();
        let mc = code.inner_waterfall_point(p, 8000, 21).output_ber.prob();
        let ratio = mc / analytic;
        assert!(
            (0.4..2.5).contains(&ratio),
            "hard-decode MC {mc:.3e} vs analytic {analytic:.3e}"
        );
    }

    #[test]
    fn paper_equivalent_threshold_is_sane() {
        let t = paper_equivalent_inner_threshold();
        // 1.6 optical dB back from Q=3.54 → Q≈2.45 → BER ≈ 7e-3.
        assert!(
            (4e-3..1.2e-2).contains(&t.prob()),
            "paper-equivalent inner threshold {t} out of expected range"
        );
    }

    #[test]
    fn measured_concat_gain_is_material() {
        // Our open inner code should buy at least 1 dB of the paper's
        // 1.6 dB at the −32 dB MPI operating point of Fig. 12.
        let code = ConcatenatedCode::default();
        let rx = Pam4Receiver::cwdm4_50g();
        let gain =
            concatenation_gain(&code, &rx, mpi_db(-32.0), 1500, 5).expect("sensitivities exist");
        assert!(
            gain.gain.db() > 0.8,
            "concatenation gain {} too small",
            gain.gain
        );
        assert!(
            gain.gain.db() < 2.5,
            "concatenation gain {} implausibly large",
            gain.gain
        );
        assert!(gain.inner_threshold.prob() > Ber::KP4_THRESHOLD.prob());
    }

    #[test]
    fn net_coding_gain_positive_for_real_codes() {
        let g = net_coding_gain_db(Ber::new(2e-3), Ber::KP4_THRESHOLD, 0.9375 * 514.0 / 544.0);
        assert!(g > 0.0, "net coding gain {g} should be positive");
    }
}
