//! Property tests for the FEC codecs.

use lightwave_fec::hamming::HardDecode;
use lightwave_fec::{ExtHamming, Interleaver, ReedSolomon};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hamming_encode_extract_identity(data in 0u128..(1u128 << 120)) {
        let code = ExtHamming;
        let cw = code.encode(data);
        prop_assert!(code.is_codeword(cw));
        prop_assert_eq!(code.extract_data(cw), data);
    }

    #[test]
    fn hamming_single_error_always_corrects(data in 0u128..(1u128 << 100), pos in 0usize..128) {
        let code = ExtHamming;
        let cw = code.encode(data);
        match code.hard_decode(cw ^ (1u128 << pos)) {
            HardDecode::Corrected { codeword, flipped } => {
                prop_assert_eq!(codeword, cw);
                prop_assert_eq!(flipped, 1);
            }
            HardDecode::Detected => prop_assert!(false, "single error misdetected"),
        }
    }

    #[test]
    fn hamming_double_error_always_detected(
        data in 0u128..(1u128 << 100),
        a in 0usize..128,
        b in 0usize..128,
    ) {
        prop_assume!(a != b);
        let code = ExtHamming;
        let cw = code.encode(data);
        prop_assert_eq!(
            code.hard_decode(cw ^ (1u128 << a) ^ (1u128 << b)),
            HardDecode::Detected
        );
    }

    #[test]
    fn rs_corrects_any_pattern_within_t(seed in 0u64..300, nerr in 0usize..=5) {
        let rs = ReedSolomon::new(31, 21); // t = 5
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u16> = (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect();
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let mut positions: Vec<usize> = (0..rs.n()).collect();
        for i in 0..nerr {
            let j = rng.random_range(i..positions.len());
            positions.swap(i, j);
            rx[positions[i]] ^= rng.random_range(1..1024u16);
        }
        let fixed = rs.decode(&mut rx);
        prop_assert!(fixed.is_ok());
        prop_assert_eq!(rx, cw);
    }

    #[test]
    fn rs_errata_capacity_boundary(seed in 0u64..200, mu in 0usize..=10) {
        // ν errors + μ erasures with 2ν + μ = 2t exactly: always decodes.
        let rs = ReedSolomon::new(31, 21); // 2t = 10
        let nu = (10 - mu) / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<u16> = (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect();
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let mut positions: Vec<usize> = (0..rs.n()).collect();
        for i in 0..(mu + nu) {
            let j = rng.random_range(i..positions.len());
            positions.swap(i, j);
            rx[positions[i]] ^= rng.random_range(1..1024u16);
        }
        let erasures: Vec<usize> = positions[..mu].to_vec();
        prop_assert!(rs.decode_errata(&mut rx, &erasures).is_ok());
        prop_assert_eq!(rx, cw);
    }

    #[test]
    fn interleaver_roundtrip_any_burst_within_tolerance(
        seed in 0u64..200,
        depth in 1usize..=4,
        burst_start in 0usize..40,
        burst_frac in 0.0f64..=1.0,
    ) {
        let il = Interleaver::new(ReedSolomon::new(15, 11), depth);
        let mut rng = StdRng::seed_from_u64(seed);
        let payload: Vec<u16> = (0..il.frame_payload()).map(|_| rng.random_range(0..1024u16)).collect();
        let mut frame = il.encode(&payload);
        let burst = (burst_frac * il.burst_tolerance() as f64) as usize;
        let start = burst_start.min(frame.len().saturating_sub(burst));
        for slot in frame.iter_mut().skip(start).take(burst) {
            *slot ^= 0x2AB;
        }
        let (out, _) = il.decode(&frame).expect("burst within tolerance");
        prop_assert_eq!(out, payload);
    }

    #[test]
    fn chase_output_is_always_a_codeword_or_input(
        data in 0u128..(1u128 << 100),
        e1 in 0usize..128,
        e2 in 0usize..128,
        e3 in 0usize..128,
    ) {
        let code = ExtHamming;
        let cw = code.encode(data);
        let corrupted = cw ^ (1u128 << e1) ^ (1u128 << e2) ^ (1u128 << e3);
        // Uniform reliabilities: no soft info, worst case for Chase.
        let rel = vec![1.0; 128];
        let out = code.chase_decode(corrupted, &rel, 5);
        prop_assert!(code.is_codeword(out) || out == corrupted);
    }
}
