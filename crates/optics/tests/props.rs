//! Property tests for the photonic link models.

use lightwave_optics::ber::{OimConfig, Pam4Receiver};
use lightwave_optics::components::{Component, ComponentKind};
use lightwave_optics::dispersion::{dispersion_penalty, Equalizer, FiberDispersion};
use lightwave_optics::link::LinkBudget;
use lightwave_optics::modulation::LaneRate;
use lightwave_optics::mpi::MpiBudget;
use lightwave_optics::wdm::WdmGrid;
use lightwave_units::{Db, Dbm};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ber_monotone_in_power(p in -20.0f64..0.0, dp in 0.1f64..5.0, mpi_db in -50.0f64..-25.0) {
        let rx = Pam4Receiver::cwdm4_50g();
        let m = Db(mpi_db).linear();
        let low = rx.ber(Dbm(p), m, None).prob();
        let high = rx.ber(Dbm(p + dp), m, None).prob();
        prop_assert!(high <= low + 1e-18, "more power cannot worsen BER");
    }

    #[test]
    fn ber_monotone_in_mpi(p in -16.0f64..-6.0, m1 in -50.0f64..-27.0, dm in 0.5f64..10.0) {
        let rx = Pam4Receiver::cwdm4_50g();
        let b1 = rx.ber(Dbm(p), Db(m1).linear(), None).prob();
        let b2 = rx.ber(Dbm(p), Db(m1 + dm).linear(), None).prob();
        prop_assert!(b2 >= b1 - 1e-18, "more interference cannot improve BER");
    }

    #[test]
    fn oim_never_hurts(p in -16.0f64..-6.0, mpi_db in -50.0f64..-25.0) {
        let rx = Pam4Receiver::cwdm4_50g();
        let m = Db(mpi_db).linear();
        let without = rx.ber(Dbm(p), m, None).prob();
        let with = rx.ber(Dbm(p), m, Some(OimConfig::default())).prob();
        prop_assert!(with <= without + 1e-18);
    }

    #[test]
    fn link_budget_is_component_sum(km in 0.0f64..10.0, launch in -5.0f64..5.0) {
        let link = LinkBudget::superpod_nominal(Dbm(launch), km);
        let sum: f64 = link.components.iter().map(|c| c.insertion_loss.db()).sum();
        prop_assert!((link.total_loss().db() - sum).abs() < 1e-9);
        prop_assert!((link.received_power().dbm() - (launch - sum)).abs() < 1e-9);
    }

    #[test]
    fn mpi_budget_total_is_contribution_sum(km in 0.05f64..5.0) {
        let link = LinkBudget::superpod_nominal(Dbm(1.0), km);
        let b = MpiBudget::from_bidi_link(&link);
        let sum: f64 = b.contributions.iter().map(|c| c.ratio).sum();
        prop_assert!((sum - b.total_ratio).abs() < 1e-12);
        prop_assert!(b.total_ratio > 0.0);
    }

    #[test]
    fn mpi_worsens_with_link_length(km in 0.1f64..3.0, extra in 0.5f64..5.0) {
        let short = MpiBudget::from_bidi_link(&LinkBudget::superpod_nominal(Dbm(1.0), km));
        let long = MpiBudget::from_bidi_link(&LinkBudget::superpod_nominal(Dbm(1.0), km + extra));
        prop_assert!(long.total_ratio >= short.total_ratio);
    }

    #[test]
    fn dispersion_monotone_in_length(lane_idx in 0usize..8, km in 0.1f64..8.0, extra in 0.1f64..5.0) {
        let fiber = FiberDispersion::default();
        let lane = WdmGrid::Cwdm8.lane(lane_idx).expect("valid lane");
        let p1 = dispersion_penalty(&fiber, &lane, LaneRate::Pam4_100, km, Equalizer::Ffe);
        let p2 = dispersion_penalty(&fiber, &lane, LaneRate::Pam4_100, km + extra, Equalizer::Ffe);
        prop_assert!(p2.db() + 1e-12 >= p1.db());
    }

    #[test]
    fn mlse_never_worse_than_ffe(lane_idx in 0usize..8, km in 0.1f64..10.0) {
        let fiber = FiberDispersion::default();
        let lane = WdmGrid::Cwdm8.lane(lane_idx).expect("valid lane");
        let ffe = dispersion_penalty(&fiber, &lane, LaneRate::Pam4_100, km, Equalizer::Ffe);
        let mlse = dispersion_penalty(&fiber, &lane, LaneRate::Pam4_100, km, Equalizer::Mlse);
        prop_assert!(mlse.db() <= ffe.db() + 1e-12);
    }

    #[test]
    fn sampled_components_stay_physical(seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for kind in [
            ComponentKind::Connector,
            ComponentKind::OcsPass,
            ComponentKind::CirculatorPass,
            ComponentKind::WdmMux,
        ] {
            let c = Component::sampled(kind, &mut rng);
            prop_assert!(c.insertion_loss.db() > 0.0);
            prop_assert!(c.return_loss.db() < 0.0);
            prop_assert!(c.transmission() <= 1.0 && c.transmission() > 0.0);
            prop_assert!(c.reflectance() < 0.02);
        }
    }

    #[test]
    fn sensitivity_sits_on_the_target(mpi_db in -50.0f64..-30.0) {
        let rx = Pam4Receiver::cwdm4_50g();
        let m = Db(mpi_db).linear();
        if let Some(s) = rx.sensitivity(lightwave_units::Ber::KP4_THRESHOLD, m, None) {
            let at = rx.ber(s, m, None).prob();
            prop_assert!((at / 2e-4 - 1.0).abs() < 0.02, "BER at sensitivity: {at:e}");
        }
    }
}
