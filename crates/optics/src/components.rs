//! Optical components characterized by insertion loss and return loss.
//!
//! Two numbers rule the paper's hardware design: how much light a component
//! eats (insertion loss — the OCS must stay under ~3 dB, §3.2.1) and how much
//! it reflects back up the fiber (return loss — must stay under −38 dB
//! because reflections become in-band interference on bidirectional links,
//! §4.1.1). Every component here carries both, and the [`crate::mpi`] module
//! turns the reflections into an interference budget.

use lightwave_units::Db;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// The kind of an optical component in a link path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// A mated fiber connector (e.g. LC/MPO at a patch panel).
    Connector,
    /// A fusion splice.
    Splice,
    /// A thin-film wavelength multiplexer (per §3.3.1: low-loss mux).
    WdmMux,
    /// A thin-film wavelength demultiplexer.
    WdmDemux,
    /// One pass through an optical circulator (port 1→2 or 2→3).
    CirculatorPass,
    /// One pass through an OCS optical core (collimators + two mirrors).
    OcsPass,
    /// A fiber span; loss scales with length.
    FiberSpan,
}

/// An optical component instance with its loss characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// What this component is.
    pub kind: ComponentKind,
    /// Insertion loss (positive dB = loss).
    pub insertion_loss: Db,
    /// Return loss, expressed as a *negative* dB reflectance (e.g. −46 dB
    /// means 10⁻⁴·⁶ of incident power is reflected). More negative = better.
    pub return_loss: Db,
}

impl Component {
    /// Nominal (data-sheet typical) component of the given kind.
    ///
    /// Values follow the paper where stated (OCS: < 2 dB typical IL,
    /// −46 dB typical RL) and industry-typical datasheets elsewhere.
    pub fn nominal(kind: ComponentKind) -> Component {
        let (il, rl) = match kind {
            ComponentKind::Connector => (0.25, -45.0),
            ComponentKind::Splice => (0.05, -60.0),
            ComponentKind::WdmMux => (1.0, -50.0),
            ComponentKind::WdmDemux => (1.0, -50.0),
            ComponentKind::CirculatorPass => (0.8, -50.0),
            ComponentKind::OcsPass => (1.6, -46.0),
            ComponentKind::FiberSpan => (0.35, -70.0), // per-km O-band fiber
        };
        Component {
            kind,
            insertion_loss: Db(il),
            return_loss: Db(rl),
        }
    }

    /// A fiber span of the given length in km (0.35 dB/km O-band attenuation;
    /// Rayleigh backscatter folded into a single effective return loss).
    pub fn fiber_span(km: f64) -> Component {
        assert!(
            km >= 0.0 && km.is_finite(),
            "fiber length must be >= 0, got {km}"
        );
        Component {
            kind: ComponentKind::FiberSpan,
            insertion_loss: Db(0.35 * km),
            return_loss: Db(-70.0),
        }
    }

    /// Samples a manufacturing-varied instance of the component.
    ///
    /// Insertion loss varies log-normally-ish (here: Gaussian in dB, clipped
    /// at ≥ 0); return loss varies Gaussian in dB. The sigmas reproduce the
    /// spread visible in Fig. 10 (most OCS paths < 2 dB with a tail from
    /// "fiber splice and connector loss variation").
    pub fn sampled(kind: ComponentKind, rng: &mut StdRng) -> Component {
        let nominal = Component::nominal(kind);
        let (il_sigma, rl_sigma) = match kind {
            ComponentKind::Connector => (0.12, 2.5),
            ComponentKind::Splice => (0.03, 3.0),
            ComponentKind::WdmMux | ComponentKind::WdmDemux => (0.15, 2.0),
            ComponentKind::CirculatorPass => (0.1, 2.0),
            ComponentKind::OcsPass => (0.25, 2.0),
            ComponentKind::FiberSpan => (0.02, 2.0),
        };
        let il_dist = Normal::new(nominal.insertion_loss.db(), il_sigma)
            .expect("sigma is positive and finite");
        let rl_dist =
            Normal::new(nominal.return_loss.db(), rl_sigma).expect("sigma is positive and finite");
        Component {
            kind,
            insertion_loss: Db(il_dist.sample(rng).max(0.01)),
            // Clip so a lucky sample cannot claim a physically silly
            // reflectance better than -80 dB or worse than -20 dB.
            return_loss: Db(rl_dist.sample(rng).clamp(-80.0, -20.0)),
        }
    }

    /// Linear power transmission through the component.
    pub fn transmission(&self) -> f64 {
        (-self.insertion_loss).linear()
    }

    /// Linear power reflectance of the component.
    pub fn reflectance(&self) -> f64 {
        self.return_loss.linear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nominal_ocs_pass_matches_paper() {
        let c = Component::nominal(ComponentKind::OcsPass);
        assert!(
            c.insertion_loss.db() < 2.0,
            "OCS IL should be < 2 dB typical"
        );
        assert_eq!(c.return_loss.db(), -46.0, "OCS RL typical is -46 dB");
    }

    #[test]
    fn fiber_span_scales_with_length() {
        let f = Component::fiber_span(2.0);
        assert!((f.insertion_loss.db() - 0.7).abs() < 1e-12);
        assert_eq!(Component::fiber_span(0.0).insertion_loss.db(), 0.0);
    }

    #[test]
    #[should_panic(expected = "fiber length")]
    fn fiber_span_rejects_negative() {
        let _ = Component::fiber_span(-1.0);
    }

    #[test]
    fn transmission_and_reflectance_are_linear() {
        let c = Component {
            kind: ComponentKind::Connector,
            insertion_loss: Db(3.0103),
            return_loss: Db(-30.0),
        };
        assert!((c.transmission() - 0.5).abs() < 1e-4);
        assert!((c.reflectance() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ca = Component::sampled(ComponentKind::OcsPass, &mut a);
        let cb = Component::sampled(ComponentKind::OcsPass, &mut b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn sampled_losses_stay_physical() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..2000 {
            let c = Component::sampled(ComponentKind::OcsPass, &mut rng);
            assert!(
                c.insertion_loss.db() > 0.0,
                "insertion loss must be positive"
            );
            assert!(
                (-80.0..=-20.0).contains(&c.return_loss.db()),
                "return loss clipped to physical range"
            );
        }
    }

    #[test]
    fn sampled_mean_tracks_nominal() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| {
                Component::sampled(ComponentKind::OcsPass, &mut rng)
                    .insertion_loss
                    .db()
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.6).abs() < 0.05,
            "sampled mean {mean} drifted from nominal"
        );
    }
}
