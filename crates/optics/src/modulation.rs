//! Line codes and per-lane rates.
//!
//! Backward compatibility across transceiver generations (§3.3.1) hinges on
//! modules that can run multiple line rates: the latest 100G-PAM4-per-lane
//! OSFP must also run 50G PAM4 and 25G NRZ so a new aggregation block can
//! talk to an old one across the same OCS. The OCS itself is rate- and
//! format-agnostic (a mirror doesn't care), so rate negotiation is purely a
//! transceiver-DSP concern.

use lightwave_units::{Gbps, Gigahertz};
use serde::{Deserialize, Serialize};

/// Modulation format of one electrical/optical lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LineCode {
    /// Non-return-to-zero on-off keying: 1 bit/symbol, 2 levels.
    Nrz,
    /// 4-level pulse-amplitude modulation: 2 bits/symbol, 4 levels.
    Pam4,
}

impl LineCode {
    /// Bits carried per symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            LineCode::Nrz => 1,
            LineCode::Pam4 => 2,
        }
    }

    /// Number of amplitude levels.
    pub fn levels(self) -> usize {
        match self {
            LineCode::Nrz => 2,
            LineCode::Pam4 => 4,
        }
    }
}

/// A supported per-lane line rate, combining bit rate and line code.
///
/// These are the three generations the paper's backward-compatibility story
/// spans (§3.3.1: "the latest generation OSFP transceiver running at 100G
/// PAM4 per lane must also support 50G PAM4 and 25G NRZ operation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaneRate {
    /// 25.78125 Gb/s NRZ (100GbE generation).
    Nrz25,
    /// 53.125 Gb/s PAM4 (400GbE generation).
    Pam4_50,
    /// 106.25 Gb/s PAM4 (800GbE generation).
    Pam4_100,
}

impl LaneRate {
    /// All rates, newest first.
    pub const ALL: [LaneRate; 3] = [LaneRate::Pam4_100, LaneRate::Pam4_50, LaneRate::Nrz25];

    /// The line code used at this rate.
    pub fn line_code(self) -> LineCode {
        match self {
            LaneRate::Nrz25 => LineCode::Nrz,
            LaneRate::Pam4_50 | LaneRate::Pam4_100 => LineCode::Pam4,
        }
    }

    /// Gross per-lane bit rate (including FEC overhead).
    pub fn bit_rate(self) -> Gbps {
        match self {
            LaneRate::Nrz25 => Gbps(25.781_25),
            LaneRate::Pam4_50 => Gbps(53.125),
            LaneRate::Pam4_100 => Gbps(106.25),
        }
    }

    /// Symbol (baud) rate.
    pub fn baud(self) -> f64 {
        self.bit_rate().gbps() * 1e9 / self.line_code().bits_per_symbol() as f64
    }

    /// Nominal receiver electrical bandwidth (~0.65 × baud for the DSP-based
    /// receivers modeled here).
    pub fn rx_bandwidth(self) -> Gigahertz {
        Gigahertz(0.65 * self.baud() / 1e9)
    }

    /// True if a transceiver running at `self` can negotiate down to `other`
    /// (rates are backward compatible: newer modules support all older
    /// rates, older modules do not support newer ones).
    pub fn interoperates_with(self, other: LaneRate) -> bool {
        self.generation() >= other.generation() || other.generation() >= self.generation()
    }

    /// Highest rate two modules can negotiate: the older module's rate.
    pub fn negotiate(self, other: LaneRate) -> LaneRate {
        if self.generation() <= other.generation() {
            self
        } else {
            other
        }
    }

    /// Generation index (0 = oldest).
    pub fn generation(self) -> u8 {
        match self {
            LaneRate::Nrz25 => 0,
            LaneRate::Pam4_50 => 1,
            LaneRate::Pam4_100 => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pam4_carries_two_bits() {
        assert_eq!(LineCode::Pam4.bits_per_symbol(), 2);
        assert_eq!(LineCode::Pam4.levels(), 4);
        assert_eq!(LineCode::Nrz.bits_per_symbol(), 1);
    }

    #[test]
    fn baud_rates() {
        // 53.125 Gb/s PAM4 → 26.5625 GBd.
        assert!((LaneRate::Pam4_50.baud() - 26.5625e9).abs() < 1e3);
        // 25.78125 Gb/s NRZ → same number in baud.
        assert!((LaneRate::Nrz25.baud() - 25.78125e9).abs() < 1e3);
        // 100G PAM4 is 53.125 GBd.
        assert!((LaneRate::Pam4_100.baud() - 53.125e9).abs() < 1e3);
    }

    #[test]
    fn negotiation_picks_older_generation() {
        assert_eq!(
            LaneRate::Pam4_100.negotiate(LaneRate::Nrz25),
            LaneRate::Nrz25
        );
        assert_eq!(
            LaneRate::Pam4_50.negotiate(LaneRate::Pam4_100),
            LaneRate::Pam4_50
        );
        assert_eq!(
            LaneRate::Pam4_100.negotiate(LaneRate::Pam4_100),
            LaneRate::Pam4_100
        );
    }

    #[test]
    fn rx_bandwidth_scales_with_baud() {
        let b50 = LaneRate::Pam4_50.rx_bandwidth().ghz();
        let b100 = LaneRate::Pam4_100.rx_bandwidth().ghz();
        assert!((b100 / b50 - 2.0).abs() < 1e-9);
    }
}
