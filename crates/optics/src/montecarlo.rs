//! Symbol-level Monte-Carlo BER simulation.
//!
//! Fig. 11a of the paper is labeled "BER: Monte Carlo" — the authors
//! validated their analytic link model against symbol-level simulation.
//! This module does the same for our model: it transmits random Gray-coded
//! PAM4 symbols, adds the level-dependent Gaussian noise terms, models the
//! MPI beat as a *bounded sinusoid* with a slowly wandering phase (its true
//! narrow-band character, rather than the Gaussian approximation the
//! analytic model uses), slices with the analytic thresholds, and counts
//! bit errors.
//!
//! Agreement between the two establishes that the Gaussian MPI
//! approximation is conservative-but-tight in the regime the paper cares
//! about, exactly the claim of Fig. 11b ("measured data ... matches well
//! with the modeling results").

use crate::ber::{OimConfig, Pam4Receiver};
use lightwave_par::{Pool, RunStats};
use lightwave_units::{Ber, Dbm};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use rand_distr::{standard_normal_from_bits, Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Result of a Monte-Carlo BER run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McBerResult {
    /// Bits simulated.
    pub bits: u64,
    /// Bit errors observed.
    pub errors: u64,
    /// Estimated BER (errors/bits; 0 if no errors seen).
    pub ber: Ber,
}

impl McBerResult {
    /// Builds the result from raw symbol/error tallies (2 bits per symbol).
    pub fn from_counts(symbols: u64, errors: u64) -> McBerResult {
        let bits = symbols * 2;
        McBerResult {
            bits,
            errors,
            ber: Ber::new(errors as f64 / bits as f64),
        }
    }
}

/// Gray code mapping for PAM4 levels 0..3 → 2-bit patterns.
const GRAY: [u8; 4] = [0b00, 0b01, 0b11, 0b10];

/// Gray-decode LUT: bit errors charged when level `tx` is sliced as level
/// `rx` — `popcount(GRAY[tx] ^ GRAY[rx])`, precomputed so the symbol loop
/// never re-derives bit patterns.
const BIT_ERRORS: [[u64; 4]; 4] = {
    let mut t = [[0u64; 4]; 4];
    let mut tx = 0;
    while tx < 4 {
        let mut rx = 0;
        while rx < 4 {
            t[tx][rx] = (GRAY[tx] ^ GRAY[rx]).count_ones() as u64;
            rx += 1;
        }
        tx += 1;
    }
    t
};

/// Symbols per shard for the parallel Monte-Carlo paths. Large enough that
/// the MPI phase walk decorrelates many times over within one shard (it
/// decorrelates over ~1000 symbols) and that per-shard dispatch overhead
/// vanishes; small enough to load-balance across workers.
pub const DEFAULT_SHARD_SYMBOLS: u64 = 1 << 16;

/// Symbols per noise block in the batched symbol loop: raw noise draws are
/// generated (and gate-tested) a block at a time, and only the rare
/// near-threshold survivors get the full Box–Muller + slicing treatment.
/// The block size never affects results — the RNG stream and the error
/// tally are position-independent — it only bounds the pending-buffer
/// working set.
pub const NOISE_BLOCK_SYMBOLS: u64 = 4096;

/// The precomputed PAM4 channel for the symbol loop: per-level signal
/// currents, per-level additive-noise samplers, slicing thresholds, and
/// per-level MPI beat amplitudes. Everything RNG-independent is hoisted
/// here — built once per run, shared read-only by every shard.
#[derive(Debug, Clone)]
pub struct McChannel {
    currents: [f64; 4],
    noise: [Normal<f64>; 4],
    thresholds: [f64; 3],
    beat_scale: [f64; 4],
    phase_step: Normal<f64>,
    has_mpi: bool,
    /// Per-level additive-noise σ (the `noise` samplers' std-dev, hoisted
    /// so the batched loop can scale raw normals without the sampler).
    sigma: [f64; 4],
    /// Clean-path skip gate: a symbol of level l whose |z| bound is below
    /// `qeff[l]` provably slices back to level l (distance to the nearest
    /// deciding threshold in σ units, shrunk by a 1e-9 relative margin).
    /// `-1.0` disables the gate for that level.
    qeff: [f64; 4],
    /// MPI-path skip gate: same idea with the worst-case beat amplitude
    /// already subtracted from the threshold distance (|cos φ| ≤ 1).
    qeff_mpi: [f64; 4],
    /// Upper bound on the Box–Muller radius √(−2·ln u1) given the top 8
    /// bits of the first raw draw (bin 255 is unbounded).
    rmax: [f64; 256],
    /// Upper bound on |cos(TAU·u2)| given the top 8 bits of the second raw
    /// draw.
    cosmax: [f64; 256],
}

impl McChannel {
    /// Precomputes the channel for one (receiver, power, MPI, OIM) point.
    ///
    /// * `mpi_ratio` — linear interferer-to-signal power ratio.
    /// * `oim` — optional OIM DSP config (applied as beat-amplitude
    ///   suppression, mirroring the notch filter).
    pub fn new(
        rx: &Pam4Receiver,
        received: Dbm,
        mpi_ratio: f64,
        oim: Option<OimConfig>,
    ) -> McChannel {
        let levels_w = rx.level_powers_w(received);
        let m = levels_w.len();
        assert_eq!(m, 4, "Monte-Carlo simulator is written for PAM4");
        let p_avg_w = levels_w.iter().sum::<f64>() / m as f64;
        let mut currents = [0.0; 4];
        for (c, &p) in currents.iter_mut().zip(&levels_w) {
            *c = rx.responsivity * p;
        }
        let thresholds: [f64; 3] = rx
            .thresholds(received, mpi_ratio, oim)
            .try_into()
            .expect("PAM4 has three slicing thresholds");

        // Per-level *additive* (thermal+shot+RIN) noise — everything except
        // MPI — as ready-built samplers.
        let mut noise = [Normal::new(0.0, 1e-18).expect("valid sigma"); 4];
        for (d, &p) in noise.iter_mut().zip(&levels_w) {
            let b = rx.bandwidth_hz();
            let i = rx.responsivity * p;
            let thermal = rx.thermal_noise_density * rx.thermal_noise_density * b;
            let shot = 2.0 * 1.602_176_634e-19 * i * b;
            let rin = rx.rin * i * i * b;
            let sigma = (thermal + shot + rin).sqrt();
            *d = Normal::new(0.0, sigma.max(1e-18)).expect("sigma positive");
        }

        // MPI beat: i(t) = 2ξ'·R·√(P_sym·P_mpi)·cos φ(t). The phase wanders
        // slowly (interferer path length drifts), modeled as a random walk
        // that decorrelates over ~1000 symbols. OIM suppresses the beat
        // amplitude by the sqrt of its power factor. Amplitude calibrated so
        // ⟨i²⟩ = 2·ξ·m·R²·P_sym·P_avg matches the analytic variance:
        // amp = 2√ξ·R√(P_sym·P_mpi) gives var 2ξR²PP_mpi.
        let m_eff = match oim {
            Some(cfg) => mpi_ratio * cfg.mpi_power_factor(),
            None => mpi_ratio,
        };
        let p_mpi_w = m_eff * p_avg_w;
        let xi_amp = 2.0 * rx.mpi_xi.sqrt();
        let mut beat_scale = [0.0; 4];
        for (s, &p) in beat_scale.iter_mut().zip(&levels_w) {
            *s = xi_amp * rx.responsivity * (p * p_mpi_w).sqrt();
        }
        let mut sigma = [0.0; 4];
        for (s, d) in sigma.iter_mut().zip(&noise) {
            *s = d.std_dev();
        }
        // Distance from each level's nominal current to the nearest
        // threshold whose crossing would change the sliced decision.
        let [t0, t1, t2] = thresholds;
        let dmin = [
            t0 - currents[0],
            (currents[1] - t0).min(t1 - currents[1]),
            (currents[2] - t1).min(t2 - currents[2]),
            currents[3] - t2,
        ];
        // Conservative skip thresholds in σ units: a symbol is provably
        // error-free when the |z| bound falls below q_eff. The 1e-9
        // relative margins (here and in the LUTs) dwarf any few-ulp
        // rounding in the exact-path float expressions, so the gate can
        // never skip a symbol the exact path would have sliced wrong.
        let mut qeff = [0.0; 4];
        let mut qeff_mpi = [0.0; 4];
        for l in 0..4 {
            qeff[l] = if dmin[l] > 0.0 && sigma[l] > 0.0 {
                dmin[l] / sigma[l] * (1.0 - 1e-9)
            } else {
                -1.0
            };
            let headroom = dmin[l] - beat_scale[l];
            qeff_mpi[l] = if headroom > 0.0 && sigma[l] > 0.0 {
                headroom / sigma[l] * (1.0 - 1e-9)
            } else {
                -1.0
            };
        }
        // Box–Muller radius bound per top-8-bit bin of the first draw:
        // u1 = 1 − unit(b1) strictly exceeds 1 − (bin+1)/256 (exact
        // dyadics), so r = √(−2·ln u1) stays below the bin's bound.
        let mut rmax = [0.0; 256];
        for (bin, r) in rmax.iter_mut().enumerate() {
            let u1_min = 1.0 - (bin as f64 + 1.0) / 256.0;
            *r = if u1_min > 0.0 {
                (-2.0 * u1_min.ln()).sqrt() * (1.0 + 1e-9)
            } else {
                f64::INFINITY
            };
        }
        // |cos(TAU·u2)| bound per top-8-bit bin of the second draw: the
        // extremum is at an endpoint unless a multiple of π lies inside.
        let mut cosmax = [0.0; 256];
        for (bin, c) in cosmax.iter_mut().enumerate() {
            let lo = std::f64::consts::TAU * (bin as f64 / 256.0);
            let hi = std::f64::consts::TAU * ((bin as f64 + 1.0) / 256.0);
            let crosses_pi = (hi / std::f64::consts::PI).floor()
                > (lo / std::f64::consts::PI).floor()
                || bin == 0;
            *c = if crosses_pi {
                1.0
            } else {
                (lo.cos().abs().max(hi.cos().abs()) * (1.0 + 1e-9)).min(1.0)
            };
        }
        McChannel {
            currents,
            noise,
            thresholds,
            beat_scale,
            phase_step: Normal::new(0.0, 0.05).expect("valid sigma"),
            has_mpi: p_mpi_w > 0.0,
            sigma,
            qeff,
            qeff_mpi,
            rmax,
            cosmax,
        }
    }

    /// Transmits `symbols` random Gray-coded PAM4 symbols over the channel
    /// with `rng`, returning the bit-error count. One contiguous stream:
    /// the MPI beat phase wanders across the whole range.
    ///
    /// This is the batched kernel (DESIGN §6.8): raw RNG draws are
    /// consumed in [`NOISE_BLOCK_SYMBOLS`]-sized blocks, every symbol's
    /// draws are gate-tested against the threshold-distance LUT bound, and
    /// only near-threshold survivors get the Box–Muller transcendentals
    /// and PAM4 slicing. The RNG stream discipline is identical to
    /// [`reference::run`] — same draws in the same order — so the error
    /// count is bit-identical at any block size or thread count.
    pub fn run(&self, symbols: u64, rng: &mut StdRng) -> u64 {
        assert!(symbols > 0, "must simulate at least one symbol");
        let phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        if self.has_mpi {
            self.run_mpi(symbols, rng, phase)
        } else {
            self.run_clean(symbols, rng)
        }
    }

    /// Clean-channel batched loop: 4 raw u64s per symbol (two for the
    /// level, two for the noise), one multiply + compare for the gate.
    // The gate compares as `!(bound < q)` on purpose: a NaN bound (e.g.
    // INFINITY·0.0 from the LUT corners) must fall through to the exact
    // path, which `bound >= q` would not guarantee.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn run_clean(&self, symbols: u64, rng: &mut StdRng) -> u64 {
        let [t0, t1, t2] = self.thresholds;
        let mut errors = 0u64;
        let mut pending: Vec<(usize, u64, u64)> =
            Vec::with_capacity(NOISE_BLOCK_SYMBOLS.min(symbols) as usize);
        let mut remaining = symbols;
        while remaining > 0 {
            let block = remaining.min(NOISE_BLOCK_SYMBOLS);
            pending.clear();
            for _ in 0..block {
                let level = rng.random_range(0usize..4);
                let b1 = rng.next_u64();
                let b2 = rng.next_u64();
                let bound = self.rmax[(b1 >> 56) as usize] * self.cosmax[(b2 >> 56) as usize];
                // `!(bound < q)` keeps NaN bounds on the exact path.
                if !(bound < self.qeff[level]) {
                    pending.push((level, b1, b2));
                }
            }
            for &(level, b1, b2) in &pending {
                let z = standard_normal_from_bits(b1, b2);
                // Exactly `currents[l] + noise[l].sample(rng)`:
                // Normal::sample computes mean + std_dev·z with mean 0.
                let current = self.currents[level] + (0.0 + self.sigma[level] * z);
                let decided = usize::from(current > t0)
                    + usize::from(current > t1)
                    + usize::from(current > t2);
                errors += BIT_ERRORS[level][decided];
            }
            remaining -= block;
        }
        errors
    }

    /// MPI batched loop: the beat-phase random walk is inherently serial
    /// (every symbol's phase feeds the next), so its Box–Muller step always
    /// runs; the gate — with the worst-case beat amplitude pre-subtracted —
    /// still skips the noise Box–Muller, the cos(φ) beat evaluation and the
    /// slicing for the overwhelming majority of symbols.
    // `!(bound < q)` rather than `>=`: NaN bounds must take the exact path.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn run_mpi(&self, symbols: u64, rng: &mut StdRng, mut phase: f64) -> u64 {
        let [t0, t1, t2] = self.thresholds;
        let mut errors = 0u64;
        let mut pending: Vec<(usize, u64, u64, f64)> =
            Vec::with_capacity(NOISE_BLOCK_SYMBOLS.min(symbols) as usize);
        let mut remaining = symbols;
        while remaining > 0 {
            let block = remaining.min(NOISE_BLOCK_SYMBOLS);
            pending.clear();
            for _ in 0..block {
                let level = rng.random_range(0usize..4);
                let b1 = rng.next_u64();
                let b2 = rng.next_u64();
                // Exactly `phase_step.sample(rng)`: mean + std_dev·z.
                phase += self.phase_step.mean()
                    + self.phase_step.std_dev()
                        * standard_normal_from_bits(rng.next_u64(), rng.next_u64());
                let bound = self.rmax[(b1 >> 56) as usize] * self.cosmax[(b2 >> 56) as usize];
                if !(bound < self.qeff_mpi[level]) {
                    pending.push((level, b1, b2, phase));
                }
            }
            for &(level, b1, b2, sym_phase) in &pending {
                let z = standard_normal_from_bits(b1, b2);
                let current = self.currents[level]
                    + (0.0 + self.sigma[level] * z)
                    + self.beat_scale[level] * sym_phase.cos();
                let decided = usize::from(current > t0)
                    + usize::from(current > t1)
                    + usize::from(current > t2);
                errors += BIT_ERRORS[level][decided];
            }
            remaining -= block;
        }
        errors
    }
}

/// The frozen per-symbol Monte-Carlo loop — the behavioral oracle for the
/// batched kernel in [`McChannel::run`] (DESIGN §6.8).
///
/// Kept verbatim from the pre-kernel implementation: one `Normal::sample`
/// per symbol, straight-line slicing, no gating. Used by the differential
/// tests and benches only; production paths call [`McChannel::run`].
pub mod reference {
    use super::*;

    /// The pre-kernel [`McChannel::run`]: per-symbol sampling, no batching
    /// or gating. Consumes the identical RNG stream.
    pub fn run(chan: &McChannel, symbols: u64, rng: &mut StdRng) -> u64 {
        assert!(symbols > 0, "must simulate at least one symbol");
        let [t0, t1, t2] = chan.thresholds;
        let mut phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let mut errors = 0u64;
        for _ in 0..symbols {
            let level = rng.random_range(0usize..4);
            let mut current = chan.currents[level] + chan.noise[level].sample(rng);
            if chan.has_mpi {
                phase += chan.phase_step.sample(rng);
                current += chan.beat_scale[level] * phase.cos();
            }
            // Slice against the analytic thresholds.
            let decided =
                usize::from(current > t0) + usize::from(current > t1) + usize::from(current > t2);
            errors += BIT_ERRORS[level][decided];
        }
        errors
    }

    /// [`simulate_ber_with_pool`](super::simulate_ber_with_pool) driven by
    /// the reference loop — identical sharding, seeding and merge order,
    /// so any fast-vs-reference divergence is the kernel's fault alone.
    pub fn simulate_ber_with_pool(
        pool: &Pool,
        rx: &Pam4Receiver,
        received: Dbm,
        mpi_ratio: f64,
        oim: Option<OimConfig>,
        symbols: u64,
        seed: u64,
    ) -> (McBerResult, RunStats) {
        assert!(symbols > 0, "must simulate at least one symbol");
        let chan = McChannel::new(rx, received, mpi_ratio, oim);
        let (errors, stats) = pool.run_shards(
            seed,
            symbols,
            DEFAULT_SHARD_SYMBOLS,
            |rng, shard| run(&chan, shard.len, rng),
            |a, b| a + b,
        );
        (McBerResult::from_counts(symbols, errors), stats)
    }
}

/// Runs a Monte-Carlo BER estimate on a caller-supplied generator (one
/// contiguous symbol stream — the single-shard primitive).
///
/// * `symbols` — number of PAM4 symbols to simulate (2 bits each).
/// * `mpi_ratio` — linear interferer-to-signal power ratio.
/// * `oim` — optional OIM DSP config (applied as beat-amplitude
///   suppression, mirroring the notch filter).
pub fn simulate_ber(
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    oim: Option<OimConfig>,
    symbols: u64,
    rng: &mut StdRng,
) -> McBerResult {
    assert!(symbols > 0, "must simulate at least one symbol");
    let errors = McChannel::new(rx, received, mpi_ratio, oim).run(symbols, rng);
    McBerResult::from_counts(symbols, errors)
}

/// Runs the Monte-Carlo BER estimate on the `lightwave-par` engine with the
/// ambient pool ([`Pool::from_env`], honouring `LIGHTWAVE_THREADS`).
///
/// Symbols split into [`DEFAULT_SHARD_SYMBOLS`]-sized shards (the last
/// carries the remainder); each shard is an independent symbol stream
/// seeded from `(seed, shard_index)`, and integer error counts merge in
/// shard-index order — the same seed yields a bit-identical [`McBerResult`]
/// at any thread count.
pub fn simulate_ber_par(
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    oim: Option<OimConfig>,
    symbols: u64,
    seed: u64,
) -> McBerResult {
    simulate_ber_with_pool(
        &Pool::from_env(),
        rx,
        received,
        mpi_ratio,
        oim,
        symbols,
        seed,
    )
    .0
}

/// [`simulate_ber_par`] on an explicit pool, also returning the engine's
/// [`RunStats`] (shards completed, worker utilization) for telemetry.
pub fn simulate_ber_with_pool(
    pool: &Pool,
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    oim: Option<OimConfig>,
    symbols: u64,
    seed: u64,
) -> (McBerResult, RunStats) {
    assert!(symbols > 0, "must simulate at least one symbol");
    let chan = McChannel::new(rx, received, mpi_ratio, oim);
    let (errors, stats) = pool.run_shards(
        seed,
        symbols,
        DEFAULT_SHARD_SYMBOLS,
        |rng, shard| chan.run(shard.len, rng),
        |a, b| a + b,
    );
    (McBerResult::from_counts(symbols, errors), stats)
}

/// Runs the Monte-Carlo with a **real digital OIM canceller** instead of
/// the analytic suppression-factor model.
///
/// This is the §3.3.2 / \[66\] algorithm in miniature: "the dominant carrier
/// to carrier (interfering) beating noise, which exhibits a unique
/// narrow-band spectral characteristic, is reconstructed in the digital
/// domain and then removed". Implementation: a decision-directed
/// leaky-integrator tracks the normalized beat `ĉ ≈ A·cos φ(t)` (which
/// wanders far slower than the symbol rate), detection is maximum-
/// likelihood against beat-corrected level hypotheses, and the residual of
/// each decision refines the estimate. No oracle knowledge of the beat is
/// used — only the received samples.
pub fn simulate_ber_digital_oim(
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    symbols: u64,
    rng: &mut StdRng,
) -> McBerResult {
    assert!(symbols > 0, "must simulate at least one symbol");
    let levels_w = rx.level_powers_w(received);
    let m = levels_w.len();
    assert_eq!(m, 4, "Monte-Carlo simulator is written for PAM4");
    let p_avg_w = levels_w.iter().sum::<f64>() / m as f64;
    let currents: Vec<f64> = levels_w.iter().map(|&p| rx.responsivity * p).collect();

    let sigmas_add: Vec<f64> = levels_w
        .iter()
        .map(|&p| {
            let b = rx.bandwidth_hz();
            let i = rx.responsivity * p;
            let thermal = rx.thermal_noise_density * rx.thermal_noise_density * b;
            let shot = 2.0 * 1.602_176_634e-19 * i * b;
            let rin = rx.rin * i * i * b;
            (thermal + shot + rin).sqrt()
        })
        .collect();
    let noise_dists: Vec<Normal<f64>> = sigmas_add
        .iter()
        .map(|&s| Normal::new(0.0, s.max(1e-18)).expect("sigma positive"))
        .collect();

    // The physical beat (same process as `simulate_ber` without OIM).
    let p_mpi_w = mpi_ratio * p_avg_w;
    let xi_amp = 2.0 * rx.mpi_xi.sqrt();
    let mut phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let phase_step = Normal::new(0.0, 0.05).expect("valid sigma");
    // Per-level beat scale √(P_l · P_mpi) · R · 2√ξ.
    let beat_scale: Vec<f64> = levels_w
        .iter()
        .map(|&p| xi_amp * rx.responsivity * (p * p_mpi_w).sqrt())
        .collect();

    // The canceller's state: estimate of cos φ(t) (unit-normalized beat).
    let mut c_hat = 0.0f64;
    let mu = 0.08; // tracking constant ≪ 1 symbol rate, ≫ beat linewidth

    let mut errors = 0u64;
    for _ in 0..symbols {
        let level = rng.random_range(0usize..4);
        let mut y = currents[level] + noise_dists[level].sample(rng);
        if p_mpi_w > 0.0 {
            phase += phase_step.sample(rng);
            y += beat_scale[level] * phase.cos();
        }
        // ML detection against beat-corrected hypotheses: the candidate
        // level l predicts a sample currents[l] + ĉ·beat_scale[l].
        let mut decided = 0usize;
        let mut best = f64::INFINITY;
        for (l, &i_l) in currents.iter().enumerate() {
            let predicted = i_l + c_hat * beat_scale[l];
            let d = (y - predicted).abs();
            if d < best {
                best = d;
                decided = l;
            }
        }
        // Decision-directed update of the beat estimate.
        if p_mpi_w > 0.0 && beat_scale[decided] > 0.0 {
            let residual = (y - currents[decided]) / beat_scale[decided];
            c_hat = (1.0 - mu) * c_hat + mu * residual.clamp(-1.5, 1.5);
        }
        errors += BIT_ERRORS[level][decided];
    }
    McBerResult::from_counts(symbols, errors)
}

/// Convenience wrapper with a fixed seed, for the repro harness.
pub fn simulate_ber_seeded(
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    oim: Option<OimConfig>,
    symbols: u64,
    seed: u64,
) -> McBerResult {
    let mut rng = StdRng::seed_from_u64(seed);
    simulate_ber(rx, received, mpi_ratio, oim, symbols, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::mpi_db;

    #[test]
    fn monte_carlo_matches_analytic_without_mpi() {
        let rx = Pam4Receiver::cwdm4_50g();
        // Pick a power where BER ~ 1e-3 so 2e6 symbols give ~4000 errors.
        let p = Dbm(-13.0);
        let analytic = rx.ber(p, 0.0, None).prob();
        assert!(
            analytic > 1e-4,
            "test needs a measurable BER, got {analytic:e}"
        );
        let mc = simulate_ber_seeded(&rx, p, 0.0, None, 2_000_000, 42);
        let ratio = mc.ber.prob() / analytic;
        assert!(
            (0.8..1.25).contains(&ratio),
            "MC {:e} vs analytic {analytic:e} (ratio {ratio:.2})",
            mc.ber.prob()
        );
    }

    #[test]
    fn monte_carlo_shows_mpi_penalty() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-12.0);
        let clean = simulate_ber_seeded(&rx, p, 0.0, None, 1_000_000, 7);
        let dirty = simulate_ber_seeded(&rx, p, mpi_db(-28.0), None, 1_000_000, 7);
        assert!(
            dirty.ber.prob() > 2.0 * clean.ber.prob().max(1e-7),
            "strong MPI must visibly degrade MC BER: clean={} dirty={}",
            clean.ber,
            dirty.ber
        );
    }

    #[test]
    fn monte_carlo_shows_oim_recovery() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-12.0);
        let no_oim = simulate_ber_seeded(&rx, p, mpi_db(-28.0), None, 1_000_000, 11);
        let with_oim = simulate_ber_seeded(
            &rx,
            p,
            mpi_db(-28.0),
            Some(OimConfig::default()),
            1_000_000,
            11,
        );
        assert!(
            with_oim.ber.prob() < no_oim.ber.prob() / 2.0,
            "OIM should visibly cut MC BER: {} -> {}",
            no_oim.ber,
            with_oim.ber
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let rx = Pam4Receiver::cwdm4_50g();
        let a = simulate_ber_seeded(&rx, Dbm(-13.0), mpi_db(-32.0), None, 100_000, 3);
        let b = simulate_ber_seeded(&rx, Dbm(-13.0), mpi_db(-32.0), None, 100_000, 3);
        assert_eq!(a.errors, b.errors);
    }

    #[test]
    fn gray_decode_lut_matches_popcount() {
        for tx in 0..4usize {
            for dec in 0..4usize {
                assert_eq!(
                    BIT_ERRORS[tx][dec],
                    u64::from((GRAY[tx] ^ GRAY[dec]).count_ones()),
                    "LUT entry ({tx},{dec})"
                );
            }
        }
    }

    #[test]
    fn parallel_path_thread_count_invariant() {
        let rx = Pam4Receiver::cwdm4_50g();
        let run = |threads| {
            simulate_ber_with_pool(
                &Pool::new(threads),
                &rx,
                Dbm(-13.0),
                mpi_db(-32.0),
                None,
                300_000,
                42,
            )
            .0
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn parallel_path_matches_analytic() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-13.0);
        let analytic = rx.ber(p, 0.0, None).prob();
        let mc = simulate_ber_par(&rx, p, 0.0, None, 2_000_000, 42);
        let ratio = mc.ber.prob() / analytic;
        assert!(
            (0.8..1.25).contains(&ratio),
            "parallel MC {:e} vs analytic {analytic:e} (ratio {ratio:.2})",
            mc.ber.prob()
        );
    }

    #[test]
    fn parallel_remainder_symbols_all_simulated() {
        // Symbol count not divisible by the shard size: the tally must
        // still cover every symbol (the last shard carries the remainder).
        let rx = Pam4Receiver::cwdm4_50g();
        let n = DEFAULT_SHARD_SYMBOLS * 3 + 41;
        let r = simulate_ber_par(&rx, Dbm(-13.0), 0.0, None, n, 9);
        assert_eq!(r.bits, n * 2);
    }

    #[test]
    fn digital_canceller_actually_cancels() {
        // The real decision-directed notch, no oracle: it must recover
        // most of the BER lost to a strong interferer.
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-12.0);
        let mut rng1 = StdRng::seed_from_u64(21);
        let mut rng2 = StdRng::seed_from_u64(21);
        let without = simulate_ber(&rx, p, mpi_db(-28.0), None, 400_000, &mut rng1);
        let digital = simulate_ber_digital_oim(&rx, p, mpi_db(-28.0), 400_000, &mut rng2);
        assert!(
            digital.ber.prob() < without.ber.prob() / 4.0,
            "digital OIM should cut BER ≥ 4×: {} → {}",
            without.ber,
            digital.ber
        );
    }

    #[test]
    fn digital_canceller_comparable_to_modeled_suppression() {
        // The analytic OimConfig models the canceller as a power
        // suppression factor; the real DSP should land within an order of
        // magnitude of it (the model is a deliberate simplification).
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-12.0);
        let modeled = simulate_ber_seeded(
            &rx,
            p,
            mpi_db(-28.0),
            Some(OimConfig::default()),
            400_000,
            33,
        );
        let mut rng = StdRng::seed_from_u64(33);
        let digital = simulate_ber_digital_oim(&rx, p, mpi_db(-28.0), 400_000, &mut rng);
        let (lo, hi) = (
            modeled.ber.prob().min(digital.ber.prob()).max(1e-7),
            modeled.ber.prob().max(digital.ber.prob()).max(1e-7),
        );
        assert!(
            hi / lo < 12.0,
            "modeled {} vs digital {} diverge more than an order of magnitude",
            modeled.ber,
            digital.ber
        );
    }

    #[test]
    fn digital_canceller_harmless_without_interference() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-13.0);
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let plain = simulate_ber(&rx, p, 0.0, None, 500_000, &mut rng1);
        let dsp = simulate_ber_digital_oim(&rx, p, 0.0, 500_000, &mut rng2);
        let ratio = dsp.ber.prob().max(1e-7) / plain.ber.prob().max(1e-7);
        assert!(
            (0.5..2.0).contains(&ratio),
            "canceller must be ~free on clean links: {} vs {}",
            plain.ber,
            dsp.ber
        );
    }

    #[test]
    #[should_panic(expected = "at least one symbol")]
    fn zero_symbols_rejected() {
        let rx = Pam4Receiver::cwdm4_50g();
        let _ = simulate_ber_seeded(&rx, Dbm(-10.0), 0.0, None, 0, 1);
    }

    #[test]
    fn batched_kernel_matches_reference_bit_for_bit() {
        let rx = Pam4Receiver::cwdm4_50g();
        // Clean, weak-MPI and strong-MPI channels across the fig11 power
        // range, including symbol counts straddling the noise block size.
        for &(p, mpi) in &[
            (-14.0, 0.0),
            (-13.0, 0.0),
            (-12.5, mpi_db(-32.0)),
            (-12.0, mpi_db(-26.0)),
            (-10.0, 0.0),
        ] {
            let chan = McChannel::new(&rx, Dbm(p), mpi, None);
            for &symbols in &[
                1u64,
                NOISE_BLOCK_SYMBOLS - 1,
                NOISE_BLOCK_SYMBOLS + 17,
                200_000,
            ] {
                let mut rng_fast = StdRng::seed_from_u64(99);
                let mut rng_ref = StdRng::seed_from_u64(99);
                let fast = chan.run(symbols, &mut rng_fast);
                let slow = reference::run(&chan, symbols, &mut rng_ref);
                assert_eq!(
                    fast, slow,
                    "fast/reference divergence at p={p} mpi={mpi} n={symbols}"
                );
                // The RNG stream discipline must match exactly too.
                assert_eq!(
                    rng_fast.next_u64(),
                    rng_ref.next_u64(),
                    "RNG stream position diverged at p={p} mpi={mpi} n={symbols}"
                );
            }
        }
    }

    #[test]
    fn batched_kernel_matches_reference_with_oim() {
        let rx = Pam4Receiver::cwdm4_50g();
        let chan = McChannel::new(&rx, Dbm(-12.5), mpi_db(-28.0), Some(OimConfig::default()));
        let mut rng_fast = StdRng::seed_from_u64(7);
        let mut rng_ref = StdRng::seed_from_u64(7);
        assert_eq!(
            chan.run(150_000, &mut rng_fast),
            reference::run(&chan, 150_000, &mut rng_ref)
        );
    }

    #[test]
    fn pooled_fast_and_reference_paths_agree() {
        let rx = Pam4Receiver::cwdm4_50g();
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let fast = simulate_ber_with_pool(
                &pool,
                &rx,
                Dbm(-12.5),
                mpi_db(-32.0),
                None,
                DEFAULT_SHARD_SYMBOLS + 123,
                42,
            )
            .0;
            let slow = reference::simulate_ber_with_pool(
                &pool,
                &rx,
                Dbm(-12.5),
                mpi_db(-32.0),
                None,
                DEFAULT_SHARD_SYMBOLS + 123,
                42,
            )
            .0;
            assert_eq!(fast, slow, "pooled divergence at {threads} threads");
        }
    }
}
