//! Symbol-level Monte-Carlo BER simulation.
//!
//! Fig. 11a of the paper is labeled "BER: Monte Carlo" — the authors
//! validated their analytic link model against symbol-level simulation.
//! This module does the same for our model: it transmits random Gray-coded
//! PAM4 symbols, adds the level-dependent Gaussian noise terms, models the
//! MPI beat as a *bounded sinusoid* with a slowly wandering phase (its true
//! narrow-band character, rather than the Gaussian approximation the
//! analytic model uses), slices with the analytic thresholds, and counts
//! bit errors.
//!
//! Agreement between the two establishes that the Gaussian MPI
//! approximation is conservative-but-tight in the regime the paper cares
//! about, exactly the claim of Fig. 11b ("measured data ... matches well
//! with the modeling results").

use crate::ber::{OimConfig, Pam4Receiver};
use lightwave_par::{Pool, RunStats};
use lightwave_units::{Ber, Dbm};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Result of a Monte-Carlo BER run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McBerResult {
    /// Bits simulated.
    pub bits: u64,
    /// Bit errors observed.
    pub errors: u64,
    /// Estimated BER (errors/bits; 0 if no errors seen).
    pub ber: Ber,
}

impl McBerResult {
    /// Builds the result from raw symbol/error tallies (2 bits per symbol).
    pub fn from_counts(symbols: u64, errors: u64) -> McBerResult {
        let bits = symbols * 2;
        McBerResult {
            bits,
            errors,
            ber: Ber::new(errors as f64 / bits as f64),
        }
    }
}

/// Gray code mapping for PAM4 levels 0..3 → 2-bit patterns.
const GRAY: [u8; 4] = [0b00, 0b01, 0b11, 0b10];

/// Gray-decode LUT: bit errors charged when level `tx` is sliced as level
/// `rx` — `popcount(GRAY[tx] ^ GRAY[rx])`, precomputed so the symbol loop
/// never re-derives bit patterns.
const BIT_ERRORS: [[u64; 4]; 4] = {
    let mut t = [[0u64; 4]; 4];
    let mut tx = 0;
    while tx < 4 {
        let mut rx = 0;
        while rx < 4 {
            t[tx][rx] = (GRAY[tx] ^ GRAY[rx]).count_ones() as u64;
            rx += 1;
        }
        tx += 1;
    }
    t
};

/// Symbols per shard for the parallel Monte-Carlo paths. Large enough that
/// the MPI phase walk decorrelates many times over within one shard (it
/// decorrelates over ~1000 symbols) and that per-shard dispatch overhead
/// vanishes; small enough to load-balance across workers.
pub const DEFAULT_SHARD_SYMBOLS: u64 = 1 << 16;

/// The precomputed PAM4 channel for the symbol loop: per-level signal
/// currents, per-level additive-noise samplers, slicing thresholds, and
/// per-level MPI beat amplitudes. Everything RNG-independent is hoisted
/// here — built once per run, shared read-only by every shard.
#[derive(Debug, Clone)]
pub struct McChannel {
    currents: [f64; 4],
    noise: [Normal<f64>; 4],
    thresholds: [f64; 3],
    beat_scale: [f64; 4],
    phase_step: Normal<f64>,
    has_mpi: bool,
}

impl McChannel {
    /// Precomputes the channel for one (receiver, power, MPI, OIM) point.
    ///
    /// * `mpi_ratio` — linear interferer-to-signal power ratio.
    /// * `oim` — optional OIM DSP config (applied as beat-amplitude
    ///   suppression, mirroring the notch filter).
    pub fn new(
        rx: &Pam4Receiver,
        received: Dbm,
        mpi_ratio: f64,
        oim: Option<OimConfig>,
    ) -> McChannel {
        let levels_w = rx.level_powers_w(received);
        let m = levels_w.len();
        assert_eq!(m, 4, "Monte-Carlo simulator is written for PAM4");
        let p_avg_w = levels_w.iter().sum::<f64>() / m as f64;
        let mut currents = [0.0; 4];
        for (c, &p) in currents.iter_mut().zip(&levels_w) {
            *c = rx.responsivity * p;
        }
        let thresholds: [f64; 3] = rx
            .thresholds(received, mpi_ratio, oim)
            .try_into()
            .expect("PAM4 has three slicing thresholds");

        // Per-level *additive* (thermal+shot+RIN) noise — everything except
        // MPI — as ready-built samplers.
        let mut noise = [Normal::new(0.0, 1e-18).expect("valid sigma"); 4];
        for (d, &p) in noise.iter_mut().zip(&levels_w) {
            let b = rx.bandwidth_hz();
            let i = rx.responsivity * p;
            let thermal = rx.thermal_noise_density * rx.thermal_noise_density * b;
            let shot = 2.0 * 1.602_176_634e-19 * i * b;
            let rin = rx.rin * i * i * b;
            let sigma = (thermal + shot + rin).sqrt();
            *d = Normal::new(0.0, sigma.max(1e-18)).expect("sigma positive");
        }

        // MPI beat: i(t) = 2ξ'·R·√(P_sym·P_mpi)·cos φ(t). The phase wanders
        // slowly (interferer path length drifts), modeled as a random walk
        // that decorrelates over ~1000 symbols. OIM suppresses the beat
        // amplitude by the sqrt of its power factor. Amplitude calibrated so
        // ⟨i²⟩ = 2·ξ·m·R²·P_sym·P_avg matches the analytic variance:
        // amp = 2√ξ·R√(P_sym·P_mpi) gives var 2ξR²PP_mpi.
        let m_eff = match oim {
            Some(cfg) => mpi_ratio * cfg.mpi_power_factor(),
            None => mpi_ratio,
        };
        let p_mpi_w = m_eff * p_avg_w;
        let xi_amp = 2.0 * rx.mpi_xi.sqrt();
        let mut beat_scale = [0.0; 4];
        for (s, &p) in beat_scale.iter_mut().zip(&levels_w) {
            *s = xi_amp * rx.responsivity * (p * p_mpi_w).sqrt();
        }
        McChannel {
            currents,
            noise,
            thresholds,
            beat_scale,
            phase_step: Normal::new(0.0, 0.05).expect("valid sigma"),
            has_mpi: p_mpi_w > 0.0,
        }
    }

    /// Transmits `symbols` random Gray-coded PAM4 symbols over the channel
    /// with `rng`, returning the bit-error count. One contiguous stream:
    /// the MPI beat phase wanders across the whole range.
    pub fn run(&self, symbols: u64, rng: &mut StdRng) -> u64 {
        assert!(symbols > 0, "must simulate at least one symbol");
        let [t0, t1, t2] = self.thresholds;
        let mut phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let mut errors = 0u64;
        for _ in 0..symbols {
            let level = rng.random_range(0usize..4);
            let mut current = self.currents[level] + self.noise[level].sample(rng);
            if self.has_mpi {
                phase += self.phase_step.sample(rng);
                current += self.beat_scale[level] * phase.cos();
            }
            // Slice against the analytic thresholds.
            let decided =
                usize::from(current > t0) + usize::from(current > t1) + usize::from(current > t2);
            errors += BIT_ERRORS[level][decided];
        }
        errors
    }
}

/// Runs a Monte-Carlo BER estimate on a caller-supplied generator (one
/// contiguous symbol stream — the single-shard primitive).
///
/// * `symbols` — number of PAM4 symbols to simulate (2 bits each).
/// * `mpi_ratio` — linear interferer-to-signal power ratio.
/// * `oim` — optional OIM DSP config (applied as beat-amplitude
///   suppression, mirroring the notch filter).
pub fn simulate_ber(
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    oim: Option<OimConfig>,
    symbols: u64,
    rng: &mut StdRng,
) -> McBerResult {
    assert!(symbols > 0, "must simulate at least one symbol");
    let errors = McChannel::new(rx, received, mpi_ratio, oim).run(symbols, rng);
    McBerResult::from_counts(symbols, errors)
}

/// Runs the Monte-Carlo BER estimate on the `lightwave-par` engine with the
/// ambient pool ([`Pool::from_env`], honouring `LIGHTWAVE_THREADS`).
///
/// Symbols split into [`DEFAULT_SHARD_SYMBOLS`]-sized shards (the last
/// carries the remainder); each shard is an independent symbol stream
/// seeded from `(seed, shard_index)`, and integer error counts merge in
/// shard-index order — the same seed yields a bit-identical [`McBerResult`]
/// at any thread count.
pub fn simulate_ber_par(
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    oim: Option<OimConfig>,
    symbols: u64,
    seed: u64,
) -> McBerResult {
    simulate_ber_with_pool(
        &Pool::from_env(),
        rx,
        received,
        mpi_ratio,
        oim,
        symbols,
        seed,
    )
    .0
}

/// [`simulate_ber_par`] on an explicit pool, also returning the engine's
/// [`RunStats`] (shards completed, worker utilization) for telemetry.
pub fn simulate_ber_with_pool(
    pool: &Pool,
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    oim: Option<OimConfig>,
    symbols: u64,
    seed: u64,
) -> (McBerResult, RunStats) {
    assert!(symbols > 0, "must simulate at least one symbol");
    let chan = McChannel::new(rx, received, mpi_ratio, oim);
    let (errors, stats) = pool.run_shards(
        seed,
        symbols,
        DEFAULT_SHARD_SYMBOLS,
        |rng, shard| chan.run(shard.len, rng),
        |a, b| a + b,
    );
    (McBerResult::from_counts(symbols, errors), stats)
}

/// Runs the Monte-Carlo with a **real digital OIM canceller** instead of
/// the analytic suppression-factor model.
///
/// This is the §3.3.2 / \[66\] algorithm in miniature: "the dominant carrier
/// to carrier (interfering) beating noise, which exhibits a unique
/// narrow-band spectral characteristic, is reconstructed in the digital
/// domain and then removed". Implementation: a decision-directed
/// leaky-integrator tracks the normalized beat `ĉ ≈ A·cos φ(t)` (which
/// wanders far slower than the symbol rate), detection is maximum-
/// likelihood against beat-corrected level hypotheses, and the residual of
/// each decision refines the estimate. No oracle knowledge of the beat is
/// used — only the received samples.
pub fn simulate_ber_digital_oim(
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    symbols: u64,
    rng: &mut StdRng,
) -> McBerResult {
    assert!(symbols > 0, "must simulate at least one symbol");
    let levels_w = rx.level_powers_w(received);
    let m = levels_w.len();
    assert_eq!(m, 4, "Monte-Carlo simulator is written for PAM4");
    let p_avg_w = levels_w.iter().sum::<f64>() / m as f64;
    let currents: Vec<f64> = levels_w.iter().map(|&p| rx.responsivity * p).collect();

    let sigmas_add: Vec<f64> = levels_w
        .iter()
        .map(|&p| {
            let b = rx.bandwidth_hz();
            let i = rx.responsivity * p;
            let thermal = rx.thermal_noise_density * rx.thermal_noise_density * b;
            let shot = 2.0 * 1.602_176_634e-19 * i * b;
            let rin = rx.rin * i * i * b;
            (thermal + shot + rin).sqrt()
        })
        .collect();
    let noise_dists: Vec<Normal<f64>> = sigmas_add
        .iter()
        .map(|&s| Normal::new(0.0, s.max(1e-18)).expect("sigma positive"))
        .collect();

    // The physical beat (same process as `simulate_ber` without OIM).
    let p_mpi_w = mpi_ratio * p_avg_w;
    let xi_amp = 2.0 * rx.mpi_xi.sqrt();
    let mut phase: f64 = rng.random_range(0.0..std::f64::consts::TAU);
    let phase_step = Normal::new(0.0, 0.05).expect("valid sigma");
    // Per-level beat scale √(P_l · P_mpi) · R · 2√ξ.
    let beat_scale: Vec<f64> = levels_w
        .iter()
        .map(|&p| xi_amp * rx.responsivity * (p * p_mpi_w).sqrt())
        .collect();

    // The canceller's state: estimate of cos φ(t) (unit-normalized beat).
    let mut c_hat = 0.0f64;
    let mu = 0.08; // tracking constant ≪ 1 symbol rate, ≫ beat linewidth

    let mut errors = 0u64;
    for _ in 0..symbols {
        let level = rng.random_range(0usize..4);
        let mut y = currents[level] + noise_dists[level].sample(rng);
        if p_mpi_w > 0.0 {
            phase += phase_step.sample(rng);
            y += beat_scale[level] * phase.cos();
        }
        // ML detection against beat-corrected hypotheses: the candidate
        // level l predicts a sample currents[l] + ĉ·beat_scale[l].
        let mut decided = 0usize;
        let mut best = f64::INFINITY;
        for (l, &i_l) in currents.iter().enumerate() {
            let predicted = i_l + c_hat * beat_scale[l];
            let d = (y - predicted).abs();
            if d < best {
                best = d;
                decided = l;
            }
        }
        // Decision-directed update of the beat estimate.
        if p_mpi_w > 0.0 && beat_scale[decided] > 0.0 {
            let residual = (y - currents[decided]) / beat_scale[decided];
            c_hat = (1.0 - mu) * c_hat + mu * residual.clamp(-1.5, 1.5);
        }
        errors += BIT_ERRORS[level][decided];
    }
    McBerResult::from_counts(symbols, errors)
}

/// Convenience wrapper with a fixed seed, for the repro harness.
pub fn simulate_ber_seeded(
    rx: &Pam4Receiver,
    received: Dbm,
    mpi_ratio: f64,
    oim: Option<OimConfig>,
    symbols: u64,
    seed: u64,
) -> McBerResult {
    let mut rng = StdRng::seed_from_u64(seed);
    simulate_ber(rx, received, mpi_ratio, oim, symbols, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::mpi_db;

    #[test]
    fn monte_carlo_matches_analytic_without_mpi() {
        let rx = Pam4Receiver::cwdm4_50g();
        // Pick a power where BER ~ 1e-3 so 2e6 symbols give ~4000 errors.
        let p = Dbm(-13.0);
        let analytic = rx.ber(p, 0.0, None).prob();
        assert!(
            analytic > 1e-4,
            "test needs a measurable BER, got {analytic:e}"
        );
        let mc = simulate_ber_seeded(&rx, p, 0.0, None, 2_000_000, 42);
        let ratio = mc.ber.prob() / analytic;
        assert!(
            (0.8..1.25).contains(&ratio),
            "MC {:e} vs analytic {analytic:e} (ratio {ratio:.2})",
            mc.ber.prob()
        );
    }

    #[test]
    fn monte_carlo_shows_mpi_penalty() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-12.0);
        let clean = simulate_ber_seeded(&rx, p, 0.0, None, 1_000_000, 7);
        let dirty = simulate_ber_seeded(&rx, p, mpi_db(-28.0), None, 1_000_000, 7);
        assert!(
            dirty.ber.prob() > 2.0 * clean.ber.prob().max(1e-7),
            "strong MPI must visibly degrade MC BER: clean={} dirty={}",
            clean.ber,
            dirty.ber
        );
    }

    #[test]
    fn monte_carlo_shows_oim_recovery() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-12.0);
        let no_oim = simulate_ber_seeded(&rx, p, mpi_db(-28.0), None, 1_000_000, 11);
        let with_oim = simulate_ber_seeded(
            &rx,
            p,
            mpi_db(-28.0),
            Some(OimConfig::default()),
            1_000_000,
            11,
        );
        assert!(
            with_oim.ber.prob() < no_oim.ber.prob() / 2.0,
            "OIM should visibly cut MC BER: {} -> {}",
            no_oim.ber,
            with_oim.ber
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let rx = Pam4Receiver::cwdm4_50g();
        let a = simulate_ber_seeded(&rx, Dbm(-13.0), mpi_db(-32.0), None, 100_000, 3);
        let b = simulate_ber_seeded(&rx, Dbm(-13.0), mpi_db(-32.0), None, 100_000, 3);
        assert_eq!(a.errors, b.errors);
    }

    #[test]
    fn gray_decode_lut_matches_popcount() {
        for tx in 0..4usize {
            for dec in 0..4usize {
                assert_eq!(
                    BIT_ERRORS[tx][dec],
                    u64::from((GRAY[tx] ^ GRAY[dec]).count_ones()),
                    "LUT entry ({tx},{dec})"
                );
            }
        }
    }

    #[test]
    fn parallel_path_thread_count_invariant() {
        let rx = Pam4Receiver::cwdm4_50g();
        let run = |threads| {
            simulate_ber_with_pool(
                &Pool::new(threads),
                &rx,
                Dbm(-13.0),
                mpi_db(-32.0),
                None,
                300_000,
                42,
            )
            .0
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn parallel_path_matches_analytic() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-13.0);
        let analytic = rx.ber(p, 0.0, None).prob();
        let mc = simulate_ber_par(&rx, p, 0.0, None, 2_000_000, 42);
        let ratio = mc.ber.prob() / analytic;
        assert!(
            (0.8..1.25).contains(&ratio),
            "parallel MC {:e} vs analytic {analytic:e} (ratio {ratio:.2})",
            mc.ber.prob()
        );
    }

    #[test]
    fn parallel_remainder_symbols_all_simulated() {
        // Symbol count not divisible by the shard size: the tally must
        // still cover every symbol (the last shard carries the remainder).
        let rx = Pam4Receiver::cwdm4_50g();
        let n = DEFAULT_SHARD_SYMBOLS * 3 + 41;
        let r = simulate_ber_par(&rx, Dbm(-13.0), 0.0, None, n, 9);
        assert_eq!(r.bits, n * 2);
    }

    #[test]
    fn digital_canceller_actually_cancels() {
        // The real decision-directed notch, no oracle: it must recover
        // most of the BER lost to a strong interferer.
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-12.0);
        let mut rng1 = StdRng::seed_from_u64(21);
        let mut rng2 = StdRng::seed_from_u64(21);
        let without = simulate_ber(&rx, p, mpi_db(-28.0), None, 400_000, &mut rng1);
        let digital = simulate_ber_digital_oim(&rx, p, mpi_db(-28.0), 400_000, &mut rng2);
        assert!(
            digital.ber.prob() < without.ber.prob() / 4.0,
            "digital OIM should cut BER ≥ 4×: {} → {}",
            without.ber,
            digital.ber
        );
    }

    #[test]
    fn digital_canceller_comparable_to_modeled_suppression() {
        // The analytic OimConfig models the canceller as a power
        // suppression factor; the real DSP should land within an order of
        // magnitude of it (the model is a deliberate simplification).
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-12.0);
        let modeled = simulate_ber_seeded(
            &rx,
            p,
            mpi_db(-28.0),
            Some(OimConfig::default()),
            400_000,
            33,
        );
        let mut rng = StdRng::seed_from_u64(33);
        let digital = simulate_ber_digital_oim(&rx, p, mpi_db(-28.0), 400_000, &mut rng);
        let (lo, hi) = (
            modeled.ber.prob().min(digital.ber.prob()).max(1e-7),
            modeled.ber.prob().max(digital.ber.prob()).max(1e-7),
        );
        assert!(
            hi / lo < 12.0,
            "modeled {} vs digital {} diverge more than an order of magnitude",
            modeled.ber,
            digital.ber
        );
    }

    #[test]
    fn digital_canceller_harmless_without_interference() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-13.0);
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let plain = simulate_ber(&rx, p, 0.0, None, 500_000, &mut rng1);
        let dsp = simulate_ber_digital_oim(&rx, p, 0.0, 500_000, &mut rng2);
        let ratio = dsp.ber.prob().max(1e-7) / plain.ber.prob().max(1e-7);
        assert!(
            (0.5..2.0).contains(&ratio),
            "canceller must be ~free on clean links: {} vs {}",
            plain.ber,
            dsp.ber
        );
    }

    #[test]
    #[should_panic(expected = "at least one symbol")]
    fn zero_symbols_rejected() {
        let rx = Pam4Receiver::cwdm4_50g();
        let _ = simulate_ber_seeded(&rx, Dbm(-10.0), 0.0, None, 0, 1);
    }
}
