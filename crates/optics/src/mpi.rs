//! Multi-path interference (MPI) budgets for bidirectional links.
//!
//! On a traditional duplex link, interference needs *two* reflections: the
//! signal bounces backward off one interface and forward off another before
//! reaching the receiver, so each contribution scales as `r_i · r_j` — tiny.
//!
//! A circulator-based bidi link is far less forgiving (§3.3.1, §4.1.2 and
//! Appendix B): the local receiver listens on the *same fiber strand* the
//! local transmitter talks on. Any interface that reflects `r_i` of the
//! local Tx light sends it straight back through circulator port 2→3 into
//! the local Rx, where it lands **in-band** on top of the (much weaker,
//! link-attenuated) remote signal. Contributions scale as a *single* `r_i`
//! — which is exactly why the paper drives OCS return loss below −38 dB and
//! re-engineers circulator crosstalk.
//!
//! [`MpiBudget::from_bidi_link`] computes the interferer-to-signal ratio
//! from a [`LinkBudget`]: each component reflects `r_i`, attenuated by the
//! round trip to and from that component (`T_i²`), compared against the
//! remote signal which arrives through the full link (`T`). The circulator's
//! finite Tx→Rx isolation adds a direct leakage term.

use crate::components::ComponentKind;
use crate::link::LinkBudget;
use lightwave_units::Db;
use serde::{Deserialize, Serialize};

/// A single interference contribution, for diagnosis and budget tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpiContribution {
    /// Where the reflection happened.
    pub source: MpiSource,
    /// Interferer-to-signal power ratio (linear).
    pub ratio: f64,
}

impl MpiContribution {
    /// The contribution in dB (negative; more negative = weaker interferer).
    pub fn ratio_db(&self) -> Db {
        Db(10.0 * self.ratio.log10())
    }
}

/// Origin of an interference term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpiSource {
    /// Single reflection of local Tx light at component index `usize`.
    Reflection(usize, ComponentKind),
    /// Direct Tx→Rx leakage through the circulator (finite isolation).
    CirculatorLeakage,
    /// Double-bounce of the remote signal between two components.
    DoubleBounce(usize, usize),
}

/// The full interference budget of one bidirectional link direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpiBudget {
    /// Individual contributions, largest first.
    pub contributions: Vec<MpiContribution>,
    /// Total interferer-to-signal power ratio (linear sum of contributions).
    pub total_ratio: f64,
}

/// Default circulator Tx→Rx isolation (port 1 → port 3 leakage), in dB.
/// The paper's circulators were re-engineered specifically to reduce this
/// crosstalk (§3.3.1); −50 dB is the nominal achieved figure used here.
pub const CIRCULATOR_ISOLATION_DB: f64 = -50.0;

impl MpiBudget {
    /// Computes the bidi interference budget for one direction of a link.
    ///
    /// Assumes both ends launch equal power (true of matched transceivers),
    /// so ratios are independent of absolute launch power.
    pub fn from_bidi_link(link: &LinkBudget) -> MpiBudget {
        Self::from_bidi_link_with_isolation(link, Db(CIRCULATOR_ISOLATION_DB))
    }

    /// As [`MpiBudget::from_bidi_link`], with explicit circulator isolation.
    pub fn from_bidi_link_with_isolation(link: &LinkBudget, isolation: Db) -> MpiBudget {
        let signal_transmission = link.transmission();
        assert!(
            signal_transmission > 0.0,
            "link transmission must be positive"
        );
        let mut contributions = Vec::new();

        // Single reflections of local Tx light. The round trip to component
        // i and back is T_i²; the reflected light then re-enters the local
        // receiver. Compared to the remote signal (attenuated by the full
        // link, T), the ratio is r_i · T_i² / T.
        for (i, c) in link.components.iter().enumerate() {
            let t_i = link.transmission_to(i);
            let ratio = c.reflectance() * t_i * t_i / signal_transmission;
            contributions.push(MpiContribution {
                source: MpiSource::Reflection(i, c.kind),
                ratio,
            });
        }

        // Circulator direct leakage: local Tx couples into local Rx at the
        // isolation figure, independent of the link.
        contributions.push(MpiContribution {
            source: MpiSource::CirculatorLeakage,
            ratio: isolation.linear() / signal_transmission,
        });

        // Double bounces of the remote signal (the classic duplex MPI term):
        // remote light passes j, reflects backward at j, reflects forward
        // again at i (< j), and arrives delayed. Ratio r_i · r_j · T_ij²
        // where T_ij is the extra double-pass between the two reflectors.
        for i in 0..link.components.len() {
            for j in (i + 1)..link.components.len() {
                let r_i = link.components[i].reflectance();
                let r_j = link.components[j].reflectance();
                let t_between = link.transmission_to(j) / link.transmission_to(i);
                let ratio = r_i * r_j * t_between * t_between;
                if ratio > 1e-12 {
                    contributions.push(MpiContribution {
                        source: MpiSource::DoubleBounce(i, j),
                        ratio,
                    });
                }
            }
        }

        contributions.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("ratios are finite"));
        let total_ratio = contributions.iter().map(|c| c.ratio).sum();
        MpiBudget {
            contributions,
            total_ratio,
        }
    }

    /// Total interference ratio in dB.
    pub fn total_db(&self) -> Db {
        Db(10.0 * self.total_ratio.log10())
    }

    /// The single largest contribution.
    pub fn dominant(&self) -> &MpiContribution {
        self.contributions
            .first()
            .expect("budget has contributions")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{Component, ComponentKind};
    use lightwave_units::Dbm;

    #[test]
    fn nominal_superpod_link_mpi_in_expected_band() {
        let link = LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
        let budget = MpiBudget::from_bidi_link(&link);
        let db = budget.total_db().db();
        // Well-built link: total MPI should land between the paper's
        // "interesting" band edges (−26 dB is bad, −38 dB is spec floor).
        assert!(
            (-45.0..=-32.0).contains(&db),
            "nominal MPI {db} dB out of expected band"
        );
    }

    #[test]
    fn worse_return_loss_worsens_mpi() {
        let mut link = LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
        let nominal = MpiBudget::from_bidi_link(&link).total_ratio;
        // Degrade the OCS to its spec-limit return loss of −38 dB.
        for c in &mut link.components {
            if c.kind == ComponentKind::OcsPass {
                c.return_loss = lightwave_units::Db(-38.0);
            }
        }
        let degraded = MpiBudget::from_bidi_link(&link).total_ratio;
        assert!(
            degraded > nominal * 1.5,
            "a -38 dB OCS should dominate the budget"
        );
    }

    #[test]
    fn lossier_link_has_worse_relative_mpi() {
        // More link loss means a weaker remote signal against the same local
        // reflections — the ratio must get worse. This is why the OCS IL and
        // RL specs interact.
        let short = LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
        let long = LinkBudget::superpod_nominal(Dbm(1.0), 4.0);
        let m_short = MpiBudget::from_bidi_link(&short).total_ratio;
        let m_long = MpiBudget::from_bidi_link(&long).total_ratio;
        assert!(m_long > m_short);
    }

    #[test]
    fn single_reflections_dominate_double_bounces() {
        let link = LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
        let budget = MpiBudget::from_bidi_link(&link);
        let single: f64 = budget
            .contributions
            .iter()
            .filter(|c| {
                matches!(
                    c.source,
                    MpiSource::Reflection(..) | MpiSource::CirculatorLeakage
                )
            })
            .map(|c| c.ratio)
            .sum();
        let double: f64 = budget
            .contributions
            .iter()
            .filter(|c| matches!(c.source, MpiSource::DoubleBounce(..)))
            .map(|c| c.ratio)
            .sum();
        assert!(
            single > 100.0 * double,
            "bidi links are dominated by single reflections (single={single:.3e} double={double:.3e})"
        );
    }

    #[test]
    fn better_isolation_reduces_total() {
        let link = LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
        let loose = MpiBudget::from_bidi_link_with_isolation(&link, Db(-35.0));
        let tight = MpiBudget::from_bidi_link_with_isolation(&link, Db(-60.0));
        assert!(loose.total_ratio > tight.total_ratio);
        // At -35 dB the circulator leakage should be the dominant term.
        assert_eq!(loose.dominant().source, MpiSource::CirculatorLeakage);
    }

    #[test]
    fn contributions_sorted_and_sum_to_total() {
        let link = LinkBudget::new(
            Dbm(0.0),
            vec![
                Component::nominal(ComponentKind::Connector),
                Component::nominal(ComponentKind::OcsPass),
                Component::nominal(ComponentKind::Connector),
            ],
        )
        .unwrap();
        let b = MpiBudget::from_bidi_link(&link);
        let sum: f64 = b.contributions.iter().map(|c| c.ratio).sum();
        assert!((sum - b.total_ratio).abs() < 1e-15);
        for w in b.contributions.windows(2) {
            assert!(w[0].ratio >= w[1].ratio, "contributions must be sorted");
        }
    }
}
