//! The optical circulator, modeled at the polarization level (Appendix B).
//!
//! The circulator is *the* enabling component of bidirectional links: a
//! three-port non-reciprocal device (1→2, 2→3) that lets one fiber strand
//! carry both directions, halving the OCS ports a fabric needs.
//!
//! Appendix B describes the integrated implementation: polarizing beam
//! splitters (PBS), a Faraday rotator (FR, ±45°, **non-reciprocal** — the
//! rotation sense is fixed in the lab frame, so forward and backward
//! passes add instead of cancel), and a half-wave plate (HWP, 45°,
//! reciprocal). Forward, FR and HWP rotations cancel (port 1 → port 2,
//! polarization preserved); backward they add to 90°, flipping s↔p so the
//! PBS steers the light to port 3 instead of back into the laser.
//!
//! This module implements that arithmetic with real 2×2 polarization
//! matrices, and derives the *isolation* and *crosstalk* figures that the
//! MPI budget consumes from physical imperfections (Faraday angle error,
//! PBS extinction) — closing the loop between Appendix B and §3.3.1's
//! "reducing return loss and crosstalk between the ports".

use lightwave_units::Db;
use serde::{Deserialize, Serialize};

/// A real 2×2 polarization transfer matrix acting on (s, p) amplitudes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolMatrix(pub [[f64; 2]; 2]);

impl PolMatrix {
    /// Identity.
    pub const IDENTITY: PolMatrix = PolMatrix([[1.0, 0.0], [0.0, 1.0]]);

    /// Rotation of the polarization plane by `theta` radians.
    pub fn rotation(theta: f64) -> PolMatrix {
        let (s, c) = theta.sin_cos();
        PolMatrix([[c, -s], [s, c]])
    }

    /// Half-wave plate with fast axis at `theta` radians: reflects the
    /// polarization about the axis (det = −1, reciprocal).
    pub fn half_wave_plate(theta: f64) -> PolMatrix {
        let (s2, c2) = (2.0 * theta).sin_cos();
        PolMatrix([[c2, s2], [s2, -c2]])
    }

    /// Matrix product `self · rhs` (apply `rhs` first).
    pub fn then(self, rhs: PolMatrix) -> PolMatrix {
        let a = self.0;
        let b = rhs.0;
        let mut out = [[0.0; 2]; 2];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
            }
        }
        PolMatrix(out)
    }

    /// Applies to an (s, p) amplitude vector.
    pub fn apply(self, v: [f64; 2]) -> [f64; 2] {
        [
            self.0[0][0] * v[0] + self.0[0][1] * v[1],
            self.0[1][0] * v[0] + self.0[1][1] * v[1],
        ]
    }
}

/// Power (squared amplitude) of an (s, p) vector.
pub fn power(v: [f64; 2]) -> f64 {
    v[0] * v[0] + v[1] * v[1]
}

/// Physical imperfections of a manufactured circulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CirculatorImperfections {
    /// Faraday rotation error from the ideal 45°, radians (temperature,
    /// magnet aging, wavelength dependence across the CWDM band).
    pub faraday_error: f64,
    /// PBS extinction: amplitude fraction of the wrong polarization that
    /// leaks through (power extinction = this squared).
    pub pbs_leak: f64,
    /// Excess insertion loss per pass, dB.
    pub pass_loss: Db,
}

impl CirculatorImperfections {
    /// An ideal device.
    pub fn ideal() -> CirculatorImperfections {
        CirculatorImperfections {
            faraday_error: 0.0,
            pbs_leak: 0.0,
            pass_loss: Db(0.0),
        }
    }

    /// A production-grade device: ±0.1° effective Faraday error (athermal
    /// magnet + wavelength-flattened garnet), 55 dB cascaded two-stage PBS
    /// extinction, 0.8 dB per pass. These are the re-engineering targets
    /// §3.3.1 alludes to ("reducing return loss and crosstalk between the
    /// ports").
    pub fn production() -> CirculatorImperfections {
        CirculatorImperfections {
            faraday_error: 0.1f64.to_radians(),
            pbs_leak: 10f64.powf(-55.0 / 20.0),
            pass_loss: Db(0.8),
        }
    }
}

/// The polarization-level circulator model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circulator {
    /// Device imperfections.
    pub imperfections: CirculatorImperfections,
}

/// Where the power of one pass ends up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PassResult {
    /// Power delivered to the intended output port (linear, input = 1).
    pub through: f64,
    /// Power leaked to the unintended port (isolation leakage).
    pub leaked: f64,
}

impl Circulator {
    /// An ideal circulator.
    pub fn ideal() -> Circulator {
        Circulator {
            imperfections: CirculatorImperfections::ideal(),
        }
    }

    /// A production device.
    pub fn production() -> Circulator {
        Circulator {
            imperfections: CirculatorImperfections::production(),
        }
    }

    /// Net polarization rotation of a forward pass (port 1 → port 2):
    /// FR(−45°−ε) then HWP arranged to add +45°; ideally identity.
    fn forward_matrix(&self) -> PolMatrix {
        let fr =
            PolMatrix::rotation(-(std::f64::consts::FRAC_PI_4 + self.imperfections.faraday_error));
        let hwp_equiv = PolMatrix::rotation(std::f64::consts::FRAC_PI_4);
        hwp_equiv.then(fr)
    }

    /// Net rotation of a backward pass (port 2 → port 3): the HWP is
    /// reciprocal (+45° again) but the Faraday rotation *adds* because its
    /// sense is fixed in the lab frame: total 90° (+ error).
    fn backward_matrix(&self) -> PolMatrix {
        let fr =
            PolMatrix::rotation(std::f64::consts::FRAC_PI_4 + self.imperfections.faraday_error);
        let hwp_equiv = PolMatrix::rotation(std::f64::consts::FRAC_PI_4);
        fr.then(hwp_equiv)
    }

    /// Forward pass, port 1 → port 2. The laser input is p-polarized; the
    /// output PBS passes p to the fiber and reflects s (leak) elsewhere.
    pub fn forward(&self) -> PassResult {
        let input = [0.0, 1.0]; // pure p
        let out = self.forward_matrix().apply(input);
        let t = self.transmission();
        // p continues to the fiber; s is rejected by the PBS except for
        // its finite extinction.
        let leak_amp = self.imperfections.pbs_leak;
        PassResult {
            through: (out[1] * out[1] + (out[0] * leak_amp) * (out[0] * leak_amp)) * t,
            leaked: out[0] * out[0] * (1.0 - leak_amp * leak_amp) * t,
        }
    }

    /// Backward pass, port 2 → port 3, for one incoming polarization
    /// component (standard fiber scrambles polarization, so average the
    /// two). Ideal behaviour: 90° rotation steers everything to port 3.
    pub fn backward(&self) -> PassResult {
        let t = self.transmission();
        let m = self.backward_matrix();
        let mut through = 0.0;
        let mut leaked = 0.0;
        for input in [[1.0, 0.0], [0.0, 1.0]] {
            let out = m.apply(input);
            // After the 90° rotation, what *was* going to re-enter port 1
            // (same polarization as the laser, p for a p-launched input
            // path) is now orthogonal and the PBS routes it to port 3.
            // Residual co-polarized light leaks back toward port 1.
            let (to3, to1) = if input[0] == 1.0 {
                (out[1] * out[1], out[0] * out[0])
            } else {
                (out[0] * out[0], out[1] * out[1])
            };
            through += 0.5 * to3 * t;
            leaked += 0.5 * (to1 + self.imperfections.pbs_leak * self.imperfections.pbs_leak) * t;
        }
        PassResult { through, leaked }
    }

    fn transmission(&self) -> f64 {
        (-self.imperfections.pass_loss).linear()
    }

    /// Isolation: port-2-input power leaking back out of port 1, dB
    /// (negative; more negative = better). This is the "crosstalk between
    /// the ports" §3.3.1 calls "particularly important" because it lands
    /// in-band on the local receiver.
    pub fn isolation(&self) -> Db {
        let leaked = self.backward().leaked;
        if leaked <= 0.0 {
            Db(-100.0)
        } else {
            Db(10.0 * leaked.log10())
        }
    }

    /// Insertion loss of a pass, dB (positive).
    pub fn insertion_loss(&self) -> Db {
        Db(-10.0 * self.backward().through.log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ideal_forward_pass_preserves_polarization() {
        let c = Circulator::ideal();
        let r = c.forward();
        assert!(
            close(r.through, 1.0, 1e-12),
            "all power to port 2: {}",
            r.through
        );
        assert!(close(r.leaked, 0.0, 1e-12));
    }

    #[test]
    fn ideal_backward_pass_rotates_90_degrees_to_port_3() {
        let c = Circulator::ideal();
        let r = c.backward();
        assert!(
            close(r.through, 1.0, 1e-12),
            "all power to port 3: {}",
            r.through
        );
        assert!(close(r.leaked, 0.0, 1e-12), "nothing back into the laser");
    }

    #[test]
    fn non_reciprocity_is_the_mechanism() {
        // If the Faraday rotator were reciprocal (sign flipping with
        // direction), forward and backward would both cancel and the
        // device would not circulate. Verify the matrices differ.
        let c = Circulator::ideal();
        let fwd = c.forward_matrix();
        let bwd = c.backward_matrix();
        assert!(close(fwd.0[0][0], 1.0, 1e-12), "forward ≈ identity");
        assert!(close(bwd.0[0][0], 0.0, 1e-12), "backward ≈ 90° rotation");
    }

    #[test]
    fn production_isolation_is_strong_but_finite() {
        let c = Circulator::production();
        let iso = c.isolation().db();
        assert!(
            (-60.0..=-35.0).contains(&iso),
            "production isolation {iso} dB out of expected window"
        );
    }

    #[test]
    fn faraday_error_degrades_isolation_quadratically() {
        let mk = |deg: f64| Circulator {
            imperfections: CirculatorImperfections {
                faraday_error: deg.to_radians(),
                pbs_leak: 0.0,
                pass_loss: Db(0.0),
            },
        };
        let i1 = mk(0.25).isolation().db();
        let i2 = mk(0.5).isolation().db();
        // Doubling the angle error costs ~6 dB (power ∝ sin²(2ε) ≈ 4ε²).
        assert!(
            close(i1 - i2, -6.0, 0.3),
            "i(0.25°)={i1:.1}, i(0.5°)={i2:.1}"
        );
    }

    #[test]
    fn insertion_loss_matches_component_budget() {
        let c = Circulator::production();
        let il = c.insertion_loss().db();
        // Pass loss 0.8 dB plus the tiny rotation-error loss.
        assert!((0.8..1.0).contains(&il), "IL {il}");
    }

    #[test]
    fn isolation_feeds_the_mpi_budget_consistently() {
        // The default isolation constant used by the MPI budget should be
        // achievable by a production-grade device.
        let c = Circulator::production();
        assert!(
            c.isolation().db() <= crate::mpi::CIRCULATOR_ISOLATION_DB + 3.0,
            "MPI budget assumes {} dB; device delivers {}",
            crate::mpi::CIRCULATOR_ISOLATION_DB,
            c.isolation()
        );
    }

    #[test]
    fn matrix_algebra_sanity() {
        let r90 = PolMatrix::rotation(std::f64::consts::FRAC_PI_2);
        let v = r90.apply([1.0, 0.0]);
        assert!(close(v[0], 0.0, 1e-12) && close(v[1], 1.0, 1e-12));
        // HWP at 22.5° maps p → 45° linear.
        let h = PolMatrix::half_wave_plate(22.5f64.to_radians());
        let out = h.apply([0.0, 1.0]);
        assert!(close(power(out), 1.0, 1e-12), "HWP is lossless");
        assert!(close(out[0], out[1].abs(), 1e-9), "45° linear output");
        // Rotations compose.
        let a = PolMatrix::rotation(0.3).then(PolMatrix::rotation(0.4));
        let b = PolMatrix::rotation(0.7);
        for i in 0..2 {
            for j in 0..2 {
                assert!(close(a.0[i][j], b.0[i][j], 1e-12));
            }
        }
    }
}
