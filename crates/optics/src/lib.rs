//! Photonic link models for lightwave fabrics.
//!
//! This crate is the physics substrate underneath the Palomar OCS simulator
//! (`lightwave-ocs`) and the bidi transceiver models (`lightwave-transceiver`).
//! It provides:
//!
//! - [`wdm`] — coarse-WDM wavelength grids (CWDM4 at 20 nm spacing, CWDM8 at
//!   10 nm spacing within the same 80 nm band, per §3.3.1 of the paper).
//! - [`modulation`] — NRZ / PAM4 line coding and per-lane rates (25G NRZ,
//!   50G PAM4, 100G PAM4), for backward-compatible multi-rate operation.
//! - [`components`] — optical components (connectors, splices, circulators,
//!   mux/demux, OCS passes, fiber spans) with insertion loss *and* return
//!   loss, the two quantities the paper's hardware sections obsess over.
//! - [`link`] — end-to-end link budgets over chains of components.
//! - [`mpi`] — the multi-path-interference mechanics unique to circulator
//!   based bidirectional links: every reflective interface returns a copy of
//!   the *local* transmitter's light straight into the *local* receiver, so
//!   single reflections (not just double bounces) become in-band crosstalk.
//! - [`circulator`] — the Appendix-B optical circulator at the
//!   polarization-matrix level: non-reciprocal Faraday rotation, PBS
//!   routing, and the isolation/crosstalk figures imperfections cost.
//! - [`ber`] — an analytic PAM4 direct-detection BER model with thermal,
//!   shot, RIN and MPI beat-noise terms, plus the OIM (optical interference
//!   mitigation) DSP notch-filter model of §3.3.2.
//! - [`montecarlo`] — a symbol-level Monte Carlo BER simulator used to
//!   cross-check the analytic model (Fig. 11a "Monte Carlo" points).
//! - [`dispersion`] — chromatic dispersion for G.652 fiber and the residual
//!   penalty after MLSE equalization.
//!
//! All stochastic models take explicit seeded RNGs; nothing reads wall-clock
//! or global entropy, so every experiment is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod circulator;
pub mod components;
pub mod dispersion;
pub mod link;
pub mod modulation;
pub mod montecarlo;
pub mod mpi;
pub mod wdm;

pub use ber::{BerModel, OimConfig, Pam4Receiver};
pub use circulator::Circulator;
pub use components::{Component, ComponentKind};
pub use link::{LinkBudget, LinkBudgetError};
pub use modulation::{LaneRate, LineCode};
pub use mpi::{MpiBudget, MpiContribution};
pub use wdm::{WdmGrid, WdmLane};
