//! Chromatic dispersion for O-band CWDM links and MLSE mitigation.
//!
//! §3.3.1 ("Fiber impairments"): both the 4×20 nm and 8×10 nm grids span an
//! 80 nm window around the 1310 nm zero-dispersion point of G.652 fiber, so
//! the outermost lanes see non-zero dispersion — an issue above 100 Gb/s at
//! datacenter reach. The paper mitigates with chirp management (EML) and
//! MLSE nonlinear equalization in the DSP. We model the residual penalty.

use crate::modulation::LaneRate;
use crate::wdm::WdmLane;
use lightwave_units::{Db, Nanometers};
use serde::{Deserialize, Serialize};

/// G.652 standard single-mode fiber dispersion parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiberDispersion {
    /// Zero-dispersion wavelength, nm.
    pub lambda0: Nanometers,
    /// Zero-dispersion slope S₀, ps/(nm²·km).
    pub slope: f64,
}

impl Default for FiberDispersion {
    fn default() -> Self {
        FiberDispersion {
            lambda0: Nanometers(1310.0),
            slope: 0.092,
        }
    }
}

impl FiberDispersion {
    /// Dispersion coefficient D(λ) in ps/(nm·km), from the standard
    /// Sellmeier-derived G.652 formula `D = S₀/4 · (λ − λ₀⁴/λ³)`.
    pub fn coefficient(&self, wavelength: Nanometers) -> f64 {
        let l = wavelength.nm();
        let l0 = self.lambda0.nm();
        self.slope / 4.0 * (l - l0.powi(4) / l.powi(3))
    }

    /// Accumulated dispersion over a span, ps/nm.
    pub fn accumulated(&self, wavelength: Nanometers, km: f64) -> f64 {
        assert!(km >= 0.0, "span length must be >= 0");
        self.coefficient(wavelength) * km
    }
}

/// Equalizer present in the receiver DSP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Equalizer {
    /// Linear feed-forward equalizer only.
    Ffe,
    /// Maximum-likelihood sequence estimation (§3.3.1's mitigation); roughly
    /// halves the residual intersymbol-interference penalty.
    Mlse,
}

/// Maximum penalty reported; beyond this the link is dispersion-limited.
pub const PENALTY_CAP_DB: f64 = 6.0;

/// Dispersion power penalty for one lane over one span.
///
/// Eye-closure model: the pulse spread `Δτ = |D·L| · Δλ_signal` (with
/// `Δλ_signal = baud · λ²/c`, the modulation-induced spectral width) closes
/// the eye, whose unimpaired width for an M-level format is `T/(M−1)` — a
/// PAM4 eye is a third of the symbol period, which is why dispersion bites
/// at 100G PAM4 but not 25G NRZ (§3.3.1). The power penalty is
/// `−10·log₁₀(1 − 2·(Δτ/T_eye)²)`, capped at [`PENALTY_CAP_DB`] once the
/// eye is effectively shut. MLSE halves the effective spread.
pub fn dispersion_penalty(
    fiber: &FiberDispersion,
    lane: &WdmLane,
    rate: LaneRate,
    km: f64,
    eq: Equalizer,
) -> Db {
    let d_total_ps_per_nm = fiber.accumulated(lane.center, km).abs();
    let lambda_m = lane.center.nm() * 1e-9;
    let baud = rate.baud();
    // Modulation spectral width in nm.
    let delta_lambda_nm = baud * lambda_m * lambda_m / Nanometers::C * 1e9;
    let spread_ps = d_total_ps_per_nm * delta_lambda_nm;
    let symbol_ps = 1e12 / baud;
    let eye_ps = symbol_ps / (rate.line_code().levels() - 1) as f64;
    let mut ratio = spread_ps / eye_ps;
    if eq == Equalizer::Mlse {
        ratio *= 0.5;
    }
    let closure = 1.0 - 2.0 * ratio * ratio;
    if closure <= 10f64.powf(-PENALTY_CAP_DB / 10.0) {
        return Db(PENALTY_CAP_DB);
    }
    Db((-10.0 * closure.log10()).min(PENALTY_CAP_DB))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wdm::WdmGrid;

    #[test]
    fn zero_dispersion_at_lambda0() {
        let f = FiberDispersion::default();
        assert!(f.coefficient(Nanometers(1310.0)).abs() < 1e-9);
    }

    #[test]
    fn outer_lanes_see_more_dispersion() {
        let f = FiberDispersion::default();
        let d_1311 = f.coefficient(Nanometers(1311.0)).abs();
        let d_1271 = f.coefficient(Nanometers(1271.0)).abs();
        let d_1331 = f.coefficient(Nanometers(1331.0)).abs();
        assert!(d_1271 > d_1311 && d_1331 > d_1311);
        // G.652 at 1331 nm is roughly +1.8 ps/nm/km.
        let d = f.coefficient(Nanometers(1331.0));
        assert!((1.0..3.0).contains(&d), "D(1331) = {d}");
        // ...and negative below λ₀.
        assert!(f.coefficient(Nanometers(1271.0)) < 0.0);
    }

    #[test]
    fn penalty_negligible_at_datacenter_reach_50g() {
        // 50G PAM4, 2 km, worst CWDM4 lane: the regime the paper ran first.
        let f = FiberDispersion::default();
        let lane = WdmGrid::Cwdm4.lane(3).unwrap();
        let p = dispersion_penalty(&f, &lane, LaneRate::Pam4_50, 2.0, Equalizer::Ffe);
        assert!(p.db() < 0.5, "50G/2km penalty {p} should be small");
    }

    #[test]
    fn penalty_matters_above_100g_and_mlse_helps() {
        // §3.3.1: "chromatic dispersion is an issue for data rates above
        // 100 Gb/s for the link lengths used for our use cases".
        let f = FiberDispersion::default();
        let lane = WdmGrid::Cwdm8.lane(7).unwrap(); // 1341 nm, worst lane
        let ffe = dispersion_penalty(&f, &lane, LaneRate::Pam4_100, 2.0, Equalizer::Ffe);
        let mlse = dispersion_penalty(&f, &lane, LaneRate::Pam4_100, 2.0, Equalizer::Mlse);
        assert!(
            ffe.db() > 0.4,
            "100G worst-lane penalty {ffe} should be material"
        );
        assert!(
            mlse.db() < ffe.db() * 0.6,
            "MLSE should substantially cut it"
        );
    }

    #[test]
    fn penalty_grows_with_length() {
        let f = FiberDispersion::default();
        let lane = WdmGrid::Cwdm8.lane(0).unwrap();
        let p1 = dispersion_penalty(&f, &lane, LaneRate::Pam4_100, 1.0, Equalizer::Ffe);
        let p4 = dispersion_penalty(&f, &lane, LaneRate::Pam4_100, 4.0, Equalizer::Ffe);
        assert!(p4.db() > p1.db());
    }

    #[test]
    #[should_panic(expected = "span length")]
    fn negative_span_rejected() {
        let f = FiberDispersion::default();
        let _ = f.accumulated(Nanometers(1310.0), -1.0);
    }
}
