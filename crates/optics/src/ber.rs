//! Analytic PAM4/NRZ direct-detection BER model with MPI beat noise and the
//! OIM (optical interference mitigation) DSP notch filter of §3.3.2.
//!
//! The receiver model follows standard IM-DD link-budget practice:
//!
//! * the M amplitude levels are equally spaced between `P_min` and `P_max`
//!   set by the average power and extinction ratio;
//! * each level carries thermal (input-referred TIA), shot, and RIN noise;
//! * MPI adds a *signal-proportional* beat-noise term: the interferer's
//!   carrier beats against the signal carrier at the photodiode, producing
//!   noise with σ² ∝ m·P_level·P_avg. Because it scales with signal power,
//!   raising launch power cannot out-run it — MPI produces BER *floors*,
//!   which is exactly the behaviour Fig. 11 shows for −26 dB MPI;
//! * decision thresholds sit at the noise-weighted midpoints, giving the
//!   standard `BER = (2 / (M·log₂M)) · Σ_eyes Q(ΔI / (σ_lo + σ_hi))`.
//!
//! OIM reconstructs the narrow-band carrier-to-carrier beat in the digital
//! domain and removes it with a tracked notch filter (§4.1.2, patent
//! US10084547B2). We model it as a power suppression of the beat term with
//! a small wideband residual that the notch cannot capture.

use crate::modulation::LaneRate;
use lightwave_units::{math, Ber, Db, Dbm};
use serde::{Deserialize, Serialize};

/// Electron charge, coulombs.
const Q_ELECTRON: f64 = 1.602_176_634e-19;

/// Configuration of the OIM notch-filter DSP block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OimConfig {
    /// Power suppression of the tracked narrow-band beat component, dB
    /// (positive number; applied as attenuation).
    pub suppression: Db,
    /// Fraction of the beat power that is wide-band (outside the notch) and
    /// therefore survives regardless of suppression depth.
    pub wideband_residual: f64,
}

impl Default for OimConfig {
    fn default() -> Self {
        OimConfig {
            suppression: Db(13.0),
            wideband_residual: 0.02,
        }
    }
}

impl OimConfig {
    /// Effective multiplicative factor applied to the MPI power ratio.
    pub fn mpi_power_factor(&self) -> f64 {
        let suppressed = (1.0 - self.wideband_residual) * (-self.suppression).linear();
        suppressed + self.wideband_residual
    }
}

/// A direct-detection receiver for one WDM lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pam4Receiver {
    /// Lane rate (sets baud, bandwidth, and level count).
    pub rate: LaneRate,
    /// Photodiode responsivity, A/W.
    pub responsivity: f64,
    /// Input-referred TIA noise current density, A/√Hz.
    pub thermal_noise_density: f64,
    /// Laser relative intensity noise, linear 1/Hz (e.g. 1e-14 = −140 dB/Hz).
    pub rin: f64,
    /// Transmitter extinction ratio, linear (P_max / P_min).
    pub extinction_ratio: f64,
    /// Polarization/coherence factor for MPI beating, in [0, 1].
    pub mpi_xi: f64,
    /// Implementation penalty applied to received power, dB (TDECQ-style
    /// lump for equalizer noise enhancement, jitter, etc.).
    pub implementation_penalty: Db,
}

impl Pam4Receiver {
    /// A calibrated 50 Gb/s PAM4 receiver (one lane of the 200 Gb/s CWDM4
    /// link evaluated in Fig. 11).
    pub fn cwdm4_50g() -> Pam4Receiver {
        Pam4Receiver {
            rate: LaneRate::Pam4_50,
            responsivity: 0.85,
            thermal_noise_density: 18e-12,
            rin: 1e-14,
            extinction_ratio: 4.0, // 6 dB
            // Worst-case co-polarized beating; the paper's tight component
            // specs are driven by exactly this corner.
            mpi_xi: 1.0,
            implementation_penalty: Db(1.0),
        }
    }

    /// A calibrated 100 Gb/s PAM4 receiver (one lane of the CWDM8 module).
    pub fn cwdm8_100g() -> Pam4Receiver {
        Pam4Receiver {
            rate: LaneRate::Pam4_100,
            responsivity: 0.8,
            thermal_noise_density: 20e-12,
            rin: 1e-14,
            extinction_ratio: 4.0,
            mpi_xi: 1.0,
            implementation_penalty: Db(1.5),
        }
    }

    /// Receiver electrical bandwidth in Hz.
    pub fn bandwidth_hz(&self) -> f64 {
        self.rate.rx_bandwidth().ghz() * 1e9
    }

    /// The M optical level powers (in watts) for a given received average
    /// power, equally spaced between the extinction-ratio extremes.
    pub fn level_powers_w(&self, received: Dbm) -> Vec<f64> {
        let effective = received - self.implementation_penalty;
        let p_avg_w = effective.milliwatts().mw() * 1e-3;
        let er = self.extinction_ratio;
        let p_min = 2.0 * p_avg_w / (er + 1.0);
        let p_max = er * p_min;
        let m = self.rate.line_code().levels();
        (0..m)
            .map(|i| p_min + (p_max - p_min) * i as f64 / (m - 1) as f64)
            .collect()
    }

    /// Noise standard deviation (amps) at a given optical level power.
    fn sigma_at_level(&self, p_level_w: f64, p_avg_w: f64, mpi_ratio: f64) -> f64 {
        let b = self.bandwidth_hz();
        let i_level = self.responsivity * p_level_w;
        let thermal = self.thermal_noise_density * self.thermal_noise_density * b;
        let shot = 2.0 * Q_ELECTRON * i_level * b;
        let rin = self.rin * i_level * i_level * b;
        // Carrier-carrier beat: i_beat = 2R√(P_level·P_mpi)·cos φ with
        // P_mpi = m·P_avg; mean-square over φ and polarization gives
        // σ² = 2·ξ·m·R²·P_level·P_avg.
        let mpi = 2.0
            * self.mpi_xi
            * mpi_ratio
            * self.responsivity
            * self.responsivity
            * p_level_w
            * p_avg_w;
        (thermal + shot + rin + mpi).sqrt()
    }

    /// Pre-FEC BER at a received average power, for a given linear MPI
    /// interferer-to-signal ratio, with optional OIM mitigation.
    pub fn ber(&self, received: Dbm, mpi_ratio: f64, oim: Option<OimConfig>) -> Ber {
        assert!(
            mpi_ratio >= 0.0 && mpi_ratio.is_finite(),
            "MPI ratio must be finite and >= 0, got {mpi_ratio}"
        );
        let m_eff = match oim {
            Some(cfg) => mpi_ratio * cfg.mpi_power_factor(),
            None => mpi_ratio,
        };
        let levels = self.level_powers_w(received);
        let m = levels.len();
        let p_avg_w = levels.iter().sum::<f64>() / m as f64;
        let delta_i = self.responsivity * (levels[m - 1] - levels[0]) / (m - 1) as f64;
        let sigmas: Vec<f64> = levels
            .iter()
            .map(|&p| self.sigma_at_level(p, p_avg_w, m_eff))
            .collect();
        let mut sum_q = 0.0;
        for t in 0..(m - 1) {
            let q_arg = delta_i / (sigmas[t] + sigmas[t + 1]);
            sum_q += math::q_function(q_arg);
        }
        let bits = self.rate.line_code().bits_per_symbol() as f64;
        Ber::new(2.0 * sum_q / (m as f64 * bits))
    }

    /// The decision thresholds (in amps) used by the analytic model — the
    /// noise-weighted midpoints between adjacent levels. Exposed so the
    /// Monte-Carlo simulator slices with the same thresholds.
    pub fn thresholds(&self, received: Dbm, mpi_ratio: f64, oim: Option<OimConfig>) -> Vec<f64> {
        let m_eff = match oim {
            Some(cfg) => mpi_ratio * cfg.mpi_power_factor(),
            None => mpi_ratio,
        };
        let levels = self.level_powers_w(received);
        let m = levels.len();
        let p_avg_w = levels.iter().sum::<f64>() / m as f64;
        let currents: Vec<f64> = levels.iter().map(|&p| self.responsivity * p).collect();
        let sigmas: Vec<f64> = levels
            .iter()
            .map(|&p| self.sigma_at_level(p, p_avg_w, m_eff))
            .collect();
        (0..m - 1)
            .map(|t| {
                (currents[t] * sigmas[t + 1] + currents[t + 1] * sigmas[t])
                    / (sigmas[t] + sigmas[t + 1])
            })
            .collect()
    }

    /// Receiver sensitivity: the lowest received power achieving
    /// `target` BER, found by bisection over [−30, +5] dBm.
    ///
    /// Returns `None` if the target is unreachable at any power (an MPI
    /// induced BER floor above the target).
    pub fn sensitivity(&self, target: Ber, mpi_ratio: f64, oim: Option<OimConfig>) -> Option<Dbm> {
        let (mut lo, mut hi) = (-30.0f64, 5.0f64);
        if self.ber(Dbm(hi), mpi_ratio, oim).prob() > target.prob() {
            return None; // floor above target
        }
        if self.ber(Dbm(lo), mpi_ratio, oim).prob() <= target.prob() {
            return Some(Dbm(lo)); // already sensitive at the bottom of range
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.ber(Dbm(mid), mpi_ratio, oim).prob() > target.prob() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Dbm(hi))
    }
}

/// Convenience: full BER model bundling a receiver with an MPI operating
/// point, as used by the figure-reproduction harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BerModel {
    /// The receiver.
    pub receiver: Pam4Receiver,
    /// Linear interferer-to-signal MPI ratio.
    pub mpi_ratio: f64,
    /// OIM configuration, if the DSP block is enabled.
    pub oim: Option<OimConfig>,
}

impl BerModel {
    /// BER at a received power.
    pub fn ber(&self, received: Dbm) -> Ber {
        self.receiver.ber(received, self.mpi_ratio, self.oim)
    }

    /// Sensitivity at a target BER.
    pub fn sensitivity(&self, target: Ber) -> Option<Dbm> {
        self.receiver.sensitivity(target, self.mpi_ratio, self.oim)
    }
}

/// Converts an MPI level quoted in dB (e.g. −32.0) to the linear ratio.
pub fn mpi_db(db: f64) -> f64 {
    Db(db).linear()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_decreases_with_power_without_mpi() {
        let rx = Pam4Receiver::cwdm4_50g();
        let mut prev = 1.0;
        for p in [-16.0, -14.0, -12.0, -10.0, -8.0] {
            let ber = rx.ber(Dbm(p), 0.0, None).prob();
            assert!(ber < prev, "BER must fall as power rises (p={p})");
            prev = ber;
        }
    }

    #[test]
    fn clean_sensitivity_is_plausible_for_50g_pam4() {
        let rx = Pam4Receiver::cwdm4_50g();
        let s = rx.sensitivity(Ber::KP4_THRESHOLD, 0.0, None).unwrap();
        assert!(
            (-16.0..=-9.0).contains(&s.dbm()),
            "50G PAM4 KP4 sensitivity {s} outside plausible window"
        );
    }

    #[test]
    fn mpi_minus26_causes_floor_above_kp4() {
        // Fig. 11: the worst MPI condition cannot reach the KP4 threshold
        // without OIM — a BER floor.
        let rx = Pam4Receiver::cwdm4_50g();
        assert!(
            rx.sensitivity(Ber::KP4_THRESHOLD, mpi_db(-26.0), None)
                .is_none(),
            "-26 dB MPI should floor above 2e-4 without OIM"
        );
        // ... and OIM rescues it.
        assert!(rx
            .sensitivity(
                Ber::KP4_THRESHOLD,
                mpi_db(-26.0),
                Some(OimConfig::default())
            )
            .is_some());
    }

    #[test]
    fn oim_gain_exceeds_1db_at_minus32() {
        // §4.1.2: "for an MPI value of −32 dB, and a bit error rate of
        // 2×10⁻⁴ ... the algorithm improves the receiver sensitivity by
        // more than 1 dB".
        let rx = Pam4Receiver::cwdm4_50g();
        let without = rx
            .sensitivity(Ber::KP4_THRESHOLD, mpi_db(-32.0), None)
            .unwrap();
        let with = rx
            .sensitivity(
                Ber::KP4_THRESHOLD,
                mpi_db(-32.0),
                Some(OimConfig::default()),
            )
            .unwrap();
        let gain = (without - with).db();
        assert!(gain > 1.0, "OIM gain {gain:.2} dB should exceed 1 dB");
        assert!(gain < 4.0, "OIM gain {gain:.2} dB implausibly large");
    }

    #[test]
    fn oim_is_nearly_free_when_mpi_is_negligible() {
        let rx = Pam4Receiver::cwdm4_50g();
        let without = rx
            .sensitivity(Ber::KP4_THRESHOLD, mpi_db(-55.0), None)
            .unwrap();
        let with = rx
            .sensitivity(
                Ber::KP4_THRESHOLD,
                mpi_db(-55.0),
                Some(OimConfig::default()),
            )
            .unwrap();
        assert!((without - with).db().abs() < 0.1);
    }

    #[test]
    fn stronger_mpi_always_raises_ber() {
        let rx = Pam4Receiver::cwdm4_50g();
        let p = Dbm(-10.0);
        let mut prev = 0.0;
        for db in [-45.0, -38.0, -32.0, -26.0] {
            let ber = rx.ber(p, mpi_db(db), None).prob();
            assert!(ber >= prev, "BER must be monotone in MPI");
            prev = ber;
        }
    }

    #[test]
    fn thresholds_are_strictly_increasing() {
        let rx = Pam4Receiver::cwdm4_50g();
        let th = rx.thresholds(Dbm(-10.0), mpi_db(-32.0), None);
        assert_eq!(th.len(), 3);
        assert!(th.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn oim_factor_bounded_by_residual() {
        let cfg = OimConfig {
            suppression: Db(40.0),
            wideband_residual: 0.02,
        };
        let f = cfg.mpi_power_factor();
        assert!(
            (0.02..0.021).contains(&f),
            "residual floors the factor: {f}"
        );
    }

    #[test]
    fn nrz_outperforms_pam4_at_same_power() {
        // NRZ has one eye spanning the full OMA; PAM4 splits it in three.
        let pam4 = Pam4Receiver::cwdm4_50g();
        let nrz = Pam4Receiver {
            rate: LaneRate::Nrz25,
            ..pam4
        };
        let p = Dbm(-14.0);
        assert!(nrz.ber(p, 0.0, None).prob() < pam4.ber(p, 0.0, None).prob());
    }

    #[test]
    fn sensitivity_bisection_brackets_target() {
        let rx = Pam4Receiver::cwdm4_50g();
        let s = rx
            .sensitivity(Ber::KP4_THRESHOLD, mpi_db(-32.0), None)
            .unwrap();
        let at = rx.ber(s, mpi_db(-32.0), None).prob();
        assert!(
            (at / Ber::KP4_THRESHOLD.prob() - 1.0).abs() < 0.01,
            "BER at sensitivity {at:.3e} should sit on the threshold"
        );
    }
}
