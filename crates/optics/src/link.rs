//! End-to-end optical link budgets.
//!
//! A [`LinkBudget`] is an ordered chain of [`Component`]s from transmitter
//! flange to receiver flange. It answers the questions the paper's §3.3.1
//! ("Larger optical link budget") revolves around: what power reaches the
//! receiver, how much margin remains above the sensitivity floor, and — via
//! [`crate::mpi`] — how much of the local transmitter's light leaks back
//! into the local receiver on a bidirectional link.

use crate::components::{Component, ComponentKind};
use lightwave_units::{Db, Dbm};
use serde::{Deserialize, Serialize};

/// Errors constructing or evaluating a link budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkBudgetError {
    /// The chain has no components (a link needs at least a fiber).
    Empty,
}

impl std::fmt::Display for LinkBudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkBudgetError::Empty => write!(f, "link budget has no components"),
        }
    }
}

impl std::error::Error for LinkBudgetError {}

/// An ordered optical path from Tx output to Rx input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Launch power at the transmitter flange.
    pub launch_power: Dbm,
    /// Components in propagation order, Tx side first.
    pub components: Vec<Component>,
}

impl LinkBudget {
    /// Creates a budget over a component chain.
    pub fn new(
        launch_power: Dbm,
        components: Vec<Component>,
    ) -> Result<LinkBudget, LinkBudgetError> {
        if components.is_empty() {
            return Err(LinkBudgetError::Empty);
        }
        Ok(LinkBudget {
            launch_power,
            components,
        })
    }

    /// The canonical ML-superpod bidirectional path (Fig. 3b): Tx →
    /// circulator → connector → fiber → OCS pass → fiber → connector →
    /// circulator → Rx, with WDM mux/demux inside the modules.
    ///
    /// `fiber_km` is the total one-way fiber length.
    pub fn superpod_nominal(launch_power: Dbm, fiber_km: f64) -> LinkBudget {
        LinkBudget {
            launch_power,
            components: vec![
                Component::nominal(ComponentKind::WdmMux),
                Component::nominal(ComponentKind::CirculatorPass),
                Component::nominal(ComponentKind::Connector),
                Component::fiber_span(fiber_km / 2.0),
                Component::nominal(ComponentKind::OcsPass),
                Component::fiber_span(fiber_km / 2.0),
                Component::nominal(ComponentKind::Connector),
                Component::nominal(ComponentKind::CirculatorPass),
                Component::nominal(ComponentKind::WdmDemux),
            ],
        }
    }

    /// Total insertion loss of the chain.
    pub fn total_loss(&self) -> Db {
        self.components.iter().map(|c| c.insertion_loss).sum()
    }

    /// Power arriving at the receiver flange.
    pub fn received_power(&self) -> Dbm {
        self.launch_power - self.total_loss()
    }

    /// Margin above a receiver sensitivity (positive = healthy link).
    pub fn margin(&self, sensitivity: Dbm) -> Db {
        self.received_power() - sensitivity
    }

    /// Linear end-to-end power transmission.
    pub fn transmission(&self) -> f64 {
        (-self.total_loss()).linear()
    }

    /// Cumulative transmission from the Tx flange up to (but not including)
    /// component `idx` — i.e. the fraction of launch power arriving at that
    /// component's input. Used by the MPI budget to weight reflections.
    pub fn transmission_to(&self, idx: usize) -> f64 {
        assert!(idx <= self.components.len(), "component index out of range");
        self.components[..idx]
            .iter()
            .map(|c| c.transmission())
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chain_is_rejected() {
        assert_eq!(
            LinkBudget::new(Dbm(0.0), vec![]).unwrap_err(),
            LinkBudgetError::Empty
        );
    }

    #[test]
    fn superpod_nominal_loss_is_within_budget() {
        // Mux 1.0 + circ 0.8 + conn 0.25 + fiber 0.035·... + OCS 1.6 + ...
        let link = LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
        let loss = link.total_loss().db();
        // Component sum: 1.0+0.8+0.25+0.035+1.6+0.035+0.25+0.8+1.0 = 5.77
        assert!((loss - 5.77).abs() < 0.01, "got {loss}");
        assert!((link.received_power().dbm() - (1.0 - loss)).abs() < 1e-12);
    }

    #[test]
    fn margin_is_signed() {
        let link = LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
        assert!(link.margin(Dbm(-12.0)).db() > 0.0);
        assert!(link.margin(Dbm(-2.0)).db() < 0.0);
    }

    #[test]
    fn transmission_to_is_cumulative() {
        let link = LinkBudget::superpod_nominal(Dbm(0.0), 1.0);
        assert!((link.transmission_to(0) - 1.0).abs() < 1e-12);
        let full: f64 = link.transmission();
        let upto_last = link.transmission_to(link.components.len());
        assert!((full - upto_last).abs() < 1e-12);
        // Monotone non-increasing along the chain.
        let mut prev = 1.0;
        for i in 0..=link.components.len() {
            let t = link.transmission_to(i);
            assert!(t <= prev + 1e-15);
            prev = t;
        }
    }

    #[test]
    fn loss_in_db_equals_linear_product() {
        let link = LinkBudget::superpod_nominal(Dbm(0.0), 2.0);
        let via_db = (-link.total_loss()).linear();
        let via_linear = link.transmission();
        assert!((via_db - via_linear).abs() < 1e-12);
    }
}
