//! Coarse-WDM wavelength grids.
//!
//! The paper's DCN transceivers use the standard CWDM4 grid (4 lanes on
//! 20 nm spacing around 1310 nm), while the ML-superpod CWDM8 modules pack
//! 8 lanes at 10 nm spacing *into the same 80 nm spectral window* (§3.3.1).
//! Keeping the spectral occupancy fixed is what lets CWDM8 double the
//! bandwidth per fiber without widening the band the OCS optics and
//! mux/demux films must support.

use lightwave_units::Nanometers;
use serde::{Deserialize, Serialize};

/// A WDM grid: a set of equally-spaced wavelength lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WdmGrid {
    /// 4 lanes, 20 nm spacing: 1271/1291/1311/1331 nm (CWDM4 MSA).
    Cwdm4,
    /// 8 lanes, 10 nm spacing: 1271..1341 nm, same 80 nm window as CWDM4.
    Cwdm8,
}

/// One wavelength lane within a grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WdmLane {
    /// Lane index within the grid (0-based, shortest wavelength first).
    pub index: u8,
    /// Center wavelength.
    pub center: Nanometers,
    /// Channel spacing of the parent grid.
    pub spacing: Nanometers,
}

impl WdmGrid {
    /// Number of wavelength lanes.
    pub fn lane_count(self) -> usize {
        match self {
            WdmGrid::Cwdm4 => 4,
            WdmGrid::Cwdm8 => 8,
        }
    }

    /// Channel spacing.
    pub fn spacing(self) -> Nanometers {
        match self {
            WdmGrid::Cwdm4 => Nanometers(20.0),
            WdmGrid::Cwdm8 => Nanometers(10.0),
        }
    }

    /// First (shortest) center wavelength. Both grids anchor at 1271 nm so
    /// they share the O-band window the fabric optics are designed for.
    pub fn first_center(self) -> Nanometers {
        Nanometers(1271.0)
    }

    /// All lanes of the grid.
    pub fn lanes(self) -> Vec<WdmLane> {
        let spacing = self.spacing();
        (0..self.lane_count())
            .map(|i| WdmLane {
                index: i as u8,
                center: Nanometers(self.first_center().nm() + i as f64 * spacing.nm()),
                spacing,
            })
            .collect()
    }

    /// The lane at `index`, if it exists.
    pub fn lane(self, index: usize) -> Option<WdmLane> {
        (index < self.lane_count()).then(|| self.lanes()[index])
    }

    /// Total spectral occupancy from the lowest channel edge to the highest.
    ///
    /// Both grids occupy the same 80 nm window — the CWDM8 design constraint
    /// that drove the 10 nm spacing (§3.3.1).
    pub fn spectral_width(self) -> Nanometers {
        let n = self.lane_count() as f64;
        Nanometers(n * self.spacing().nm())
    }

    /// The wavelength range `[min_edge, max_edge]` covered by the grid,
    /// taking each channel as ±spacing/2 around its center.
    pub fn band(self) -> (Nanometers, Nanometers) {
        let half = self.spacing().nm() / 2.0;
        let lanes = self.lanes();
        (
            Nanometers(lanes.first().expect("grid has lanes").center.nm() - half),
            Nanometers(lanes.last().expect("grid has lanes").center.nm() + half),
        )
    }

    /// True if `wavelength` falls within the grid's band.
    pub fn contains(self, wavelength: Nanometers) -> bool {
        let (lo, hi) = self.band();
        wavelength.nm() >= lo.nm() && wavelength.nm() <= hi.nm()
    }
}

/// The out-of-band monitor wavelength used by the Palomar OCS cameras
/// (850 nm, §3.2.2) — deliberately far from the ~1300 nm data band so
/// dichroic splitters can separate monitor light from signal light.
pub const MONITOR_WAVELENGTH: Nanometers = Nanometers(850.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cwdm4_matches_msa_grid() {
        let lanes = WdmGrid::Cwdm4.lanes();
        let centers: Vec<f64> = lanes.iter().map(|l| l.center.nm()).collect();
        assert_eq!(centers, vec![1271.0, 1291.0, 1311.0, 1331.0]);
    }

    #[test]
    fn cwdm8_doubles_lanes_at_half_spacing() {
        let g8 = WdmGrid::Cwdm8;
        assert_eq!(g8.lane_count(), 8);
        assert_eq!(g8.spacing().nm(), 10.0);
        let lanes = g8.lanes();
        assert_eq!(lanes[7].center.nm(), 1341.0);
    }

    #[test]
    fn both_grids_occupy_same_80nm_window() {
        assert_eq!(WdmGrid::Cwdm4.spectral_width().nm(), 80.0);
        assert_eq!(WdmGrid::Cwdm8.spectral_width().nm(), 80.0);
    }

    #[test]
    fn band_containment() {
        assert!(WdmGrid::Cwdm4.contains(Nanometers(1310.0)));
        assert!(!WdmGrid::Cwdm4.contains(Nanometers(1500.0)));
        assert!(!WdmGrid::Cwdm4.contains(MONITOR_WAVELENGTH));
    }

    #[test]
    fn lane_lookup() {
        assert!(WdmGrid::Cwdm4.lane(3).is_some());
        assert!(WdmGrid::Cwdm4.lane(4).is_none());
        assert_eq!(WdmGrid::Cwdm8.lane(2).unwrap().center.nm(), 1291.0);
    }

    #[test]
    fn monitor_wavelength_is_out_of_band_for_both_grids() {
        assert!(!WdmGrid::Cwdm4.contains(MONITOR_WAVELENGTH));
        assert!(!WdmGrid::Cwdm8.contains(MONITOR_WAVELENGTH));
    }
}
