//! The lightwave-fabric control plane.
//!
//! A *lightwave fabric* is a fleet of OCSes plus the software that drives
//! them as one reconfigurable interconnect (§3.2.2: "the same software
//! stack and base OS as our other datacenter networking devices ... The
//! ability to deeply integrate the control and monitoring software with
//! the rest of our network infrastructure was essential given that the
//! switches had a large blast radius").
//!
//! - [`fleet`] — the OCS fleet: ownership, time, health roll-up.
//! - [`controller`] — target-state reconfiguration: validate-then-commit
//!   across switches, minimal-delta application, non-disruption audit,
//!   completion-time accounting (OCS settle + transceiver bring-up).
//! - [`maintenance`] — planned FRU replacement on live switches: blast
//!   radius and expected outage, audited against what actually blinks.
//! - [`instrument`] — feeds commits and fleet scrapes into the fleet
//!   observability subsystem (`lightwave-telemetry`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod fleet;
pub mod instrument;
pub mod maintenance;

pub use controller::{
    CommitError, CommitReport, FabricController, FabricDelta, FabricTarget, SwitchDelta,
};
pub use fleet::{FleetHealth, OcsFleet, OcsId};
pub use maintenance::{plan_replacement, MaintenancePlan};
