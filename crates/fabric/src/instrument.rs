//! Bridges the fabric control plane into the fleet observability
//! subsystem (`lightwave-telemetry`).
//!
//! Two views feed in here:
//!
//! - **commits** — each controller transaction records its delta size,
//!   disturbed-circuit count, the non-disruption audit (untouched
//!   circuits), and time-to-traffic-ready;
//! - **fleet scrapes** — every switch's health gauges, loss-drift census,
//!   availability SLO observation, and raw alarms (which the aggregator
//!   debounces and correlates), via a per-switch [`OcsInstruments`].

use crate::controller::{CommitError, CommitReport, FabricController, FabricTarget};
use crate::fleet::{OcsFleet, OcsId};
use lightwave_ocs::instrument::OcsInstruments;
use lightwave_telemetry::rollup::{PortPath, RollupTree};
use lightwave_telemetry::{CounterId, EventKind, FleetTelemetry, HistogramId, RateWindow};
use lightwave_trace::{Lane, SpanId, SpanKind, Tracer};
use lightwave_units::Nanos;
use std::collections::BTreeMap;

/// Fleet-metric handles for the fabric controller.
#[derive(Debug, Default)]
pub struct FabricInstruments {
    handles: Option<Handles>,
    /// Per-second commit rate over fixed windows. Lives outside
    /// [`Handles`] because the window carries mutable cursor state and
    /// `Handles` is cloned out on each record.
    commit_rate: Option<RateWindow>,
    per_switch: BTreeMap<OcsId, OcsInstruments>,
}

#[derive(Debug, Clone)]
struct Handles {
    commits: CounterId,
    circuits_added: CounterId,
    circuits_removed: CounterId,
    circuits_untouched: CounterId,
    delta_size: HistogramId,
    settle_ms: HistogramId,
    touched_switches: HistogramId,
    pairs_added: HistogramId,
    pairs_removed: HistogramId,
}

impl Handles {
    fn register(sink: &mut FleetTelemetry) -> Handles {
        let m = &mut sink.metrics;
        Handles {
            commits: m.counter("fabric_commits_total", &[]),
            circuits_added: m.counter("fabric_circuits_added_total", &[]),
            circuits_removed: m.counter("fabric_circuits_removed_total", &[]),
            circuits_untouched: m.counter("fabric_circuits_untouched_total", &[]),
            delta_size: m.histogram("fabric_commit_delta_circuits", &[]),
            settle_ms: m.histogram("fabric_commit_settle_ms", &[]),
            touched_switches: m.histogram("fabric_commit_touched_switches", &[]),
            pairs_added: m.histogram("fabric_commit_pairs_added", &[]),
            pairs_removed: m.histogram("fabric_commit_pairs_removed", &[]),
        }
    }
}

impl FabricInstruments {
    /// Registers the controller-level instruments in `sink`'s metrics
    /// registry; per-switch instruments register lazily at first scrape.
    pub fn register(sink: &mut FleetTelemetry) -> FabricInstruments {
        FabricInstruments {
            handles: Some(Handles::register(sink)),
            commit_rate: None,
            per_switch: BTreeMap::new(),
        }
    }

    fn handles(&mut self, sink: &mut FleetTelemetry) -> Handles {
        self.handles
            .get_or_insert_with(|| Handles::register(sink))
            .clone()
    }

    /// Rolls the commit-rate window at sim time `at`, publishing the
    /// `fabric_commits_per_sec` gauge on rollover.
    fn roll_commit_rate(&mut self, sink: &mut FleetTelemetry, at: Nanos) {
        let commits = self.handles(sink).commits;
        let mut rate = *self.commit_rate.get_or_insert_with(|| {
            sink.metrics.rate_window(
                commits,
                "fabric_commits_per_sec",
                &[],
                Nanos::from_secs_f64(1.0),
            )
        });
        rate.observe(&mut sink.metrics, at);
        self.commit_rate = Some(rate);
    }

    /// Records a committed transaction: delta counters, disturbed-circuit
    /// and settle-time histograms, and a [`EventKind::Commit`] event.
    ///
    /// `at` is the simulation time the commit was issued.
    pub fn record_commit(&mut self, sink: &mut FleetTelemetry, at: Nanos, report: &CommitReport) {
        self.record_commit_impl(sink, at, report, None);
    }

    /// [`Self::record_commit`] plus a causal span tree: one
    /// [`SpanKind::FabricCommit`] on the control lane covering
    /// `at..traffic_ready_at`, with each touched switch's
    /// [`SpanKind::ReconfigCommit`] (and its four phases) as children.
    /// Returns the commit span.
    pub fn record_commit_traced(
        &mut self,
        sink: &mut FleetTelemetry,
        tracer: &mut Tracer,
        parent: Option<SpanId>,
        at: Nanos,
        report: &CommitReport,
    ) -> SpanId {
        let commit = tracer.begin(
            Lane::Control,
            parent,
            at,
            SpanKind::FabricCommit {
                switches: report.per_switch.len() as u32,
                added: report.added as u32,
                removed: report.removed as u32,
                untouched: report.untouched as u32,
            },
        );
        self.record_commit_impl(sink, at, report, Some((tracer, commit)));
        tracer.end(commit, report.traffic_ready_at.max(at));
        commit
    }

    fn record_commit_impl(
        &mut self,
        sink: &mut FleetTelemetry,
        at: Nanos,
        report: &CommitReport,
        mut trace: Option<(&mut Tracer, SpanId)>,
    ) {
        let h = self.handles(sink);
        sink.metrics.inc(h.commits, at, 1);
        self.roll_commit_rate(sink, at);
        sink.metrics.inc(h.circuits_added, at, report.added as u64);
        sink.metrics
            .inc(h.circuits_removed, at, report.removed as u64);
        sink.metrics
            .inc(h.circuits_untouched, at, report.untouched as u64);
        sink.metrics
            .observe(h.delta_size, at, (report.added + report.removed) as f64);
        // Commit shape: how wide the transaction fanned out (touched
        // switches) and the per-direction delta-pair counts — the
        // distributions PR 7's incremental composer is meant to keep
        // small, now visible per commit rather than only as totals.
        if !report.per_switch.is_empty() {
            sink.metrics
                .observe(h.touched_switches, at, report.per_switch.len() as f64);
        }
        if report.added > 0 {
            sink.metrics.observe(h.pairs_added, at, report.added as f64);
        }
        if report.removed > 0 {
            sink.metrics
                .observe(h.pairs_removed, at, report.removed as f64);
        }
        let settle = report.traffic_ready_at.saturating_sub(at);
        if report.added > 0 {
            sink.metrics
                .observe(h.settle_ms, at, settle.as_millis_f64());
        }
        sink.events.emit(
            at,
            "fabric",
            EventKind::Commit {
                switches: report.per_switch.len() as u32,
                added: report.added as u32,
                removed: report.removed as u32,
                untouched: report.untouched as u32,
                settle,
            },
        );
        // Fan the per-switch reports into each switch's own instruments
        // (reconfig counters + switch-duration histogram).
        for (&id, switch_report) in &report.per_switch {
            let inst = self
                .per_switch
                .entry(id)
                .or_insert_with(|| OcsInstruments::register(sink, id));
            match trace.as_mut() {
                Some((tracer, commit)) => {
                    inst.record_reconfig_traced(sink, tracer, Some(*commit), at, switch_report);
                }
                None => inst.record_reconfig(sink, at, switch_report),
            }
        }
    }

    /// Folds a committed transaction into the campus rollup tree: per
    /// touched switch, the circuits moved (`fabric_commit_moves`) and
    /// preserved (`fabric_commit_untouched`) at that switch's leaf
    /// under `pod`, plus the fabric-wide settle time on the pod-level
    /// pseudo-switch leaf `u32::MAX`.
    pub fn roll_commit(tree: &mut RollupTree, pod: u32, at: Nanos, report: &CommitReport) {
        let moves = tree.metric("fabric_commit_moves");
        let kept = tree.metric("fabric_commit_untouched");
        for (&id, r) in &report.per_switch {
            let path = PortPath::new(pod, id, 0);
            let delta = (r.added.len() + r.removed.len()) as f64;
            tree.ingest(moves, path, at, delta);
            tree.ingest(kept, path, at, r.untouched as f64);
        }
        if report.added > 0 {
            let settle = report.traffic_ready_at.saturating_sub(at);
            tree.record(
                "fabric_settle_ms",
                PortPath::new(pod, u32::MAX, 0),
                at,
                settle.as_millis_f64(),
            );
        }
    }

    /// Commits `target` through `controller`, recording the outcome.
    /// Failed commits record nothing (nothing was applied).
    pub fn commit_observed(
        &mut self,
        sink: &mut FleetTelemetry,
        controller: &mut FabricController,
        target: &FabricTarget,
    ) -> Result<CommitReport, CommitError> {
        let at = fleet_now(&controller.fleet);
        let report = controller.commit(target)?;
        self.record_commit(sink, at, &report);
        Ok(report)
    }

    /// [`Self::commit_observed`] with the span tree of
    /// [`Self::record_commit_traced`]. Failed commits record and trace
    /// nothing.
    pub fn commit_observed_traced(
        &mut self,
        sink: &mut FleetTelemetry,
        tracer: &mut Tracer,
        parent: Option<SpanId>,
        controller: &mut FabricController,
        target: &FabricTarget,
    ) -> Result<(CommitReport, SpanId), CommitError> {
        let at = fleet_now(&controller.fleet);
        let report = controller.commit(target)?;
        let span = self.record_commit_traced(sink, tracer, parent, at, &report);
        Ok((report, span))
    }

    /// Scrapes every switch in the fleet: health gauges, drift census,
    /// SLO observations, and alarm forwarding into the aggregator.
    pub fn scrape_fleet(&mut self, sink: &mut FleetTelemetry, fleet: &OcsFleet) {
        let at = fleet_now(fleet);
        for (&id, ocs) in fleet.iter() {
            let inst = self
                .per_switch
                .entry(id)
                .or_insert_with(|| OcsInstruments::register(sink, id));
            inst.scrape(sink, at, ocs);
        }
        self.roll_commit_rate(sink, at);
        sink.advance(at);
    }
}

fn fleet_now(fleet: &OcsFleet) -> Nanos {
    fleet
        .iter()
        .map(|(_, ocs)| ocs.now())
        .max()
        .unwrap_or(Nanos(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwave_ocs::PortMapping;

    #[test]
    fn observed_commit_records_delta_and_event() {
        let mut sink = FleetTelemetry::new();
        let mut inst = FabricInstruments::register(&mut sink);
        let mut c = FabricController::new(OcsFleet::build(2, 17));
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 1), (2, 3)]).unwrap());
        t.set(1, PortMapping::from_pairs([(5, 6)]).unwrap());
        let report = inst.commit_observed(&mut sink, &mut c, &t).unwrap();
        assert_eq!(report.added, 3);
        assert_eq!(
            sink.metrics
                .find("fabric_commits_total", &[])
                .map(|v| format!("{v:?}")),
            Some("Counter(1)".to_string())
        );
        assert!(sink.events.recent().any(|e| matches!(
            e.kind,
            EventKind::Commit {
                switches: 2,
                added: 3,
                ..
            }
        )));
    }

    #[test]
    fn traced_commit_builds_the_span_tree() {
        let mut sink = FleetTelemetry::new();
        let mut tracer = Tracer::new(99);
        let mut inst = FabricInstruments::register(&mut sink);
        let mut c = FabricController::new(OcsFleet::build(2, 17));
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 1), (2, 3)]).unwrap());
        t.set(1, PortMapping::from_pairs([(5, 6)]).unwrap());
        let (report, commit) = inst
            .commit_observed_traced(&mut sink, &mut tracer, None, &mut c, &t)
            .unwrap();
        assert_eq!(report.added, 3);
        assert_eq!(tracer.open_count(), 0, "commit span closed");
        let spans = tracer.spans();
        let root = spans.iter().find(|s| s.id == commit).unwrap();
        assert!(matches!(
            root.kind,
            SpanKind::FabricCommit {
                switches: 2,
                added: 3,
                ..
            }
        ));
        let reconfigs: Vec<_> = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::ReconfigCommit { .. }))
            .collect();
        assert_eq!(reconfigs.len(), 2, "one per touched switch");
        for r in &reconfigs {
            assert_eq!(r.parent, Some(commit));
        }
        // Both switches added circuits ⇒ both get the 4-phase chain.
        let phases = spans
            .iter()
            .filter(|s| matches!(s.kind, SpanKind::Phase { .. }))
            .count();
        assert_eq!(phases, 8);
        // Metrics recorded exactly once (no double fan-out).
        assert_eq!(
            sink.metrics
                .find("fabric_commits_total", &[])
                .map(|v| format!("{v:?}")),
            Some("Counter(1)".to_string())
        );
    }

    #[test]
    fn commit_shape_histograms_track_touch_and_pair_counts() {
        let mut sink = FleetTelemetry::new();
        let mut inst = FabricInstruments::register(&mut sink);
        let mut c = FabricController::new(OcsFleet::build(3, 17));
        // Commit 1: two switches, 3 pairs added, nothing removed.
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 1), (2, 3)]).unwrap());
        t.set(1, PortMapping::from_pairs([(5, 6)]).unwrap());
        inst.commit_observed(&mut sink, &mut c, &t).unwrap();
        // Commit 2: narrow delta — switch 0 drops one pair.
        t.set(0, PortMapping::from_pairs([(0, 1)]).unwrap());
        inst.commit_observed(&mut sink, &mut c, &t).unwrap();
        let hist = |name: &str| match sink.metrics.find(name, &[]) {
            Some(lightwave_telemetry::metrics::MetricValue::Histogram(h)) => h.clone(),
            other => panic!("{name}: {other:?}"),
        };
        let touched = hist("fabric_commit_touched_switches");
        assert_eq!(touched.count(), 2);
        assert_eq!(touched.max(), Some(2.0), "widest commit touched 2");
        let added = hist("fabric_commit_pairs_added");
        assert_eq!(added.count(), 1, "removal-only commit records no add");
        assert_eq!(added.max(), Some(3.0));
        let removed = hist("fabric_commit_pairs_removed");
        assert_eq!(removed.count(), 1);
        assert_eq!(removed.max(), Some(1.0));
    }

    #[test]
    fn failed_commit_records_nothing() {
        let mut sink = FleetTelemetry::new();
        let mut inst = FabricInstruments::register(&mut sink);
        let mut c = FabricController::new(OcsFleet::build(1, 3));
        let mut t = FabricTarget::new();
        t.set(9, PortMapping::from_pairs([(0, 1)]).unwrap());
        assert!(inst.commit_observed(&mut sink, &mut c, &t).is_err());
        assert_eq!(sink.events.published(), 0);
    }

    #[test]
    fn commit_rate_gauge_publishes_on_window_rollover() {
        let mut sink = FleetTelemetry::new();
        let mut inst = FabricInstruments::register(&mut sink);
        let mut c = FabricController::new(OcsFleet::build(1, 17));
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 1)]).unwrap());
        inst.commit_observed(&mut sink, &mut c, &t).unwrap();
        // Advance past the 1 s window; the next scrape publishes the rate.
        c.fleet.advance(Nanos::from_secs_f64(1.5));
        inst.scrape_fleet(&mut sink, &c.fleet);
        let rate = inst.commit_rate.expect("window registered");
        assert_eq!(sink.metrics.gauge_value(rate.gauge()), 1.0);
    }

    #[test]
    fn fleet_scrape_forwards_alarms_once() {
        let mut sink = FleetTelemetry::new();
        let mut inst = FabricInstruments::register(&mut sink);
        let mut fleet = OcsFleet::build(2, 5);
        fleet.get_mut(1).unwrap().fail_mirror(true, 4);
        inst.scrape_fleet(&mut sink, &fleet);
        assert_eq!(sink.alarms.ingested(), 1);
        inst.scrape_fleet(&mut sink, &fleet);
        assert_eq!(sink.alarms.ingested(), 1, "scrape cursor advanced");
        assert_eq!(sink.slo.len(), 2, "both switches SLO-tracked");
    }
}
