//! Planned maintenance: FRU replacement on live switches.
//!
//! §3.2.2: PSUs and fans hot-swap "while maintaining functionality"; HV
//! driver boards are field-replaceable but drop the mirror state of their
//! port group — which is exactly why they were made replaceable ("the HV
//! drivers for the mirrors was one of the largest reliability challenges
//! for the switch"). A production maintenance workflow must therefore
//! *plan* a swap: know which circuits will blink, for how long, and
//! verify everything re-aligns afterwards.

use crate::fleet::{OcsFleet, OcsId};
use lightwave_ocs::chassis::FruKind;
use lightwave_ocs::PortId;
use lightwave_transceiver::bringup::LinkBringup;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};

/// A maintenance plan for one FRU replacement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenancePlan {
    /// Target switch.
    pub ocs: OcsId,
    /// Chassis slot to replace.
    pub slot: usize,
    /// The FRU kind in that slot.
    pub kind: FruKind,
    /// Circuits (north ports) that will lose light during the swap.
    pub disturbed_circuits: Vec<PortId>,
    /// Expected outage per disturbed circuit: mirror re-alignment plus
    /// transceiver re-acquisition.
    pub expected_outage: Nanos,
}

/// Errors planning maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaintenanceError {
    /// No such switch.
    UnknownSwitch(OcsId),
    /// Slot index out of range.
    BadSlot(usize),
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintenanceError::UnknownSwitch(id) => write!(f, "unknown switch {id}"),
            MaintenanceError::BadSlot(s) => write!(f, "no chassis slot {s}"),
        }
    }
}

impl std::error::Error for MaintenanceError {}

/// Plans the replacement of `slot` on `ocs`: computes which live circuits
/// will blink and the expected per-circuit outage.
pub fn plan_replacement(
    fleet: &OcsFleet,
    ocs_id: OcsId,
    slot: usize,
) -> Result<MaintenancePlan, MaintenanceError> {
    let ocs = fleet
        .get(ocs_id)
        .ok_or(MaintenanceError::UnknownSwitch(ocs_id))?;
    let slots = ocs_chassis_slots(ocs);
    let kind = slots
        .get(slot)
        .copied()
        .ok_or(MaintenanceError::BadSlot(slot))?;
    let disturbed_circuits: Vec<PortId> = if kind.swap_drops_mirror_state() {
        let group = hv_port_group(ocs, slot);
        ocs.mapping()
            .pairs()
            .filter(|&(n, _)| group.contains(&n))
            .map(|(n, _)| n)
            .collect()
    } else {
        Vec::new()
    };
    // Outage = camera re-alignment (nominal) + transceiver bring-up.
    let expected_outage = if disturbed_circuits.is_empty() {
        Nanos(0)
    } else {
        lightwave_ocs::camera::AlignmentLoop::default().nominal_switching_time(0.01)
            + LinkBringup::nominal_duration()
    };
    Ok(MaintenancePlan {
        ocs: ocs_id,
        slot,
        kind,
        disturbed_circuits,
        expected_outage,
    })
}

/// Executes a plan: fails and replaces the FRU, leaving the switch to
/// re-align whatever the swap dropped. Returns the plan's disturbed set
/// for auditing against what actually blinked.
pub fn execute(fleet: &mut OcsFleet, plan: &MaintenancePlan) -> Result<(), MaintenanceError> {
    let ocs = fleet
        .get_mut(plan.ocs)
        .ok_or(MaintenanceError::UnknownSwitch(plan.ocs))?;
    ocs.fail_fru(plan.slot);
    ocs.replace_fru(plan.slot);
    Ok(())
}

/// The FRU kind in each chassis slot (mirrors `Chassis::new`'s layout:
/// 2 PSUs, 4 fans, 8 HV drivers, CPU, FPGA).
fn ocs_chassis_slots(_ocs: &lightwave_ocs::PalomarOcs) -> Vec<FruKind> {
    let mut v = vec![FruKind::PowerSupply; 2];
    v.extend(vec![FruKind::Fan; 4]);
    v.extend(vec![FruKind::HvDriver; 8]);
    v.push(FruKind::Cpu);
    v.push(FruKind::Fpga);
    v
}

/// Ports driven by the HV driver in `slot` (or all ports for the FPGA).
fn hv_port_group(ocs: &lightwave_ocs::PalomarOcs, slot: usize) -> Vec<PortId> {
    use lightwave_ocs::chassis::PORTS_PER_HV_DRIVER;
    let slots = ocs_chassis_slots(ocs);
    match slots[slot] {
        FruKind::Fpga => (0..ocs.ports() as PortId).collect(),
        FruKind::HvDriver => {
            let hv_index = slots[..slot]
                .iter()
                .filter(|k| **k == FruKind::HvDriver)
                .count();
            let base = (hv_index % 4) * PORTS_PER_HV_DRIVER;
            (base..base + PORTS_PER_HV_DRIVER)
                .map(|p| p as PortId)
                .collect()
        }
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwave_ocs::PortMapping;

    fn fleet_with_circuits() -> OcsFleet {
        let mut fleet = OcsFleet::build(2, 31);
        let mapping = PortMapping::from_pairs((0..40u16).map(|i| (i, i + 64))).expect("valid");
        fleet.get_mut(0).unwrap().apply_mapping(&mapping).unwrap();
        fleet.advance(Nanos::from_millis(400));
        fleet
    }

    #[test]
    fn psu_swap_plans_zero_disturbance() {
        let fleet = fleet_with_circuits();
        let plan = plan_replacement(&fleet, 0, 1).unwrap();
        assert_eq!(plan.kind, FruKind::PowerSupply);
        assert!(plan.disturbed_circuits.is_empty());
        assert_eq!(plan.expected_outage, Nanos(0));
    }

    #[test]
    fn hv_swap_plans_its_port_group_and_recovers() {
        let mut fleet = fleet_with_circuits();
        // Slot 6 = first HV driver = ports 0..34; circuits live on 0..40,
        // so 34 circuits blink.
        let plan = plan_replacement(&fleet, 0, 6).unwrap();
        assert_eq!(plan.kind, FruKind::HvDriver);
        assert_eq!(plan.disturbed_circuits.len(), 34);
        assert!(plan.expected_outage.as_millis_f64() > 5.0);

        execute(&mut fleet, &plan).unwrap();
        let ocs = fleet.get(0).unwrap();
        for &n in &plan.disturbed_circuits {
            assert!(!ocs.circuit_ready(n), "port {n} must be re-aligning");
        }
        // Untouched circuits never blinked.
        assert!(ocs.circuit_ready(36));
        fleet.advance(Nanos::from_millis(400));
        let ocs = fleet.get(0).unwrap();
        for &n in &plan.disturbed_circuits {
            assert!(ocs.circuit_ready(n), "port {n} must have recovered");
        }
    }

    #[test]
    fn fpga_swap_is_a_full_blink() {
        let fleet = fleet_with_circuits();
        let plan = plan_replacement(&fleet, 0, 15).unwrap();
        assert_eq!(plan.kind, FruKind::Fpga);
        assert_eq!(plan.disturbed_circuits.len(), 40, "every live circuit");
    }

    #[test]
    fn planning_errors() {
        let fleet = fleet_with_circuits();
        assert_eq!(
            plan_replacement(&fleet, 9, 0).unwrap_err(),
            MaintenanceError::UnknownSwitch(9)
        );
        assert_eq!(
            plan_replacement(&fleet, 0, 99).unwrap_err(),
            MaintenanceError::BadSlot(99)
        );
    }

    #[test]
    fn outage_is_sub_second() {
        // The §4.2.2 premise: reconfiguration-class outages are tens of
        // milliseconds, versus hours for hardware repair.
        let fleet = fleet_with_circuits();
        let plan = plan_replacement(&fleet, 0, 6).unwrap();
        assert!(plan.expected_outage.as_secs_f64() < 1.0);
    }
}
