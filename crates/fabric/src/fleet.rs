//! The OCS fleet: a set of Palomar switches under one simulation clock.

use lightwave_ocs::{OcsHealth, PalomarOcs};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a switch within the fleet.
pub type OcsId = u32;

/// Fleet-wide health roll-up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetHealth {
    /// Switch count.
    pub switches: usize,
    /// Switches whose chassis is operational.
    pub operational: usize,
    /// Total live circuits.
    pub circuits: usize,
    /// Circuits still aligning.
    pub pending: usize,
    /// Total power draw, watts.
    pub power_w: f64,
    /// Per-switch health.
    pub per_switch: BTreeMap<OcsId, OcsHealth>,
}

/// A fleet of Palomar OCSes.
#[derive(Debug, Default)]
pub struct OcsFleet {
    switches: BTreeMap<OcsId, PalomarOcs>,
}

impl OcsFleet {
    /// An empty fleet.
    pub fn new() -> OcsFleet {
        OcsFleet::default()
    }

    /// Builds a fleet of `n` switches with deterministic per-switch seeds.
    pub fn build(n: usize, seed: u64) -> OcsFleet {
        let mut fleet = OcsFleet::new();
        for i in 0..n {
            fleet.add(PalomarOcs::new(
                i as OcsId,
                seed.wrapping_add(i as u64 * 7919),
            ));
        }
        fleet
    }

    /// Adds a switch.
    ///
    /// # Panics
    /// Panics if the id is already present.
    pub fn add(&mut self, ocs: PalomarOcs) {
        let id = ocs.id();
        let prev = self.switches.insert(id, ocs);
        assert!(prev.is_none(), "duplicate OCS id {id}");
    }

    /// Number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// True if the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// Immutable access to a switch.
    pub fn get(&self, id: OcsId) -> Option<&PalomarOcs> {
        self.switches.get(&id)
    }

    /// Mutable access to a switch.
    pub fn get_mut(&mut self, id: OcsId) -> Option<&mut PalomarOcs> {
        self.switches.get_mut(&id)
    }

    /// Iterates switches in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&OcsId, &PalomarOcs)> {
        self.switches.iter()
    }

    /// Advances every switch's clock.
    pub fn advance(&mut self, dt: Nanos) {
        for ocs in self.switches.values_mut() {
            ocs.advance(dt);
        }
    }

    /// Fleet-wide alarm roll-up: every alarm at or above `severity`,
    /// tagged with its switch — the page-generating view of §3.2.2's
    /// "telemetry and anomaly reporting".
    pub fn alarms_at_least(
        &self,
        severity: lightwave_ocs::telemetry::Severity,
    ) -> Vec<(OcsId, lightwave_ocs::telemetry::Alarm)> {
        let mut out = Vec::new();
        for (&id, ocs) in &self.switches {
            for alarm in ocs.telemetry().alarms_at_least(severity) {
                out.push((id, alarm.clone()));
            }
        }
        out
    }

    /// Fleet health roll-up.
    pub fn health(&self) -> FleetHealth {
        let per_switch: BTreeMap<OcsId, OcsHealth> = self
            .switches
            .iter()
            .map(|(&id, ocs)| (id, ocs.health()))
            .collect();
        FleetHealth {
            switches: per_switch.len(),
            operational: per_switch.values().filter(|h| h.operational).count(),
            circuits: per_switch.values().map(|h| h.circuits).sum(),
            pending: per_switch.values().map(|h| h.pending).sum(),
            power_w: per_switch.values().map(|h| h.power_w).sum(),
            per_switch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_creates_distinct_switches() {
        let fleet = OcsFleet::build(4, 99);
        assert_eq!(fleet.len(), 4);
        // Different seeds → different optical cores.
        let a = fleet.get(0).unwrap().optical_core().insertion_loss(0, 0);
        let b = fleet.get(1).unwrap().optical_core().insertion_loss(0, 0);
        assert_ne!(a.db(), b.db());
    }

    #[test]
    #[should_panic(expected = "duplicate OCS id")]
    fn duplicate_id_rejected() {
        let mut fleet = OcsFleet::new();
        fleet.add(PalomarOcs::new(0, 1));
        fleet.add(PalomarOcs::new(0, 2));
    }

    #[test]
    fn advance_and_health_roll_up() {
        let mut fleet = OcsFleet::build(3, 5);
        fleet.get_mut(0).unwrap().connect(1, 2).unwrap();
        fleet.get_mut(1).unwrap().connect(3, 4).unwrap();
        let h = fleet.health();
        assert_eq!(h.circuits, 2);
        assert_eq!(h.pending, 2);
        assert_eq!(h.operational, 3);
        fleet.advance(Nanos::from_millis(200));
        let h = fleet.health();
        assert_eq!(h.pending, 0);
        assert!(h.power_w > 180.0, "3 chassis draw real power");
    }

    #[test]
    fn failed_switch_counts_against_operational() {
        let mut fleet = OcsFleet::build(2, 5);
        let ocs = fleet.get_mut(1).unwrap();
        ocs.fail_fru(0);
        ocs.fail_fru(1);
        assert_eq!(fleet.health().operational, 1);
    }

    #[test]
    fn alarm_rollup_tags_the_switch() {
        use lightwave_ocs::telemetry::{AlarmCode, Severity};
        let mut fleet = OcsFleet::build(3, 6);
        {
            let ocs = fleet.get_mut(2).unwrap();
            ocs.fail_fru(0);
            ocs.fail_fru(1); // second PSU: ChassisDown (critical)
        }
        fleet.get_mut(0).unwrap().fail_fru(2); // one fan: warning only
        let critical = fleet.alarms_at_least(Severity::Critical);
        assert_eq!(critical.len(), 1);
        assert_eq!(critical[0].0, 2, "the alarm names the down switch");
        assert!(matches!(critical[0].1.code, AlarmCode::ChassisDown));
        let warnings = fleet.alarms_at_least(Severity::Warning);
        assert!(
            warnings.len() >= 3,
            "FRU warnings from both switches roll up"
        );
        assert!(warnings.iter().any(|(id, _)| *id == 0));
    }
}
