//! Target-state fabric reconfiguration.
//!
//! The controller follows the intent/commit pattern of production SDN
//! control planes: callers declare the *desired* port mapping of every
//! switch ([`FabricTarget`]), the controller validates the whole
//! transaction against every switch first, and only then applies — so a
//! typo'd mapping on switch 47 cannot leave switches 0–46 half
//! reconfigured. Application is minimal-delta per switch: circuits present
//! in both the old and new state are never touched (the paper's job
//! isolation requirement, §2.3), and the report proves it.

use crate::fleet::{OcsFleet, OcsId};
use lightwave_ocs::{OcsError, PortId, PortMapping, ReconfigReport};
use lightwave_transceiver::bringup::LinkBringup;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The desired state of (part of) the fabric: per-switch port mappings.
/// Switches not mentioned keep their current configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricTarget {
    targets: BTreeMap<OcsId, PortMapping>,
}

impl FabricTarget {
    /// An empty target (a no-op commit).
    pub fn new() -> FabricTarget {
        FabricTarget::default()
    }

    /// Sets the full desired mapping of one switch.
    pub fn set(&mut self, ocs: OcsId, mapping: PortMapping) -> &mut Self {
        self.targets.insert(ocs, mapping);
        self
    }

    /// The mapping for one switch, if declared.
    pub fn get(&self, ocs: OcsId) -> Option<&PortMapping> {
        self.targets.get(&ocs)
    }

    /// Switches touched by this target.
    pub fn switches(&self) -> impl Iterator<Item = OcsId> + '_ {
        self.targets.keys().copied()
    }

    /// Total circuits across all declared mappings.
    pub fn circuit_count(&self) -> usize {
        self.targets.values().map(|m| m.len()).sum()
    }
}

/// An incremental change to one switch: circuits to establish and tear
/// down, leaving everything else untouched. Unlike a full [`PortMapping`],
/// a delta carries only what changes — validating and applying it is
/// O(delta), not O(circuits on the switch).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchDelta {
    /// Circuits to establish (north, south).
    pub add: Vec<(PortId, PortId)>,
    /// Circuits to tear down (north ports).
    pub remove: Vec<PortId>,
}

impl SwitchDelta {
    /// True when this delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.remove.is_empty()
    }
}

/// The incremental counterpart of [`FabricTarget`]: per-switch deltas.
/// Switches not mentioned are guaranteed untouched, and mentioned
/// switches keep every circuit the delta does not name.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricDelta {
    deltas: BTreeMap<OcsId, SwitchDelta>,
}

impl FabricDelta {
    /// An empty delta (a no-op commit).
    pub fn new() -> FabricDelta {
        FabricDelta::default()
    }

    /// The (possibly fresh) delta for one switch.
    pub fn entry(&mut self, ocs: OcsId) -> &mut SwitchDelta {
        self.deltas.entry(ocs).or_default()
    }

    /// The delta for one switch, if declared.
    pub fn get(&self, ocs: OcsId) -> Option<&SwitchDelta> {
        self.deltas.get(&ocs)
    }

    /// Switches touched by this delta, in id order.
    pub fn switches(&self) -> impl Iterator<Item = OcsId> + '_ {
        self.deltas.keys().copied()
    }

    /// Per-switch deltas, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (OcsId, &SwitchDelta)> {
        self.deltas.iter().map(|(&id, d)| (id, d))
    }

    /// True when no switch is touched.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Circuits established across all switches.
    pub fn added(&self) -> usize {
        self.deltas.values().map(|d| d.add.len()).sum()
    }

    /// Circuits torn down across all switches.
    pub fn removed(&self) -> usize {
        self.deltas.values().map(|d| d.remove.len()).sum()
    }
}

/// Why a commit was rejected (nothing was applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// The target names a switch the fleet does not have.
    UnknownSwitch(OcsId),
    /// A switch rejected its mapping during validation.
    Invalid {
        /// The offending switch.
        ocs: OcsId,
        /// The underlying error.
        error: OcsError,
    },
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::UnknownSwitch(id) => write!(f, "unknown switch {id}"),
            CommitError::Invalid { ocs, error } => write!(f, "switch {ocs}: {error}"),
        }
    }
}

impl std::error::Error for CommitError {}

/// What a committed transaction did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitReport {
    /// Per-switch reconfiguration reports.
    pub per_switch: BTreeMap<OcsId, ReconfigReport>,
    /// Circuits left untouched fabric-wide (the isolation audit).
    pub untouched: usize,
    /// Circuits added fabric-wide.
    pub added: usize,
    /// Circuits removed fabric-wide.
    pub removed: usize,
    /// Time until every moved circuit is optically settled *and* its
    /// transceivers have re-acquired (OCS settle + link bring-up).
    pub traffic_ready_at: Nanos,
}

/// The fabric controller: owns the fleet and serializes reconfiguration.
#[derive(Debug, Default)]
pub struct FabricController {
    /// The switch fleet.
    pub fleet: OcsFleet,
    /// Controller clock, advanced in lockstep with the fleet so commits
    /// that touch no switch still report the current time.
    now: Nanos,
}

impl FabricController {
    /// Wraps a fleet.
    pub fn new(fleet: OcsFleet) -> FabricController {
        FabricController {
            fleet,
            now: Nanos(0),
        }
    }

    /// Current controller time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Validates `target` against every named switch without applying.
    pub fn validate(&self, target: &FabricTarget) -> Result<(), CommitError> {
        for id in target.switches() {
            let ocs = self.fleet.get(id).ok_or(CommitError::UnknownSwitch(id))?;
            if !ocs.is_up() {
                return Err(CommitError::Invalid {
                    ocs: id,
                    error: OcsError::ChassisDown,
                });
            }
            let mapping = target.get(id).expect("iterating declared switches");
            // Dry-run the per-port checks the switch will make — but only
            // for circuits the delta will actually (re)establish. A port
            // that degraded *under* a running circuit must not veto
            // transactions that leave that circuit alone: tearing it down
            // would turn a degradation into an outage, and rejecting the
            // transaction would wedge the whole switch.
            let current: BTreeMap<PortId, PortId> = ocs.mapping().pairs().collect();
            let degraded = ocs.health().degraded_ports;
            for (n, s) in mapping.pairs() {
                if current.get(&n) == Some(&s) {
                    continue; // untouched circuit: never re-checked
                }
                if degraded.contains(&n) {
                    return Err(CommitError::Invalid {
                        ocs: id,
                        error: OcsError::PortDegraded(n),
                    });
                }
                if degraded.contains(&s) {
                    return Err(CommitError::Invalid {
                        ocs: id,
                        error: OcsError::PortDegraded(s),
                    });
                }
            }
        }
        Ok(())
    }

    /// Validates then applies the whole transaction. On error nothing has
    /// been applied.
    pub fn commit(&mut self, target: &FabricTarget) -> Result<CommitReport, CommitError> {
        self.validate(target)?;
        let mut per_switch = BTreeMap::new();
        let mut untouched = 0;
        let mut added = 0;
        let mut removed = 0;
        let mut latest = self.now;
        for id in target.switches() {
            let mapping = target.get(id).expect("declared");
            let ocs = self.fleet.get_mut(id).expect("validated");
            let report = ocs
                .apply_mapping(mapping)
                .map_err(|error| CommitError::Invalid { ocs: id, error })?;
            untouched += report.untouched;
            added += report.added.len();
            removed += report.removed.len();
            latest = latest.max(report.ready_at);
            per_switch.insert(id, report);
        }
        // Moved circuits need transceiver re-acquisition after the mirrors
        // settle; only transactions that added circuits pay bring-up.
        let traffic_ready_at = if added > 0 {
            latest + LinkBringup::nominal_duration()
        } else {
            latest
        };
        Ok(CommitReport {
            per_switch,
            untouched,
            added,
            removed,
            traffic_ready_at,
        })
    }

    /// Validates an incremental transaction against every named switch
    /// without applying. Only the delta-established circuits are vetted
    /// against degraded ports — untouched circuits are never re-checked
    /// (the same wedge-avoidance contract as [`FabricController::validate`]).
    pub fn validate_delta(&mut self, delta: &FabricDelta) -> Result<(), CommitError> {
        for (id, d) in delta.iter() {
            let ocs = self
                .fleet
                .get_mut(id)
                .ok_or(CommitError::UnknownSwitch(id))?;
            ocs.validate_delta(&d.add, &d.remove)
                .map_err(|error| CommitError::Invalid { ocs: id, error })?;
        }
        Ok(())
    }

    /// Validates then applies an incremental transaction. On error nothing
    /// has been applied. The O(delta) counterpart of
    /// [`FabricController::commit`]: no switch's full mapping is collected,
    /// rebuilt, or diffed anywhere on this path.
    pub fn commit_delta(&mut self, delta: &FabricDelta) -> Result<CommitReport, CommitError> {
        self.validate_delta(delta)?;
        let mut per_switch = BTreeMap::new();
        let mut untouched = 0;
        let mut added = 0;
        let mut removed = 0;
        let mut latest = self.now;
        for (id, d) in delta.iter() {
            let ocs = self.fleet.get_mut(id).expect("validated");
            let report = ocs
                .apply_delta(&d.add, &d.remove)
                .map_err(|error| CommitError::Invalid { ocs: id, error })?;
            untouched += report.untouched;
            added += report.added.len();
            removed += report.removed.len();
            latest = latest.max(report.ready_at);
            per_switch.insert(id, report);
        }
        let traffic_ready_at = if added > 0 {
            latest + LinkBringup::nominal_duration()
        } else {
            latest
        };
        Ok(CommitReport {
            per_switch,
            untouched,
            added,
            removed,
            traffic_ready_at,
        })
    }

    /// Advances fabric time.
    pub fn advance(&mut self, dt: Nanos) {
        self.now += dt;
        self.fleet.advance(dt);
    }

    /// True when no switch has circuits still aligning.
    pub fn settled(&self) -> bool {
        self.fleet.health().pending == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwave_ocs::PortMapping;

    fn controller(n: usize) -> FabricController {
        FabricController::new(OcsFleet::build(n, 17))
    }

    #[test]
    fn commit_applies_across_switches() {
        let mut c = controller(3);
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 1), (2, 3)]).unwrap());
        t.set(2, PortMapping::from_pairs([(5, 6)]).unwrap());
        let report = c.commit(&t).unwrap();
        assert_eq!(report.added, 3);
        assert_eq!(report.removed, 0);
        assert!(report.traffic_ready_at > Nanos(0));
        c.advance(Nanos::from_millis(300));
        assert!(c.settled());
        assert_eq!(c.fleet.health().circuits, 3);
    }

    #[test]
    fn unknown_switch_rejects_whole_transaction() {
        let mut c = controller(2);
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 1)]).unwrap());
        t.set(9, PortMapping::from_pairs([(0, 1)]).unwrap());
        assert_eq!(c.commit(&t).unwrap_err(), CommitError::UnknownSwitch(9));
        // Atomicity: switch 0 must be untouched.
        assert_eq!(c.fleet.health().circuits, 0);
    }

    #[test]
    fn down_switch_rejects_without_partial_apply() {
        let mut c = controller(2);
        {
            let ocs = c.fleet.get_mut(1).unwrap();
            ocs.fail_fru(0);
            ocs.fail_fru(1);
        }
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 1)]).unwrap());
        t.set(1, PortMapping::from_pairs([(2, 3)]).unwrap());
        match c.commit(&t).unwrap_err() {
            CommitError::Invalid { ocs: 1, error } => {
                assert_eq!(error, OcsError::ChassisDown)
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(c.fleet.health().circuits, 0, "atomic: nothing applied");
    }

    #[test]
    fn incremental_commit_preserves_running_circuits() {
        let mut c = controller(1);
        let mut t1 = FabricTarget::new();
        t1.set(
            0,
            PortMapping::from_pairs([(0, 10), (1, 11), (2, 12)]).unwrap(),
        );
        c.commit(&t1).unwrap();
        c.advance(Nanos::from_millis(300));
        // Second generation: keep (0,10) and (1,11), move (2,12)→(2,13).
        let mut t2 = FabricTarget::new();
        t2.set(
            0,
            PortMapping::from_pairs([(0, 10), (1, 11), (2, 13)]).unwrap(),
        );
        let report = c.commit(&t2).unwrap();
        assert_eq!(report.untouched, 2);
        assert_eq!(report.added, 1);
        assert_eq!(report.removed, 1);
        // Untouched circuits still carrying mid-transaction.
        let ocs = c.fleet.get(0).unwrap();
        assert!(ocs.circuit_ready(0) && ocs.circuit_ready(1));
        assert!(!ocs.circuit_ready(2));
    }

    #[test]
    fn degraded_port_under_running_circuit_does_not_wedge_the_switch() {
        let mut c = controller(1);
        let mut t1 = FabricTarget::new();
        t1.set(0, PortMapping::from_pairs([(0, 10), (40, 50)]).unwrap());
        c.commit(&t1).unwrap();
        c.advance(Nanos::from_millis(300));
        // HV driver 0 (ports 0..34) fails under the live (0, 10) circuit.
        c.fleet.get_mut(0).unwrap().fail_fru(6);
        // Removing the *other* circuit must still commit: (0, 10) is
        // untouched, so its degraded ports are not re-checked (pre-fix,
        // every transaction on this switch was rejected forever).
        let mut t2 = FabricTarget::new();
        t2.set(0, PortMapping::from_pairs([(0, 10)]).unwrap());
        let report = c.commit(&t2).unwrap();
        assert_eq!(report.removed, 1);
        assert_eq!(report.untouched, 1);
        // Establishing a new circuit on the degraded group still rejects.
        let mut t3 = FabricTarget::new();
        t3.set(0, PortMapping::from_pairs([(0, 10), (1, 11)]).unwrap());
        match c.commit(&t3).unwrap_err() {
            CommitError::Invalid { ocs: 0, error } => {
                assert_eq!(error, OcsError::PortDegraded(1))
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn noop_commit_is_instant() {
        let mut c = controller(1);
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 10)]).unwrap());
        c.commit(&t).unwrap();
        c.advance(Nanos::from_millis(300));
        let before = c.fleet.get(0).unwrap().now();
        let report = c.commit(&t).unwrap();
        assert_eq!(report.added, 0);
        assert_eq!(report.untouched, 1);
        assert_eq!(report.traffic_ready_at, before, "no settle needed");
    }

    #[test]
    fn delta_commit_applies_only_the_delta() {
        let mut c = controller(3);
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 1), (2, 3)]).unwrap());
        t.set(1, PortMapping::from_pairs([(5, 6)]).unwrap());
        c.commit(&t).unwrap();
        c.advance(Nanos::from_millis(300));
        // Delta: move (2, 3) → (2, 4) on switch 0; switch 1 not mentioned.
        let mut d = FabricDelta::new();
        d.entry(0).add.push((2, 4));
        d.entry(0).remove.push(2);
        let report = c.commit_delta(&d).unwrap();
        assert_eq!(report.added, 1);
        assert_eq!(report.removed, 1);
        assert_eq!(report.untouched, 1, "switch 0's (0,1) kept");
        assert_eq!(report.per_switch.keys().copied().collect::<Vec<_>>(), [0]);
        assert!(c.fleet.get(0).unwrap().circuit_ready(0), "never blinked");
        assert!(c.fleet.get(1).unwrap().circuit_ready(5), "never touched");
        assert!(report.traffic_ready_at > c.now(), "bring-up still paid");
    }

    #[test]
    fn delta_commit_is_atomic_across_switches() {
        let mut c = controller(2);
        let mut d = FabricDelta::new();
        d.entry(0).add.push((0, 1));
        d.entry(9).add.push((0, 1));
        assert_eq!(
            c.commit_delta(&d).unwrap_err(),
            CommitError::UnknownSwitch(9)
        );
        assert_eq!(c.fleet.health().circuits, 0, "atomic: nothing applied");
        // Same with a down switch late in the iteration order.
        {
            let ocs = c.fleet.get_mut(1).unwrap();
            ocs.fail_fru(0);
            ocs.fail_fru(1);
        }
        let mut d = FabricDelta::new();
        d.entry(0).add.push((0, 1));
        d.entry(1).add.push((2, 3));
        match c.commit_delta(&d).unwrap_err() {
            CommitError::Invalid { ocs: 1, error } => assert_eq!(error, OcsError::ChassisDown),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(c.fleet.health().circuits, 0, "atomic: nothing applied");
    }

    #[test]
    fn empty_delta_commit_reports_current_time() {
        let mut c = controller(1);
        c.advance(Nanos::from_millis(250));
        let report = c.commit_delta(&FabricDelta::new()).unwrap();
        assert_eq!(report.added + report.removed + report.untouched, 0);
        assert_eq!(report.traffic_ready_at, Nanos::from_millis(250));
    }

    #[test]
    fn delta_commit_skips_degraded_check_for_untouched_circuits() {
        let mut c = controller(1);
        let mut t = FabricTarget::new();
        t.set(0, PortMapping::from_pairs([(0, 10), (40, 50)]).unwrap());
        c.commit(&t).unwrap();
        c.advance(Nanos::from_millis(300));
        // HV driver 0 (ports 0..34) fails under the live (0, 10) circuit.
        c.fleet.get_mut(0).unwrap().fail_fru(6);
        // Removing the other circuit still commits: (0, 10) is untouched.
        let mut d = FabricDelta::new();
        d.entry(0).remove.push(40);
        let report = c.commit_delta(&d).unwrap();
        assert_eq!(report.removed, 1);
        assert_eq!(report.untouched, 1);
        // Establishing on the degraded group still rejects.
        let mut d = FabricDelta::new();
        d.entry(0).add.push((1, 11));
        match c.commit_delta(&d).unwrap_err() {
            CommitError::Invalid { ocs: 0, error } => {
                assert_eq!(error, OcsError::PortDegraded(1))
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unmentioned_switches_keep_their_config() {
        let mut c = controller(2);
        let mut t1 = FabricTarget::new();
        t1.set(1, PortMapping::from_pairs([(7, 8)]).unwrap());
        c.commit(&t1).unwrap();
        c.advance(Nanos::from_millis(300));
        let mut t2 = FabricTarget::new();
        t2.set(0, PortMapping::from_pairs([(0, 1)]).unwrap());
        c.commit(&t2).unwrap();
        assert_eq!(
            c.fleet.get(1).unwrap().mapping().len(),
            1,
            "switch 1 untouched"
        );
    }
}
