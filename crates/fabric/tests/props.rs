//! Property tests for the fabric controller's transactional semantics.

use lightwave_fabric::{FabricController, FabricTarget, OcsFleet};
use lightwave_ocs::PortMapping;
use lightwave_units::Nanos;
use proptest::prelude::*;

fn arbitrary_target(switches: u32) -> impl Strategy<Value = FabricTarget> {
    proptest::collection::vec(
        (
            0..switches,
            proptest::collection::vec((0u16..64, 64u16..128), 0..12),
        ),
        0..4,
    )
    .prop_map(|decls| {
        let mut t = FabricTarget::new();
        for (ocs, pairs) in decls {
            let mut m = PortMapping::new();
            for (n, s) in pairs {
                let _ = m.insert(n, s); // skip conflicting pairs
            }
            t.set(ocs, m);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Committing any valid target then advancing always converges to
    /// exactly that target, fully settled.
    #[test]
    fn commit_converges_to_target(seed in 0u64..50, target in arbitrary_target(4)) {
        let mut c = FabricController::new(OcsFleet::build(4, seed));
        c.commit(&target).expect("valid target commits");
        c.advance(Nanos::from_millis(500));
        prop_assert!(c.settled());
        for ocs_id in target.switches() {
            let ocs = c.fleet.get(ocs_id).expect("exists");
            prop_assert_eq!(&ocs.mapping(), target.get(ocs_id).expect("declared"));
        }
    }

    /// Committing twice is idempotent: the second commit touches nothing.
    #[test]
    fn commit_is_idempotent(seed in 0u64..50, target in arbitrary_target(3)) {
        let mut c = FabricController::new(OcsFleet::build(3, seed));
        c.commit(&target).expect("commits");
        c.advance(Nanos::from_millis(500));
        let again = c.commit(&target).expect("recommits");
        prop_assert_eq!(again.added, 0);
        prop_assert_eq!(again.removed, 0);
        prop_assert_eq!(again.untouched, target.circuit_count());
    }

    /// Sequential commits: the preserved-circuit count equals the overlap
    /// between consecutive targets.
    #[test]
    fn preservation_equals_overlap(
        seed in 0u64..50,
        t1 in arbitrary_target(2),
        t2 in arbitrary_target(2),
    ) {
        let mut c = FabricController::new(OcsFleet::build(2, seed));
        c.commit(&t1).expect("commits");
        c.advance(Nanos::from_millis(500));
        let report = c.commit(&t2).expect("commits");
        // Count (ocs, n, s) triples present in both targets, over switches
        // t2 declares (undeclared switches keep their config untouched
        // and are not reported).
        let mut overlap = 0;
        for ocs in t2.switches() {
            if let (Some(m1), Some(m2)) = (t1.get(ocs), t2.get(ocs)) {
                for (n, s) in m2.pairs() {
                    if m1.get(n) == Some(s) {
                        overlap += 1;
                    }
                }
            }
        }
        prop_assert_eq!(report.untouched, overlap);
    }
}
