//! LLM training performance on slice shapes — the Table 2 model.
//!
//! §4.2.1: reconfiguring the slice shape to match a model's inherent
//! parallelism yields up to 3.32× training throughput versus the static
//! symmetric 16×16×16 baseline. The mechanism this crate implements:
//!
//! * Each LLM has an *inherent* parallelization: a tensor-parallel width
//!   `tp` (how many ways its matmuls split efficiently), a pipeline depth
//!   `pp` (how many stages its layers partition into), and a data-parallel
//!   width bounded by its global batch. "The amount of inherent model and
//!   data parallelism for an LLM determines the optimal slice
//!   configuration."
//! * The mapper follows the paper's rule: dimension 1 carries tensor
//!   parallelism, dimension 2 carries the pipeline (when the model has
//!   one), and the remaining dimensions carry data parallelism.
//! * Forcing *more* tensor parallelism than the model inherently supports
//!   (the fate of a small-`tp` model on the symmetric baseline, whose
//!   first dimension is 16) wastes compute almost linearly — the extra
//!   ways split matmuls below their efficiency floor. This is what the
//!   static 16×16×16 fabric cannot avoid and a reconfigurable one can.
//! * Communication costs come from `lightwave-superpod`'s α-β collective
//!   models: per-layer tensor-parallel all-reduces, pipeline bubble
//!   overhead, and the gradient all-reduce over the data dimensions.
//!
//! [`SliceOptimizer`] searches every valid shape of a chip budget and
//! returns the best — reproducing both the optimal shapes and the
//! speedup factors of Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lightwave_superpod::collective::{ring_all_reduce, ring_reduce_scatter, IciParams};
use lightwave_superpod::slice::SliceShape;
use serde::{Deserialize, Serialize};

/// Hardware parameters of one accelerator chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipParams {
    /// Peak dense throughput, FLOP/s (bf16).
    pub peak_flops: f64,
    /// Achievable model FLOPs utilization on well-shaped work.
    pub mfu: f64,
    /// ICI parameters.
    pub ici: IciParams,
}

impl ChipParams {
    /// Public TPU v4 figures: 275 TFLOP/s bf16, ~40% MFU at scale.
    pub fn tpu_v4() -> ChipParams {
        ChipParams {
            peak_flops: 275e12,
            mfu: 0.4,
            ici: IciParams::tpu_v4(),
        }
    }

    /// Effective sustained FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.mfu
    }
}

/// An LLM training workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Parameter count.
    pub params: f64,
    /// Global batch size in tokens per step.
    pub batch_tokens: f64,
    /// Hidden width (sets activation sizes).
    pub hidden: f64,
    /// Transformer layer count.
    pub layers: usize,
    /// Inherent tensor-parallel width: more ways than this split matmuls
    /// below their efficiency floor.
    pub tp: usize,
    /// Inherent pipeline depth (1 = no pipelining).
    pub pp: usize,
    /// Maximum useful data-parallel ways (global batch / minimum
    /// per-replica batch).
    pub max_dp: usize,
}

impl LlmConfig {
    /// LLM0 of Table 2: 35 B parameters, batch far larger than the model's
    /// parallelism needs. Inherent TP 8, no pipeline.
    pub fn llm0() -> LlmConfig {
        LlmConfig {
            name: "LLM0",
            params: 35e9,
            batch_tokens: 8.0e6,
            hidden: 8192.0,
            layers: 48,
            tp: 8,
            pp: 1,
            max_dp: 1024,
        }
    }

    /// LLM1 of Table 2: 70 B parameters, the most data-parallel-skewed of
    /// the three. Inherent TP 4 × PP 4.
    pub fn llm1() -> LlmConfig {
        LlmConfig {
            name: "LLM1",
            params: 70e9,
            batch_tokens: 16.0e6,
            hidden: 8192.0,
            layers: 80,
            tp: 4,
            pp: 4,
            max_dp: 2048,
        }
    }

    /// LLM2 of Table 2: 150 B parameters, enough model parallelism to fill
    /// the symmetric slice. Inherent TP 16.
    pub fn llm2() -> LlmConfig {
        LlmConfig {
            name: "LLM2",
            params: 150e9,
            batch_tokens: 8.0e6,
            hidden: 12288.0,
            layers: 96,
            tp: 16,
            pp: 1,
            max_dp: 512,
        }
    }

    /// All three Table 2 models.
    pub fn table2() -> [LlmConfig; 3] {
        [LlmConfig::llm0(), LlmConfig::llm1(), LlmConfig::llm2()]
    }

    /// Minimum model-parallel ways (memory floor): the model's own
    /// inherent partitioning tp×pp.
    pub fn min_model_ways(&self) -> usize {
        self.tp * self.pp
    }
}

/// How a shape was mapped onto parallelism dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// Tensor-parallel ways (dimension 1).
    pub tp: usize,
    /// Pipeline ways (dimension 2 when the model pipelines, else 1).
    pub pp: usize,
    /// Data-parallel ways (the remaining dimensions' product).
    pub dp: usize,
}

/// Per-step time breakdown for a model on a shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepTime {
    /// The mapping used.
    pub mapping: Mapping,
    /// Compute seconds (including inefficiency waste).
    pub compute: f64,
    /// Tensor-parallel communication seconds.
    pub tp_comm: f64,
    /// Pipeline bubble seconds.
    pub pipeline_bubble: f64,
    /// Data-parallel (gradient) communication seconds.
    pub dp_comm: f64,
}

impl StepTime {
    /// Total step seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.tp_comm + self.pipeline_bubble + self.dp_comm
    }

    /// Training throughput in tokens/second for a given batch.
    pub fn throughput(&self, batch_tokens: f64) -> f64 {
        batch_tokens / self.total()
    }
}

/// Why a shape cannot run a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Infeasible {
    /// Model dimensions provide fewer ways than the model's memory floor.
    InsufficientModelWays,
    /// More data-parallel replicas than the batch can feed.
    BatchTooSmall,
}

/// Fraction of tensor-parallel communication hidden under layer compute
/// (XLA aggressively overlaps the per-layer all-reduces with the next
/// matmul; only the tail is exposed).
pub const TP_OVERLAP: f64 = 0.9;

/// Compute-waste factor for running `ways` tensor-parallel ways on a model
/// whose matmuls split efficiently only `inherent` ways. Superlinear:
/// as per-chip tiles shrink below the systolic array's sweet spot, MXU
/// utilization collapses faster than linearly.
pub fn tp_waste_factor(ways: usize, inherent: usize) -> f64 {
    if ways > inherent {
        let r = ways as f64 / inherent as f64;
        1.0 + 0.40 * (r - 1.0) + 0.14 * (r - 1.0) * (r - 1.0)
    } else {
        // Running under-split: mild (memory pressure) penalty.
        1.0 + 0.1 * (inherent as f64 / ways as f64 - 1.0)
    }
}

/// Evaluates one model on one shape: tries every legal mapping strategy
/// (pipelined: dim 2 carries the pipeline; unpipelined: stages folded
/// into tensor parallelism) and returns the fastest.
///
/// Parallelism groups map to *whole torus dimensions* — the constraint
/// that preserves wraparound bandwidth and deterministic routing, and the
/// reason slice shape matters at all (§4.2.1).
pub fn step_time(
    model: &LlmConfig,
    shape: SliceShape,
    chip: &ChipParams,
) -> Result<StepTime, Infeasible> {
    let unpipelined = step_time_mapped(model, shape, chip, false);
    let pipelined = if model.pp > 1 {
        step_time_mapped(model, shape, chip, true)
    } else {
        Err(Infeasible::InsufficientModelWays)
    };
    match (unpipelined, pipelined) {
        (Ok(u), Ok(p)) => Ok(if u.total() <= p.total() { u } else { p }),
        (Ok(u), Err(_)) => Ok(u),
        (Err(_), Ok(p)) => Ok(p),
        (Err(e), Err(_)) => Err(e),
    }
}

fn step_time_mapped(
    model: &LlmConfig,
    shape: SliceShape,
    chip: &ChipParams,
    pipeline: bool,
) -> Result<StepTime, Infeasible> {
    let [a, b, c] = shape.chips;
    let (tp_ways, pp_ways, dp_dims): (usize, usize, Vec<usize>) = if pipeline {
        (a, b, vec![c])
    } else {
        (a, 1, vec![b, c])
    };
    let dp_ways: usize = dp_dims.iter().product::<usize>();

    // Memory floor: the model dims must hold at least tp×pp ways.
    if tp_ways * pp_ways < model.min_model_ways() {
        return Err(Infeasible::InsufficientModelWays);
    }
    if dp_ways > model.max_dp {
        return Err(Infeasible::BatchTooSmall);
    }

    let n_chips = shape.chip_count() as f64;

    // --- Compute ---------------------------------------------------------
    // 6 FLOPs per parameter per token (fwd+bwd), perfectly split, then
    // inflated by tensor-parallel inefficiency: ways beyond the model's
    // inherent tp split matmuls below their efficiency floor, wasting
    // close to linearly; ways short of it force activation recomputation/
    // spilling with a milder penalty.
    let ideal = 6.0 * model.params * model.batch_tokens / (n_chips * chip.effective_flops());
    let tp_waste = tp_waste_factor(tp_ways, model.tp);
    let pp_waste = if pp_ways > model.pp {
        // Excess pipeline stages starve: bubbles grow with depth.
        1.0 + 0.25 * (pp_ways as f64 / model.pp as f64 - 1.0)
    } else {
        1.0
    };
    let compute = ideal * tp_waste * pp_waste;

    // --- Tensor-parallel communication ------------------------------------
    // Two all-reduces (attention + MLP) of the activation block per layer,
    // forward and backward, over the tp ring; mostly overlapped with the
    // adjacent matmuls (TP_OVERLAP). Activations are the per-replica token
    // slice × hidden, bf16.
    let tokens_per_replica = model.batch_tokens / dp_ways as f64;
    let act_bytes = tokens_per_replica * model.hidden * 2.0;
    let tp_comm = if tp_ways > 1 {
        (1.0 - TP_OVERLAP)
            * 4.0
            * model.layers as f64
            * ring_all_reduce(act_bytes, tp_ways, &chip.ici)
    } else {
        0.0
    };

    // --- Pipeline bubble ---------------------------------------------------
    // Classic GPipe bubble: (pp−1)/microbatches of the compute is idle.
    let pipeline_bubble = if pp_ways > 1 {
        let microbatches = (tokens_per_replica / 1024.0).max(1.0); // ~1k-token microbatches
        compute * (pp_ways as f64 - 1.0) / microbatches
    } else {
        0.0
    };

    // --- Data-parallel gradient all-reduce ---------------------------------
    // Gradients are sharded over the model dims; each data ring reduces
    // 2·P/(tp·pp) bytes. Chunk-pipelined rings amortize per-hop latency,
    // but each ring still pays its (length-dependent) startup.
    let grad_bytes = 2.0 * model.params / (tp_ways * pp_ways) as f64;
    let mut dp_comm = 0.0;
    if dp_ways > 1 {
        let mut payload = grad_bytes;
        for &len in &dp_dims {
            dp_comm += ring_reduce_scatter(payload, len, &chip.ici);
            payload /= len.max(1) as f64;
        }
        for &len in dp_dims.iter().rev() {
            payload *= len.max(1) as f64;
            dp_comm += ring_reduce_scatter(payload, len, &chip.ici); // all-gather mirror
        }
    }

    Ok(StepTime {
        mapping: Mapping {
            tp: tp_ways,
            pp: pp_ways,
            dp: dp_ways,
        },
        compute,
        tp_comm,
        pipeline_bubble,
        dp_comm,
    })
}

/// Result of a shape search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalShape {
    /// The best shape found.
    pub shape: SliceShape,
    /// Its step breakdown.
    pub step: StepTime,
    /// Speedup versus the symmetric baseline shape.
    pub speedup_vs_baseline: f64,
}

/// The shape optimizer — the role played by the paper's NAS system \[33\],
/// here as exhaustive search (the space is tiny: every factorization of
/// the chip budget into multiples of 4).
#[derive(Debug, Clone, Copy)]
pub struct SliceOptimizer {
    /// Chip hardware parameters.
    pub chip: ChipParams,
}

impl SliceOptimizer {
    /// With TPU v4 parameters.
    pub fn tpu_v4() -> SliceOptimizer {
        SliceOptimizer {
            chip: ChipParams::tpu_v4(),
        }
    }

    /// Finds the fastest feasible shape for `model` using `chips` chips.
    /// Ties break toward the lexicographically-smallest shape.
    pub fn optimize(&self, model: &LlmConfig, chips: usize) -> Option<OptimalShape> {
        let baseline = self.baseline_step(model, chips);
        let mut best: Option<(f64, SliceShape, StepTime)> = None;
        for shape in SliceShape::enumerate_with_chips(chips) {
            if let Ok(step) = step_time(model, shape, &self.chip) {
                let t = step.total();
                match &best {
                    Some((bt, _, _)) if *bt <= t => {}
                    _ => best = Some((t, shape, step)),
                }
            }
        }
        let (t, shape, step) = best?;
        let speedup = baseline.map(|b| b.total() / t).unwrap_or(f64::INFINITY);
        Some(OptimalShape {
            shape,
            step,
            speedup_vs_baseline: speedup,
        })
    }

    /// Step time on the static symmetric baseline (16×16×16 for a full
    /// pod; the most-balanced shape otherwise).
    pub fn baseline_step(&self, model: &LlmConfig, chips: usize) -> Option<StepTime> {
        let shape = SliceShape::enumerate_with_chips(chips)
            .into_iter()
            .max_by_key(|s| s.bisection_links())?;
        step_time(model, shape, &self.chip).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt() -> SliceOptimizer {
        SliceOptimizer::tpu_v4()
    }

    #[test]
    fn baseline_is_symmetric() {
        let shape = SliceShape::enumerate_with_chips(4096)
            .into_iter()
            .max_by_key(|s| s.bisection_links())
            .unwrap();
        assert_eq!(shape.chips, [16, 16, 16]);
    }

    #[test]
    fn llm2_prefers_the_symmetric_slice() {
        // Table 2 row 3: 150 B model, optimal 16×16×16, speedup 1×.
        let r = opt().optimize(&LlmConfig::llm2(), 4096).unwrap();
        assert_eq!(r.shape.chips, [16, 16, 16]);
        assert!((r.speedup_vs_baseline - 1.0).abs() < 1e-9);
    }

    #[test]
    fn llm1_prefers_4x4x256_with_3_3x_speedup() {
        // Table 2 row 2: 70 B model, optimal 4×4×256, speedup 3.32×.
        let r = opt().optimize(&LlmConfig::llm1(), 4096).unwrap();
        assert_eq!(r.shape.chips, [4, 4, 256], "optimal shape");
        assert!(
            (2.9..3.8).contains(&r.speedup_vs_baseline),
            "speedup {:.2} should be ≈3.32",
            r.speedup_vs_baseline
        );
        assert_eq!(
            r.step.mapping,
            Mapping {
                tp: 4,
                pp: 4,
                dp: 256
            }
        );
    }

    #[test]
    fn llm0_prefers_8x16x32_with_1_5x_speedup() {
        // Table 2 row 1: 35 B model, optimal 8×16×32, speedup 1.54×.
        let r = opt().optimize(&LlmConfig::llm0(), 4096).unwrap();
        assert_eq!(r.shape.chips, [8, 16, 32], "optimal shape");
        assert!(
            (1.35..1.75).contains(&r.speedup_vs_baseline),
            "speedup {:.2} should be ≈1.54",
            r.speedup_vs_baseline
        );
    }

    #[test]
    fn no_one_size_fits_all() {
        // The Table 2 observation: the three models want three different
        // shapes.
        let shapes: Vec<[usize; 3]> = LlmConfig::table2()
            .iter()
            .map(|m| opt().optimize(m, 4096).unwrap().shape.chips)
            .collect();
        assert_eq!(shapes.len(), 3);
        assert!(shapes[0] != shapes[1] && shapes[1] != shapes[2] && shapes[0] != shapes[2]);
    }

    #[test]
    fn memory_floor_rejects_thin_shapes_for_big_models() {
        let shape = SliceShape::new(4, 4, 256).unwrap();
        assert_eq!(
            step_time(&LlmConfig::llm2(), shape, &ChipParams::tpu_v4()).unwrap_err(),
            Infeasible::InsufficientModelWays
        );
    }

    #[test]
    fn batch_bounds_data_parallelism() {
        let mut small_batch = LlmConfig::llm0();
        small_batch.max_dp = 64;
        let shape = SliceShape::new(8, 16, 32).unwrap(); // dp = 512 > 64
        assert_eq!(
            step_time(&small_batch, shape, &ChipParams::tpu_v4()).unwrap_err(),
            Infeasible::BatchTooSmall
        );
    }

    #[test]
    fn excess_tensor_parallelism_wastes_compute() {
        let chip = ChipParams::tpu_v4();
        let model = LlmConfig::llm1(); // tp = 4
        let narrow = step_time(&model, SliceShape::new(4, 4, 256).unwrap(), &chip).unwrap();
        let wide = step_time(&model, SliceShape::new(16, 16, 16).unwrap(), &chip).unwrap();
        assert!(
            wide.compute > 3.0 * narrow.compute,
            "TP 16 on a TP-4 model wastes ~4x compute: {} vs {}",
            wide.compute,
            narrow.compute
        );
    }

    #[test]
    fn throughput_is_tokens_over_step() {
        let chip = ChipParams::tpu_v4();
        let model = LlmConfig::llm2();
        let step = step_time(&model, SliceShape::new(16, 16, 16).unwrap(), &chip).unwrap();
        let tput = step.throughput(model.batch_tokens);
        assert!(tput > 0.0);
        assert!((tput * step.total() - model.batch_tokens).abs() < 1.0);
    }

    #[test]
    fn speedups_are_monotone_in_skew_for_llm1() {
        // Under-splitting the pipeline hurts; so does over-splitting.
        let chip = ChipParams::tpu_v4();
        let model = LlmConfig::llm1();
        let t_444 = step_time(&model, SliceShape::new(4, 4, 256).unwrap(), &chip)
            .unwrap()
            .total();
        let t_4_8 = step_time(&model, SliceShape::new(4, 8, 128).unwrap(), &chip)
            .unwrap()
            .total();
        let t_8_4 = step_time(&model, SliceShape::new(8, 4, 128).unwrap(), &chip)
            .unwrap()
            .total();
        assert!(t_444 < t_4_8, "pp beyond inherent depth is slower");
        assert!(t_444 < t_8_4, "tp beyond inherent width is slower");
    }
}
