//! Property tests for the LLM step-time model and shape optimizer.

use lightwave_mlperf::{step_time, tp_waste_factor, ChipParams, LlmConfig, SliceOptimizer};
use lightwave_superpod::slice::SliceShape;
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = LlmConfig> {
    prop_oneof![
        Just(LlmConfig::llm0()),
        Just(LlmConfig::llm1()),
        Just(LlmConfig::llm2()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn step_components_are_nonnegative(model in any_model(), a in 1usize..=4, b in 1usize..=4, c in 1usize..=4) {
        let shape = SliceShape::new(4 * a, 4 * b, 4 * c).expect("valid");
        if let Ok(st) = step_time(&model, shape, &ChipParams::tpu_v4()) {
            prop_assert!(st.compute > 0.0);
            prop_assert!(st.tp_comm >= 0.0);
            prop_assert!(st.pipeline_bubble >= 0.0);
            prop_assert!(st.dp_comm >= 0.0);
            prop_assert!(st.total().is_finite());
            // Mapping covers the whole slice.
            prop_assert_eq!(
                st.mapping.tp * st.mapping.pp * st.mapping.dp,
                shape.chip_count()
            );
        }
    }

    #[test]
    fn optimizer_result_is_actually_optimal(model in any_model(), cubes_pow in 0u32..=6) {
        // Exhaustively verify the optimizer against brute force.
        let chips = 64usize << cubes_pow; // 64..4096
        let chip = ChipParams::tpu_v4();
        if let Some(best) = SliceOptimizer::tpu_v4().optimize(&model, chips) {
            for shape in SliceShape::enumerate_with_chips(chips) {
                if let Ok(st) = step_time(&model, shape, &chip) {
                    prop_assert!(
                        best.step.total() <= st.total() + 1e-12,
                        "optimizer missed {:?} ({} < {})",
                        shape.chips,
                        st.total(),
                        best.step.total()
                    );
                }
            }
        }
    }

    #[test]
    fn waste_factor_is_monotone_and_anchored(inherent in 1usize..=16, extra in 1usize..=4) {
        let ways = inherent * (1 << extra);
        let w1 = tp_waste_factor(inherent, inherent);
        let w2 = tp_waste_factor(ways, inherent);
        prop_assert!((w1 - 1.0).abs() < 1e-12, "matching inherent width is free");
        prop_assert!(w2 > 1.0);
        // More over-splitting always wastes more.
        prop_assert!(tp_waste_factor(ways * 2, inherent) > w2);
    }

    #[test]
    fn speedup_vs_baseline_is_at_least_one(model in any_model()) {
        // The optimizer can always pick the baseline shape itself, so its
        // result can never lose to the baseline.
        let r = SliceOptimizer::tpu_v4().optimize(&model, 4096).expect("feasible");
        prop_assert!(r.speedup_vs_baseline >= 1.0 - 1e-12);
    }

    #[test]
    fn throughput_scales_with_chip_speed(model in any_model(), mfu in 0.2f64..0.6) {
        let shape = SliceShape::new(16, 16, 16).expect("valid");
        let slow = ChipParams {
            mfu,
            ..ChipParams::tpu_v4()
        };
        let fast = ChipParams {
            mfu: mfu * 1.5,
            ..ChipParams::tpu_v4()
        };
        if let (Ok(s), Ok(f)) = (step_time(&model, shape, &slow), step_time(&model, shape, &fast)) {
            prop_assert!(f.compute < s.compute);
            prop_assert!(f.total() <= s.total());
        }
    }
}
